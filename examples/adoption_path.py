#!/usr/bin/env python3
"""The adoption path: from static to temporal, one upgrade at a time.

The paper closes by arguing that "future database management systems
should support all three times to fully capture time varying behavior."
This example plays out how a real shop gets there, using
``repro.core.migrate``:

1. year one — a plain **static** inventory database (all anyone had in
   1985);
2. an audit requirement arrives — upgrade to **static rollback**: from
   now on every state is retrievable;
3. the business needs effectivity dates — upgrade to **temporal** (the
   rollback history is *replayed*, so the pre-upgrade states remain
   queryable) and retroactive corrections start carrying their real
   valid times;
4. a reporting replica that only needs current reality is **downgraded**
   to historical — explicitly acknowledging the loss of the transaction
   axis.

Run:  python examples/adoption_path.py
"""

from repro import Domain, Schema, SimulatedClock
from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase, migrate)
from repro.errors import TemporalSupportError


def main():
    clock = SimulatedClock("01/01/80")

    # -- stage 1: the static years --------------------------------------------
    static_db = StaticDatabase(clock=clock)
    static_db.define("stock", Schema.of(
        key=["item"], item=Domain.STRING, qty=Domain.INTEGER))
    static_db.insert("stock", {"item": "widget", "qty": 100})
    clock.set("03/01/80")
    static_db.replace("stock", {"item": "widget"}, {"qty": 80})
    clock.set("05/01/80")
    static_db.insert("stock", {"item": "gadget", "qty": 50})
    print("Stage 1 — static database; only today's stock exists:")
    print(static_db.snapshot("stock").pretty("stock"))
    print("  (the March state of 100 widgets is gone forever)")

    # -- stage 2: the auditors arrive ------------------------------------------
    clock.set("06/01/80")
    rollback_db = migrate(static_db, RollbackDatabase,
                          clock=SimulatedClock("06/01/80"))
    rb_clock = rollback_db.manager.clock.source
    rb_clock.set("07/01/80")
    rollback_db.replace("stock", {"item": "widget"}, {"qty": 65})
    rb_clock.set("09/01/80")
    rollback_db.delete("stock", {"item": "gadget"})
    print()
    print("Stage 2 — migrated to static rollback on 06/01/80:")
    print("  as of 06/15/80:",
          sorted((r['item'], r['qty'])
                 for r in rollback_db.rollback("stock", "06/15/80")))
    print("  as of 08/01/80:",
          sorted((r['item'], r['qty'])
                 for r in rollback_db.rollback("stock", "08/01/80")))
    print("  (every post-migration state is retrievable; pre-migration")
    print("   history was never recorded and honestly reads as empty:",
          rollback_db.rollback("stock", "02/01/80").is_empty, ")")

    # -- stage 3: effectivity dates — go temporal -------------------------------
    temporal_db = migrate(rollback_db, TemporalDatabase)
    t_clock = temporal_db.manager.clock.source
    t_clock.set("11/01/80")
    # A retroactive correction, at last expressible: the September gadget
    # write-off actually happened in August.
    temporal_db.insert("stock", {"item": "gizmo", "qty": 10},
                       valid_from="10/15/80")
    print()
    print("Stage 3 — migrated to temporal (rollback history replayed):")
    print("  as of 08/01/80, sliced at 08/01/80:",
          sorted((r['item'], r['qty'])
                 for r in temporal_db.timeslice("stock", "08/01/80",
                                                as_of="08/01/80")))
    print("  the old rollback answers survive the upgrade:",
          temporal_db.rollback("stock", "08/01/80").timeslice("08/01/80")
          == rollback_db.rollback("stock", "08/01/80"))
    print(temporal_db.temporal("stock").pretty("stock (bitemporal)"))

    # -- stage 4: a lossy replica, eyes open -------------------------------------
    print()
    print("Stage 4 — a reporting replica without the transaction axis:")
    try:
        migrate(temporal_db, HistoricalDatabase)
    except TemporalSupportError as error:
        print(f"  refused by default: {error}")
    replica = migrate(temporal_db, HistoricalDatabase, allow_loss=True)
    print("  with allow_loss=True, current history carried over:",
          replica.history("stock") == temporal_db.history("stock"))
    print("  and the replica, as promised, cannot roll back:",
          not replica.supports_rollback)


if __name__ == "__main__":
    main()
