#!/usr/bin/env python3
"""Quickstart: the paper's faculty example across all four database kinds.

Runs the exact transaction narrative of Snodgrass & Ahn (SIGMOD 1985),
Section 4, against each kind of database in the taxonomy, and reproduces
the paper's four worked queries — including the two different answers to
"what was Merrie's rank when Tom arrived?" depending on the transaction
time the question is asked *as of*.

Run:  python examples/quickstart.py
"""

from repro import (HistoricalDatabase, RollbackDatabase, Session,
                   SimulatedClock, StaticDatabase, TemporalDatabase)


def drive_history(session, clock, historical):
    """The paper's six transactions (§4), via TQuel."""
    valid = (lambda clause: " " + clause) if historical else (lambda _: "")

    session.execute("create faculty (name = string, rank = string) "
                    "key (name)")
    session.execute("range of f is faculty")

    clock.set("08/25/77")  # Merrie recorded ahead of her 09/01 start
    session.execute('append to faculty (name = "Merrie", rank = "associate")'
                    + valid('valid from "09/01/77"'))
    clock.set("12/01/82")  # Tom recorded, incorrectly, as full
    session.execute('append to faculty (name = "Tom", rank = "full")'
                    + valid('valid from "12/05/82"'))
    clock.set("12/07/82")  # the error corrected
    session.execute('replace f (rank = "associate") where f.name = "Tom"'
                    + valid('valid from "12/05/82"'))
    clock.set("12/15/82")  # Merrie's retroactive promotion
    session.execute('replace f (rank = "full") where f.name = "Merrie"'
                    + valid('valid from "12/01/82"'))
    clock.set("01/10/83")
    session.execute('append to faculty (name = "Mike", rank = "assistant")'
                    + valid('valid from "01/01/83"'))
    clock.set("02/25/84")  # Mike leaves, effective 03/01/84
    if historical:
        session.execute('delete f where f.name = "Mike" '
                        'valid from "03/01/84"')
    else:
        session.execute('delete f where f.name = "Mike"')


def fresh_session(db_class):
    clock = SimulatedClock("01/01/77")
    session = Session(db_class(clock=clock))
    drive_history(session, clock,
                  session.database.supports_historical_queries)
    session.execute("range of f1 is faculty")
    session.execute("range of f2 is faculty")
    return session


def banner(text):
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main():
    # -- 1. static (§4.1): one snapshot, the past is gone ---------------------
    banner("STATIC database (§4.1): a snapshot; updates discard the past")
    session = fresh_session(StaticDatabase)
    print(session.show('retrieve (f.name, f.rank) sort by name',
                       title="faculty (Figure 2 after all updates)"))
    print()
    print(session.show('retrieve (f.rank) where f.name = "Merrie"',
                       title='Quel: Merrie\'s rank'))

    # -- 2. static rollback (§4.2): transaction time, append-only -------------
    banner("STATIC ROLLBACK database (§4.2): every stored state retrievable")
    session = fresh_session(RollbackDatabase)
    from repro.tquel.printer import render_rollback
    print(render_rollback(session.database.store("faculty"),
                          title="faculty with transaction time (Figure 4)"))
    print()
    print(session.show(
        'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"',
        title='as of 12/10/82 (the promotion was recorded 12/15/82):'))

    # -- 3. historical (§4.3): valid time, history as best known --------------
    banner("HISTORICAL database (§4.3): reality as currently best known")
    session = fresh_session(HistoricalDatabase)
    print(session.database.history("faculty").pretty(
        "faculty with valid time (Figure 6)"))
    print()
    print(session.show(
        'retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" '
        'when f1 overlap start of f2',
        title="Merrie's rank when Tom arrived (when query):"))

    # -- 4. temporal (§4.4): both axes, the full story -------------------------
    banner("TEMPORAL database (§4.4): valid time AND transaction time")
    session = fresh_session(TemporalDatabase)
    print(session.database.temporal("faculty").pretty(
        "the bitemporal faculty relation (Figure 8)"))
    print()
    query = ('retrieve (f1.rank) where f1.name = "Merrie" and '
             'f2.name = "Tom" when f1 overlap start of f2 as of "{}"')
    print(session.show(query.format("12/10/82"),
                       title="...as the database believed on 12/10/82:"))
    print()
    print(session.show(query.format("12/20/82"),
                       title="...as the database believed on 12/20/82:"))
    print()
    print("The taxonomy, enforced: ask a static database to roll back and")
    print("you get a typed error, not silent nonsense —")
    static_session = fresh_session(StaticDatabase)
    try:
        static_session.execute('retrieve (f.rank) as of "12/10/82"')
    except Exception as error:
        print(f"  {type(error).__name__}: {error}")


if __name__ == "__main__":
    main()
