#!/usr/bin/env python3
"""Retroactive payroll: the paper's Section 3 scenario, made executable.

Section 3 of the paper argues that "application (in)dependence" is a poor
way to classify time, using a payroll example: salary updates are *batched*
("executed against the database only once or twice a month") while raises
take effect at arbitrary earlier dates.  Only a bitemporal database can
answer the question that scenario creates:

    On each payday, what did we actually pay (the salary the database
    showed that day), and what should we have paid (the salary we now
    know was in effect)?  Who is owed back pay?

This example builds the payroll history in a TemporalDatabase and computes
the reconciliation with rollback + timeslice — an audit that is
*impossible* in a static, rollback-only, or historical-only database.

Run:  python examples/payroll_retroactive.py
"""

from repro import Domain, Schema, SimulatedClock, TemporalDatabase
from repro.time import Instant


def month_day(month, day, year=83):
    return f"{month:02d}/{day:02d}/{year}"


def build_payroll():
    clock = SimulatedClock("01/01/83")
    database = TemporalDatabase(clock=clock)
    database.define("payroll", Schema.of(
        key=["employee"], employee=Domain.STRING, salary=Domain.INTEGER))

    # January 1: everyone hired, salaries on record.
    with database.begin() as txn:
        for employee, salary in (("alice", 4000), ("bob", 3500),
                                 ("carol", 5000)):
            database.insert("payroll", {"employee": employee,
                                        "salary": salary},
                            valid_from="01/01/83", txn=txn)

    # The HR batch run on the *first of each month* records raises whose
    # effective dates are scattered through the previous month.
    batches = [
        # (entered on, employee, new salary, effective from)
        ("03/01/83", "alice", 4400, "02/10/83"),
        ("03/01/83", "bob", 3800, "02/20/83"),
        ("05/01/83", "carol", 5500, "04/05/83"),
        ("07/01/83", "alice", 4800, "06/15/83"),
    ]
    current_batch = None
    txn = None
    for entered, employee, salary, effective in batches:
        if entered != current_batch:
            if txn is not None:
                txn.commit()
            clock.set(entered)
            txn = database.begin()
            current_batch = entered
        database.replace("payroll", {"employee": employee},
                         {"salary": salary}, valid_from=effective, txn=txn)
    if txn is not None:
        txn.commit()
    clock.set("08/01/83")
    return database


def main():
    database = build_payroll()
    paydays = [month_day(m, 28) for m in range(1, 8)]

    print("Payroll reconciliation — paid (believed then) vs owed (known now)")
    print("=" * 68)
    print(f"{'payday':>10} {'employee':>9} {'paid':>6} {'owed':>6} {'delta':>6}")
    back_pay = {}
    for payday in paydays:
        when = Instant.parse(payday)
        # What the database said that day — rollback to the payday, then
        # slice at the payday.
        believed = database.timeslice("payroll", when, as_of=when)
        # What we now know was in effect on that day.
        actual = database.timeslice("payroll", when)
        paid = {row["employee"]: row["salary"] for row in believed}
        owed = {row["employee"]: row["salary"] for row in actual}
        for employee in sorted(owed):
            delta = owed[employee] - paid.get(employee, 0)
            if delta:
                back_pay[employee] = back_pay.get(employee, 0) + delta
                print(f"{payday:>10} {employee:>9} "
                      f"{paid.get(employee, 0):>6} {owed[employee]:>6} "
                      f"{delta:>+6}")
    print("-" * 68)
    for employee, total in sorted(back_pay.items()):
        print(f"back pay owed to {employee}: {total}")

    print()
    print("The same question against the other kinds of database:")
    print(" - static:      knows only today's salaries; both columns gone")
    print(" - rollback:    can recompute 'paid', but 'owed' needs valid time")
    print(" - historical:  can recompute 'owed', but 'paid' needs rollback")
    print("Only the temporal database answers both — the paper's point.")

    print()
    print("Bitemporal detail for alice (every belief ever held):")
    print(database.temporal("payroll")
          .select(lambda row: row["employee"] == "alice")
          .pretty("payroll (alice)"))


if __name__ == "__main__":
    main()
