#!/usr/bin/env python3
"""A university registry: historical queries, events, user-defined time.

A larger TQuel session on a HistoricalDatabase, exercising the machinery
the paper associates with valid time (§4.3, §4.5):

- interval relations with retroactive and postactive changes;
- ``when`` joins between relations (who chaired while whom was a student);
- trend analysis ("How did the number of faculty change over the last 5
  years?" — one of §4.1's motivating queries);
- an *event* relation of degree awards carrying a user-defined time
  (the date printed on the diploma — "merely a date which appears on"
  the document, never interpreted by the DBMS);
- derived historical relations queried again (closure).

Run:  python examples/university_registry.py
"""

from repro import HistoricalDatabase, Session, SimulatedClock


def build():
    clock = SimulatedClock("01/01/78")
    session = Session(HistoricalDatabase(clock=clock))
    run = session.execute

    run("create faculty (name = string, rank = string) key (name)")
    run("create chairs (name = string) key (name)")
    run("create students (name = string, program = string) key (name)")
    # Degree awards are instantaneous events; 'diploma_date' is
    # user-defined time — present in the schema, never interpreted.
    run("create event degrees (name = string, degree = string, "
        "diploma_date = date)")

    run("range of f is faculty")
    run("range of c is chairs")
    run("range of s is students")
    run("range of d is degrees")

    clock.set("08/20/78")
    run('append to faculty (name = "Merrie", rank = "associate") '
        'valid from "09/01/78"')
    run('append to faculty (name = "Tom", rank = "assistant") '
        'valid from "09/01/78"')
    clock.set("06/15/79")
    run('append to students (name = "Ilsoo", program = "phd") '
        'valid from "09/01/79"')
    run('append to students (name = "Ada", program = "ms") '
        'valid from "09/01/79" to "06/01/81"')
    clock.set("01/10/80")
    run('append to chairs (name = "Merrie") valid from "01/01/80" '
        'to "01/01/83"')
    clock.set("05/02/81")
    run('replace f (rank = "associate") where f.name = "Tom" '
        'valid from "07/01/81"')
    clock.set("09/03/82")
    run('append to faculty (name = "Ursula", rank = "full") '
        'valid from "09/01/82"')
    run('append to chairs (name = "Ursula") valid from "01/01/83"')
    clock.set("06/10/83")
    # Ada's MS awarded; the diploma is dated the ceremony day.
    run('append to degrees (name = "Ada", degree = "ms", '
        'diploma_date = "06/05/81") valid at "06/01/81"')
    clock.set("12/20/84")
    # Retroactive correction: Merrie was actually promoted to full in 1983.
    run('replace f (rank = "full") where f.name = "Merrie" '
        'valid from "07/01/83"')
    clock.set("06/01/85")
    run('append to degrees (name = "Ilsoo", degree = "phd", '
        'diploma_date = "05/28/85") valid at "05/20/85"')
    run('delete s where s.name = "Ilsoo" valid from "05/20/85"')
    return session, clock


def main():
    session, clock = build()

    print("The faculty history as best known today (valid time):")
    print(session.database.history("faculty").pretty("faculty"))

    print()
    print("Who chaired the department while Ilsoo was a student?")
    print(session.show(
        'retrieve (chair = c.name) where s.name = "Ilsoo" '
        "when c overlap s"))

    print()
    print("Trend analysis — faculty head-count by year (a §4.1 motivating "
          "query):")
    for year in range(79, 86):
        count = session.database.timeslice(
            "faculty", f"10/01/{year}").cardinality
        print(f"  10/01/{year}: {'▇' * count} {count}")

    print()
    print("Degree events with user-defined diploma dates (Figure 9 style):")
    print(session.database.history("degrees").pretty("degrees", event=True))

    print()
    print("Closure — store a derived relation and query it historically:")
    session.execute('retrieve into merrie_ranks (f.rank) '
                    'where f.name = "Merrie"')
    session.execute("range of m is merrie_ranks")
    print(session.show('retrieve (m.rank) when m overlap "01/01/84"',
                       title="Merrie's rank during 1984 (from the derived "
                             "relation):"))

    print()
    print("Aggregates range over the recorded facts (all of valid time):")
    print(session.show("retrieve (f.rank, n = count(f.name))",
                       title="rank facts ever recorded, by rank:"))
    print(session.show('retrieve (n = count(unique f.name))',
                       title="distinct faculty ever:"))


if __name__ == "__main__":
    main()
