#!/usr/bin/env python3
"""Engineering version control on a static rollback database.

The paper cites "release dates of engineering versions" as a motivating
case (§2.1), drawing on the CAM-database work it surveys (Mueller &
Steinbauer 1983 in Figures 1 and 13).  This example manages part revisions
in a RollbackDatabase:

- the *current* state is the released bill of materials;
- ``as of`` reconstructs exactly what was released on any historical date
  — "which revisions shipped in the build of 03/15/80?";
- both physical representations the paper discusses are compared for
  storage (the Figure-3 state cube vs. the Figure-4 interval table);
- vacuuming shows the controlled way to retire ancient history.

Run:  python examples/engineering_versions.py
"""

from repro import Domain, RollbackDatabase, Schema, SimulatedClock
from repro.core import vacuum_rollback
from repro.tquel import Session
from repro.tquel.printer import render_rollback


def build(representation="interval"):
    clock = SimulatedClock("01/01/80")
    database = RollbackDatabase(clock=clock, representation=representation)
    session = Session(database)
    session.execute("create parts (part = string, revision = integer, "
                    "status = string) key (part)")
    session.execute("range of p is parts")

    timeline = [
        ("01/05/80", 'append to parts (part = "rotor", revision = 1, '
                     'status = "released")'),
        ("01/20/80", 'append to parts (part = "stator", revision = 1, '
                     'status = "released")'),
        ("02/11/80", 'append to parts (part = "housing", revision = 1, '
                     'status = "released")'),
        # rotor rev 2 qualifies
        ("03/02/80", 'replace p (revision = 2) where p.part = "rotor"'),
        # stator rev 1 recalled, rev 2 rushed out
        ("04/18/80", 'replace p (revision = 2, status = "recalled") '
                     'where p.part = "stator"'),
        ("04/25/80", 'replace p (status = "released") '
                     'where p.part = "stator"'),
        # housing discontinued
        ("06/30/80", 'delete p where p.part = "housing"'),
        # rotor rev 3
        ("09/14/80", 'replace p (revision = 3) where p.part = "rotor"'),
    ]
    for day, statement in timeline:
        clock.set(day)
        session.execute(statement)
    return session, clock


def main():
    session, clock = build()
    database = session.database

    print("Current released parts:")
    print(session.show("retrieve (p.part, p.revision, p.status) "
                       "sort by part"))

    print()
    print("What shipped in the 03/15/80 build? (rollback)")
    print(session.show('retrieve (p.part, p.revision) as of "03/15/80" '
                       "sort by part"))

    print()
    print("Full transaction-time record (the Figure-4 representation):")
    print(render_rollback(database.store("parts"), "parts"))

    print()
    print("Was the recalled stator ever in a shipped build?")
    for probe in ("04/20/80", "04/26/80"):
        state = database.rollback("parts", probe)
        stator = state.select(lambda row: row["part"] == "stator")
        status = stator.column("status")[0] if len(stator) else "absent"
        print(f"  build of {probe}: stator is {status}")

    # -- storage: the paper's duplication argument -----------------------------
    print()
    print("Storage, interval table vs. state cube "
          "(the paper calls the cube 'impractical'):")
    interval_session, _ = build("interval")
    states_session, _ = build("states")
    interval_cells = interval_session.database.store("parts").storage_cells()
    states_cells = states_session.database.store("parts").storage_cells()
    print(f"  interval representation: {interval_cells:5d} stored cells")
    print(f"  state-cube representation: {states_cells:3d} stored cells "
          f"({states_cells / interval_cells:.1f}x)")

    # -- vacuuming --------------------------------------------------------------
    print()
    print("Retiring history before 06/01/80 (vacuum):")
    store = database.store("parts")
    vacuumed = vacuum_rollback(store, "06/01/80")
    print(f"  rows before: {len(store)}, after: {len(vacuumed)}")
    print(f"  rollback to 09/14/80 unchanged: "
          f"{vacuumed.rollback('09/14/80') == store.rollback('09/14/80')}")
    print(f"  rollback to 03/15/80 now empty: "
          f"{vacuumed.rollback('03/15/80').is_empty}")


if __name__ == "__main__":
    main()
