#!/usr/bin/env python3
"""Durable audit trails: the journal, replay, and dump/load.

Because transaction time is append-only and system-assigned, the commit
journal is a *complete* description of a temporal database — this example
demonstrates that operationally:

1. run a bitemporal scenario with every commit journaled to disk;
2. "lose" the database and rebuild it by replaying the journal — every
   rollback answer survives, commit times included;
3. dump/load the database as JSON as an alternative persistence path;
4. show the journal doubling as a human-auditable trail.

Run:  python examples/audit_trail.py
"""

import os
import tempfile

from repro import Session, SimulatedClock, TemporalDatabase
from repro.storage import Journal, dumps_database, loads_database


def build(journal_path):
    clock = SimulatedClock("01/01/84")
    database = TemporalDatabase(clock=clock)
    Journal(journal_path).bind(database)
    session = Session(database)
    run = session.execute

    run("create accounts (owner = string, balance = integer) key (owner)")
    run("range of a is accounts")
    clock.set("01/05/84")
    run('append to accounts (owner = "ada", balance = 1000) '
        'valid from "01/05/84"')
    clock.set("02/01/84")
    run('append to accounts (owner = "bob", balance = 500) '
        'valid from "02/01/84"')
    clock.set("03/10/84")
    run('replace a (balance = 750) where a.owner = "ada" '
        'valid from "03/10/84"')
    clock.set("04/02/84")
    # A correction: bob's opening balance was recorded wrong all along.
    run('replace a (balance = 550) where a.owner = "bob" '
        'valid from "02/01/84"')
    return session, clock


def main():
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "accounts.journal")
        session, clock = build(journal_path)
        database = session.database

        print("The live database (bitemporal):")
        print(database.temporal("accounts").pretty("accounts"))

        print()
        print("The journal on disk — one framed line per commit\n"
              "  (<tag> <length> <crc32> <json payload>, see docs/DURABILITY.md):")
        with open(journal_path) as handle:
            for line in handle:
                print(" ", line.rstrip()[:100] + ("…" if len(line) > 100
                                                  else ""))

        # -- disaster strikes: rebuild from the journal ------------------------
        print()
        print("Rebuilding from the journal alone...")
        rebuilt = Journal(journal_path).replay(TemporalDatabase)
        checks = {
            "bitemporal store identical":
                rebuilt.temporal("accounts") == database.temporal("accounts"),
            "rollback to 03/15/84 identical":
                rebuilt.rollback("accounts", "03/15/84")
                == database.rollback("accounts", "03/15/84"),
            "commit times identical":
                [r.commit_time for r in rebuilt.log]
                == [r.commit_time for r in database.log],
        }
        for label, passed in checks.items():
            print(f"  {label}: {'OK' if passed else 'FAILED'}")

        # -- the audit question the journal answers -----------------------------
        print()
        print("Audit: what did we believe bob's 02/15/84 balance was...")
        for as_of in ("02/15/84", "04/05/84"):
            answer = rebuilt.timeslice("accounts", "02/15/84", as_of=as_of)
            bob = [row["balance"] for row in answer if row["owner"] == "bob"]
            print(f"  ...as of {as_of}: {bob[0] if bob else 'unknown'}")
        print("  (the 04/02/84 correction is visible on the transaction "
              "axis, not papered over)")

        # -- JSON dump/load as the second persistence path ----------------------
        print()
        text = dumps_database(database)
        restored = loads_database(text)
        print(f"JSON dump: {len(text)} bytes; reload identical: "
              f"{restored.temporal('accounts') == database.temporal('accounts')}")
        clock_last = restored.manager.clock.last
        new_commit = restored.insert(
            "accounts", {"owner": "eve", "balance": 10},
            valid_from="05/01/84")
        print(f"restored database accepts new commits after "
              f"{clock_last}: committed at {new_commit}")


if __name__ == "__main__":
    main()
