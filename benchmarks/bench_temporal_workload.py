"""Temporal databases under retroactive workloads: growth and query cost.

Two quantitative consequences of §4.4's append-only design:

1. **Growth.** A temporal relation never forgets: every correction adds
   rows (closing old ones, opening new).  Sweeping the error-correction
   ratio shows the temporal store growing past the historical store that
   forgets its corrections — the storage price of a complete audit trail.
2. **Query cost.** The bitemporal point query (valid at v, as of t) costs
   one visibility scan + one timeslice; measured against history size.

Run:  pytest benchmarks/bench_temporal_workload.py --benchmark-only -s
"""

import time

from repro.core import HistoricalDatabase, TemporalDatabase
from repro.time import Instant, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

CORRECTION_RATIOS = [0.0, 0.25, 0.5, 0.75]
REPEATS = 100


def build(db_class, correction_ratio, people=25):
    workload = FacultyWorkload(people=people, events_per_person=5,
                               correction_ratio=correction_ratio, seed=13)
    database = db_class(clock=SimulatedClock("01/01/79"))
    apply_workload(database, workload)
    return database


def test_temporal_growth_and_query_cost(benchmark):
    growth_rows = []
    for ratio in CORRECTION_RATIOS:
        temporal_db = build(TemporalDatabase, ratio)
        historical_db = build(HistoricalDatabase, ratio)
        temporal_rows = len(temporal_db.temporal("faculty"))
        historical_rows = len(historical_db.history("faculty"))
        # The two always agree on current reality...
        assert temporal_db.history("faculty") == \
            historical_db.history("faculty")
        growth_rows.append((ratio, historical_rows, temporal_rows,
                            temporal_rows / historical_rows))

    # Growth shape: more corrections → relatively bigger temporal store.
    assert growth_rows[-1][3] > growth_rows[0][3]

    # Bitemporal point-query latency against the largest store.
    temporal_db = build(TemporalDatabase, 0.5)
    valid_probe = Instant.parse("06/01/82")
    txn_probe = Instant.parse("01/01/83")

    start = time.perf_counter()
    for _ in range(REPEATS):
        temporal_db.timeslice("faculty", valid_probe, as_of=txn_probe)
    bitemporal_us = (time.perf_counter() - start) / REPEATS * 1e6

    benchmark(temporal_db.timeslice, "faculty", valid_probe,
              as_of=txn_probe)

    print()
    print("store growth under corrections (rows; same current reality)")
    print(f"{'correction%':>12} {'historical':>11} {'temporal':>9} "
          f"{'temporal/hist':>14}")
    for ratio, historical_rows, temporal_rows, rel in growth_rows:
        print(f"{ratio * 100:>11.0f}% {historical_rows:>11} "
              f"{temporal_rows:>9} {rel:>13.2f}x")
    print()
    print(f"bitemporal point query (valid at v, as of t): "
          f"{bitemporal_us:.1f} us on {len(temporal_db.temporal('faculty'))} rows")
    print("corrections are free in a historical DB (they overwrite) and")
    print("permanent in a temporal DB (they append) — the audit-trail tax.")
