"""Shared scenario builders for the benchmark harness.

Every figure-bench reconstructs the paper's examples from their
transaction narratives using these helpers; the performance benches scale
the same shapes up with the generators in :mod:`repro.workload`.
"""

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.relational import Attribute, Domain, Schema
from repro.time import Instant, SimulatedClock

RANK = Domain.enumeration("rank", "assistant", "associate", "full")


def faculty_schema() -> Schema:
    """The paper's ``faculty(name, rank)`` schema with ``name`` as key."""
    return Schema.of(key=["name"], name=Domain.STRING, rank=RANK)


def build_faculty(db_class, **db_kwargs):
    """The paper's Section-4 faculty history, in a database of any kind.

    Transactions (see Figures 4, 6, 8):

    ========  =====================================================
    08/25/77  Merrie recorded as associate, valid from 09/01/77
    12/01/82  Tom recorded as full, valid from 12/05/82
    12/07/82  correction: Tom is actually an associate
    12/15/82  Merrie's retroactive promotion, valid from 12/01/82
    01/10/83  Mike recorded as assistant, valid from 01/01/83
    02/25/84  Mike leaves effective 03/01/84
    ========  =====================================================
    """
    clock = SimulatedClock("01/01/77")
    database = db_class(clock=clock, **db_kwargs)
    database.define("faculty", faculty_schema())
    historical = database.kind.supports_historical_queries

    def args(**valid):
        return valid if historical else {}

    clock.set("08/25/77")
    database.insert("faculty", {"name": "Merrie", "rank": "associate"},
                    **args(valid_from="09/01/77"))
    clock.set("12/01/82")
    database.insert("faculty", {"name": "Tom", "rank": "full"},
                    **args(valid_from="12/05/82"))
    clock.set("12/07/82")
    database.replace("faculty", {"name": "Tom"}, {"rank": "associate"},
                     **args(valid_from="12/05/82"))
    clock.set("12/15/82")
    database.replace("faculty", {"name": "Merrie"}, {"rank": "full"},
                     **args(valid_from="12/01/82"))
    clock.set("01/10/83")
    database.insert("faculty", {"name": "Mike", "rank": "assistant"},
                    **args(valid_from="01/01/83"))
    clock.set("02/25/84")
    database.delete("faculty", {"name": "Mike"},
                    **args(valid_from="03/01/84"))
    return database, clock


def build_promotion_event_relation():
    """The Figure-9 'promotion' temporal event relation, from its narrative."""
    clock = SimulatedClock("01/01/77")
    database = TemporalDatabase(clock=clock)
    rank = Domain.enumeration("rank", "assistant", "associate", "full",
                              "left")
    schema = Schema([
        Attribute("name", Domain.STRING),
        Attribute("rank", rank),
        Attribute("effective date", Domain.user_defined_time("effective date")),
    ])
    database.define("promotion", schema, event=True)

    rows = [
        ("08/25/77", "Merrie", "associate", "09/01/77", "08/25/77"),
        ("12/01/82", "Tom", "full", "12/05/82", "12/05/82"),
        ("12/07/82", "Tom", "associate", "12/05/82", "12/07/82"),
        ("12/15/82", "Merrie", "full", "12/01/82", "12/11/82"),
        ("01/10/83", "Mike", "assistant", "01/01/83", "01/01/83"),
        ("02/25/84", "Mike", "left", "03/01/84", "02/25/84"),
    ]
    for commit, name, rank_value, effective, valid_at in rows:
        clock.set(commit)
        database.insert("promotion",
                        {"name": name, "rank": rank_value,
                         "effective date": Instant.parse(effective)},
                        valid_at=valid_at)
    return database, clock


def tquel_session(database):
    """A session with range variables f, f1, f2 over 'faculty'."""
    from repro.tquel import Session
    session = Session(database)
    for variable in ("f", "f1", "f2"):
        session.execute(f"range of {variable} is faculty")
    return session
