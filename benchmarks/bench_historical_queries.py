"""Historical query costs: timeslice, when-joins, coalescing.

§4.3: "more sophisticated operations are necessary to manipulate the
complex semantics of valid time adequately, compared to the simple
rollback operation."  This bench quantifies that claim — on identically
sized stores, a valid-timeslice is a scan like a rollback, but a ``when``
join is a product over fact pairs, and coalescing is the canonicalization
pass everything else leans on.

Run:  pytest benchmarks/bench_historical_queries.py --benchmark-only -s
"""

import time

from repro.core import HistoricalDatabase, when_join
from repro.time import Instant, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

SIZES = [10, 20, 40]
REPEATS = 50


def build(people):
    workload = FacultyWorkload(people=people, events_per_person=4, seed=5)
    database = HistoricalDatabase(clock=SimulatedClock("01/01/79"))
    apply_workload(database, workload)
    return database


def timed(repeat, operation):
    start = time.perf_counter()
    for _ in range(repeat):
        operation()
    return (time.perf_counter() - start) / repeat * 1e6


def test_historical_queries(benchmark):
    probe = Instant.parse("06/01/82")
    rows = []
    for people in SIZES:
        database = build(people)
        history = database.history("faculty")
        timeslice_us = timed(REPEATS,
                             lambda: history.timeslice(probe))
        join_us = timed(max(1, REPEATS // 10), lambda: when_join(
            history, history, when=lambda a, b: a.overlaps(b)))
        coalesce_us = timed(REPEATS, history.coalesce)
        rows.append((people, len(history), timeslice_us, join_us,
                     coalesce_us))

    database = build(SIZES[1])
    history = database.history("faculty")
    benchmark(history.timeslice, probe)

    print()
    print("historical operation cost vs. store size (microseconds)")
    print(f"{'people':>7} {'facts':>6} {'timeslice':>10} {'when-join':>11} "
          f"{'coalesce':>9}")
    for people, facts, timeslice_us, join_us, coalesce_us in rows:
        print(f"{people:>7} {facts:>6} {timeslice_us:>10.1f} "
              f"{join_us:>11.1f} {coalesce_us:>9.1f}")
    print()
    print("timeslice scales like the rollback scan; the when-join pays a")
    print("pairwise product — the 'more sophisticated operations' of §4.3.")

    # Shape: the join is superlinear relative to the slice.
    first, last = rows[0], rows[-1]
    slice_growth = last[2] / first[2]
    join_growth = last[3] / first[3]
    assert join_growth > slice_growth
