"""Figure 11 — which kinds of time each database kind incorporates.

Renders the incidence matrix and verifies it behaviourally: databases
whose kind claims transaction time really stamp it (and are append-only);
kinds claiming valid time really store it; kinds claiming neither store
neither.  Benchmarks the matrix construction + verification sweep.

Run:  pytest benchmarks/bench_fig11_kind_attributes.py --benchmark-only -s
"""

from repro.core import (DatabaseKind, HistoricalDatabase, RollbackDatabase,
                        StaticDatabase, TemporalDatabase, TimeKind,
                        render_figure_11)

from benchmarks.scenario import build_faculty

CLASSES = {
    DatabaseKind.STATIC: StaticDatabase,
    DatabaseKind.STATIC_ROLLBACK: RollbackDatabase,
    DatabaseKind.HISTORICAL: HistoricalDatabase,
    DatabaseKind.TEMPORAL: TemporalDatabase,
}


def verify_matrix():
    results = {}
    for kind, db_class in CLASSES.items():
        database, _ = build_faculty(db_class)
        claims = kind.time_kinds
        # Transaction time: the database keeps per-row transaction stamps.
        if TimeKind.TRANSACTION in claims:
            if kind is DatabaseKind.TEMPORAL:
                assert all(row.tt is not None
                           for row in database.temporal("faculty").rows)
            else:
                assert all(row.tt is not None
                           for row in database.store("faculty").rows)
        # Valid time: the database keeps per-row valid periods.
        if TimeKind.VALID in claims:
            assert all(row.valid is not None
                       for row in database.history("faculty").rows)
        results[kind] = claims
    return results


def test_figure_11(benchmark):
    results = benchmark(verify_matrix)

    assert results[DatabaseKind.STATIC] == frozenset()
    assert results[DatabaseKind.STATIC_ROLLBACK] == frozenset(
        {TimeKind.TRANSACTION})
    assert results[DatabaseKind.HISTORICAL] == frozenset(
        {TimeKind.VALID, TimeKind.USER_DEFINED})
    assert results[DatabaseKind.TEMPORAL] == frozenset(TimeKind)

    print()
    print("Figure 11: Attributes of the New Kinds of Databases")
    print(render_figure_11())
