"""Figure 8 — the bitemporal faculty relation, and §4.4's two queries.

Rebuilds Figure 8's seven-row bitemporal table from the transaction
narrative, asserts it cell-for-cell, and benchmarks the paper's query at
both as-of instants — the same question giving two answers:

    retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom"
    when f1 overlap start of f2 as of "12/10/82"   ->  associate
    ... as of "12/20/82"                            ->  full

Run:  pytest benchmarks/bench_fig08_temporal_relation.py --benchmark-only -s
"""

from repro.core import TemporalDatabase

from benchmarks.scenario import build_faculty, tquel_session

QUERY = ('retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" '
         'when f1 overlap start of f2 as of "{}"')

FIGURE_8 = {
    ("Merrie", "associate", "09/01/77", "∞", "08/25/77", "12/15/82"),
    ("Merrie", "associate", "09/01/77", "12/01/82", "12/15/82", "∞"),
    ("Merrie", "full", "12/01/82", "∞", "12/15/82", "∞"),
    ("Tom", "full", "12/05/82", "∞", "12/01/82", "12/07/82"),
    ("Tom", "associate", "12/05/82", "∞", "12/07/82", "∞"),
    ("Mike", "assistant", "01/01/83", "∞", "01/10/83", "02/25/84"),
    ("Mike", "assistant", "01/01/83", "03/01/84", "02/25/84", "∞"),
}


def test_figure_8(benchmark):
    database, _ = build_faculty(TemporalDatabase)
    session = tquel_session(database)

    def both_queries():
        return (session.query(QUERY.format("12/10/82")),
                session.query(QUERY.format("12/20/82")))

    early, late = benchmark(both_queries)

    # The stored relation is exactly Figure 8, all seven rows.
    rows = {(r.data["name"], r.data["rank"],
             r.valid.start.paper_format(), r.valid.end.paper_format(),
             r.tt.start.paper_format(), r.tt.end.paper_format())
            for r in database.temporal("faculty").rows}
    assert rows == FIGURE_8

    # As of 12/10/82 — the paper's printed result row, all six columns.
    assert len(early) == 1
    row = early.rows[0]
    assert row.data["rank"] == "associate"
    assert (row.valid.start.paper_format(),
            row.valid.end.paper_format()) == ("09/01/77", "∞")
    assert (row.tt.start.paper_format(),
            row.tt.end.paper_format()) == ("08/25/77", "12/15/82")

    # As of 12/20/82 — "the answer would be full because the fact was
    # recorded retroactively by that time".
    assert [r.data["rank"] for r in late.rows] == ["full"]

    print()
    print(database.temporal("faculty").pretty(
        "Figure 8: a temporal relation"))
    print()
    print(session.render(early, title="§4.4 query as of 12/10/82:"))
    print()
    print(session.render(late, title="§4.4 query as of 12/20/82:"))
