"""The whole taxonomy, head to head: one workload, four database kinds.

Applies one identical workload to all four kinds and measures what each
can answer and at what cost:

- **snapshot** (all four kinds) — and they agree wherever defined;
- **rollback / as-of** (rollback + temporal only);
- **timeslice / historical** (historical + temporal only);
- **bitemporal point** (temporal only);

plus the per-kind storage bill.  The result is Figure 10 as a
cost/capability matrix: each step up in capability is paid for in rows
stored and microseconds per query.

Run:  pytest benchmarks/bench_taxonomy_matrix.py --benchmark-only -s
"""

import time

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import TemporalSupportError
from repro.time import Instant, SimulatedClock
from repro.workload import PayrollWorkload, apply_workload

REPEATS = 100
KINDS = [("static", StaticDatabase), ("rollback", RollbackDatabase),
         ("historical", HistoricalDatabase), ("temporal", TemporalDatabase)]


def build_all():
    workload = PayrollWorkload(employees=20, months=12, seed=17)
    steps = workload.steps()
    databases = {}
    for label, db_class in KINDS:
        database = db_class(clock=SimulatedClock("01/01/79"))
        apply_workload(database, workload, steps=steps)
        database.manager.clock.source.set("01/01/90")
        databases[label] = database
    return databases


def timed_or_none(operation):
    try:
        operation()  # probe support first
    except TemporalSupportError:
        return None
    start = time.perf_counter()
    for _ in range(REPEATS):
        operation()
    return (time.perf_counter() - start) / REPEATS * 1e6


def storage_rows(database):
    if isinstance(database, TemporalDatabase):
        return len(database.temporal("payroll"))
    if isinstance(database, HistoricalDatabase):
        return len(database.history("payroll"))
    if isinstance(database, RollbackDatabase):
        return len(database.store("payroll"))
    return len(database.snapshot("payroll"))


def test_taxonomy_matrix(benchmark):
    databases = build_all()
    valid_probe = Instant.parse("06/15/80")
    txn_probe = Instant.parse("06/01/80")

    matrix = {}
    for label, database in databases.items():
        matrix[label] = {
            "rows": storage_rows(database),
            "snapshot": timed_or_none(lambda: database.snapshot("payroll")),
            "as_of": timed_or_none(
                lambda: database.rollback("payroll", txn_probe)),
            "timeslice": timed_or_none(
                lambda: database.timeslice("payroll", valid_probe)),
            "bitemporal": (timed_or_none(lambda: database.timeslice(
                "payroll", valid_probe, as_of=txn_probe))
                if isinstance(database, TemporalDatabase) else None),
        }

    # Capability pattern == Figure 10.
    assert matrix["static"]["as_of"] is None
    assert matrix["static"]["timeslice"] is None
    assert matrix["rollback"]["as_of"] is not None
    assert matrix["rollback"]["timeslice"] is None
    assert matrix["historical"]["as_of"] is None
    assert matrix["historical"]["timeslice"] is not None
    assert all(matrix["temporal"][op] is not None
               for op in ("snapshot", "as_of", "timeslice", "bitemporal"))

    # Agreement wherever two kinds share a capability.
    assert databases["static"].snapshot("payroll") == \
        databases["rollback"].snapshot("payroll")
    assert databases["historical"].history("payroll") == \
        databases["temporal"].history("payroll")
    # (A rollback DB's as-of state and a temporal DB's rollback are not
    # directly comparable under retroactive workloads: the former holds
    # the then-current snapshot, the latter the then-current *historical*
    # state.  Their agreement on shared ground is the history check above.)

    # Storage ordering: each capability costs rows.
    assert (matrix["static"]["rows"] <= matrix["rollback"]["rows"]
            <= matrix["temporal"]["rows"])

    benchmark(databases["temporal"].timeslice, "payroll", valid_probe,
              as_of=txn_probe)

    print()
    print("The taxonomy as a cost/capability matrix (us/query; '-' = "
          "unsupported, by type)")
    header = (f"{'kind':>11} {'rows':>6} {'snapshot':>9} {'as-of':>8} "
              f"{'timeslice':>10} {'bitemporal':>11}")
    print(header)
    for label, row in matrix.items():
        def cell(value):
            return f"{value:.1f}" if value is not None else "-"
        print(f"{label:>11} {row['rows']:>6} {cell(row['snapshot']):>9} "
              f"{cell(row['as_of']):>8} {cell(row['timeslice']):>10} "
              f"{cell(row['bitemporal']):>11}")
    print()
    print("Reading: capability strictly grows down the table (Figure 10),")
    print("and so do storage and the cost of the richest query each kind")
    print("supports — the price of remembering more.")
