"""Figure 1 — "Types of Time": the prior literature's terminology.

Regenerates the paper's survey table of how earlier papers characterized
their time attributes (append-only?, application-independent?,
representation vs. reality) and benchmarks the classification machinery.

Run:  pytest benchmarks/bench_fig01_prior_terminology.py --benchmark-only -s
"""

from repro.core.taxonomy import FIGURE_1, Models, render_figure_1


def test_figure_1(benchmark):
    table = benchmark(render_figure_1)

    # The reproduced table carries every row of the paper's Figure 1.
    assert len(FIGURE_1) == 13
    for term in FIGURE_1:
        assert term.terminology.split(" (")[0] in table
    # Spot-check the semantics of key rows against the paper.
    ben_zvi_registration = next(t for t in FIGURE_1
                                if t.terminology == "Registration")
    assert ben_zvi_registration.append_only is True
    assert ben_zvi_registration.models is Models.REPRESENTATION
    jones_user_defined = next(t for t in FIGURE_1
                              if t.terminology == "User Defined")
    assert jones_user_defined.application_independent is False

    print()
    print("Figure 1: Types of Time (prior terminology)")
    print(table)
