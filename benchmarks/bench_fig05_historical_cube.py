"""Figure 5 — an historical relation: same transactions, different axis.

Figure 5 runs the *same* transaction sequence as Figure 3, but on a
historical database — and then a later transaction "has removed an
erroneous tuple inserted on the first transaction", which is impossible
on a rollback relation.  The reproduced check: after the error removal,
no timeslice of the historical relation ever shows the erroneous tuple —
the correction rewrote the past — while the rollback database from
Figure 3 can still produce it.

Run:  pytest benchmarks/bench_fig05_historical_cube.py --benchmark-only -s
"""

from repro.core import HistoricalDatabase, RollbackDatabase
from repro.relational import Domain, Schema
from repro.time import Instant, SimulatedClock


def build_pair():
    """The Figure 3/5 narrative on both kinds, plus the error removal."""
    databases = {}
    for label, db_class in (("rollback", RollbackDatabase),
                            ("historical", HistoricalDatabase)):
        clock = SimulatedClock("01/01/80")
        database = db_class(clock=clock)
        database.define("r", Schema.of(name=Domain.STRING))
        historical = database.kind.supports_historical_queries

        def args(**valid):
            return valid if historical else {}

        with database.begin() as txn:
            for name in ("a", "b", "c"):
                database.insert("r", {"name": name},
                                **args(valid_from="01/01/80"), txn=txn)
        clock.advance(1)
        database.insert("r", {"name": "d"}, **args(valid_from="01/02/80"))
        clock.advance(1)
        with database.begin() as txn:
            database.delete("r", {"name": "a"},
                            **args(valid_from="01/03/80"), txn=txn)
            database.insert("r", {"name": "e"},
                            **args(valid_from="01/03/80"), txn=txn)
        # The later transaction of Figure 5: tuple 'b' was an error and is
        # removed outright (all validity) — only historical DBs can.
        clock.advance(1)
        if historical:
            database.delete("r", {"name": "b"})
        databases[label] = (database, clock)
    return databases


def test_figure_5(benchmark):
    databases = build_pair()
    historical_db, clock = databases["historical"]
    rollback_db, _ = databases["rollback"]

    probes = [Instant.parse(f"01/0{day}/80") for day in range(1, 5)]

    def timeslice_sweep():
        return [historical_db.timeslice("r", probe) for probe in probes]

    slices = benchmark(timeslice_sweep)

    # The error is gone from *every* valid instant of the historical DB.
    for timeslice in slices:
        assert "b" not in timeslice.column("name")
    # ...but the rollback DB can still roll back to the incorrect state:
    # "Static rollback DBMS's can rollback to an incorrect previous static
    # relation; historical DBMS's can record the current knowledge about
    # the past."
    assert "b" in rollback_db.rollback("r", "01/02/80").column("name")

    print()
    print("Figure 5: an historical relation (after removing erroneous 'b')")
    print(historical_db.history("r").pretty("r"))
    print()
    for probe, timeslice in zip(probes, slices):
        names = ", ".join(sorted(timeslice.column("name"))) or "(empty)"
        print(f"  valid at {probe}: {{{names}}}")
    print(f"  rollback DB still shows the error as of 01/02/80: "
          f"{sorted(rollback_db.rollback('r', '01/02/80').column('name'))}")
