"""Figure 9 — the temporal event relation with user-defined time.

Rebuilds the ``promotion`` relation of §4.5: an *event* relation (one
valid instant per tuple) carrying an ``effective date`` column of
user-defined time — stored and formatted by the DBMS but never
interpreted.  Benchmarks rollback over it and asserts the paper's rows,
including that "Merrie's retroactive promotion to full was signed four
days before it was recorded in the database".

Run:  pytest benchmarks/bench_fig09_event_relation.py --benchmark-only -s
"""

from benchmarks.scenario import build_promotion_event_relation

FIGURE_9 = {
    # (name, rank, effective date, valid at, txn start)
    ("Merrie", "associate", "09/01/77", "08/25/77", "08/25/77"),
    ("Tom", "full", "12/05/82", "12/05/82", "12/01/82"),
    ("Tom", "associate", "12/05/82", "12/07/82", "12/07/82"),
    ("Merrie", "full", "12/01/82", "12/11/82", "12/15/82"),
    ("Mike", "assistant", "01/01/83", "01/01/83", "01/10/83"),
    ("Mike", "left", "03/01/84", "02/25/84", "02/25/84"),
}


def test_figure_9(benchmark):
    database, _ = build_promotion_event_relation()
    relation = database.temporal("promotion")

    state = benchmark(database.rollback, "promotion", "12/10/82")

    rows = {(r.data["name"], r.data["rank"],
             r.data["effective date"].paper_format(),
             r.valid.start.paper_format(), r.tt.start.paper_format())
            for r in relation.rows}
    assert rows == FIGURE_9

    # Event semantics: every valid time is a single chronon.
    assert all(r.valid.is_instantaneous for r in relation.rows)
    # Merrie's promotion letter: signed (valid) 12/11/82, recorded
    # (transaction) 12/15/82 — four days apart.
    merrie_full = next(r for r in relation.rows
                       if r.data["name"] == "Merrie"
                       and r.data["rank"] == "full")
    assert merrie_full.tt.start - merrie_full.valid.start == 4
    # User-defined time is not interpreted: the rollback as of 12/10/82
    # contains three events regardless of any effective date.
    assert len(state) == 3

    print()
    print(relation.pretty("Figure 9: a temporal event relation", event=True))
    print()
    print("Events known as of 12/10/82 "
          "(user-defined 'effective date' plays no part):")
    print(state.pretty(event=True))
