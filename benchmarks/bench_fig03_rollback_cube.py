"""Figure 3 — a static rollback relation as a sequence of states.

Reproduces the paper's three-transaction narrative over the state-cube
representation — "(1) the addition of three tuples, (2) the addition of a
tuple, and (3) the deletion of one tuple (entered in the first
transaction) and the addition of another" — and benchmarks the rollback
(vertical-slice) operation over it.

Run:  pytest benchmarks/bench_fig03_rollback_cube.py --benchmark-only -s
"""

from repro.core import RollbackDatabase
from repro.relational import Domain, Schema
from repro.time import SimulatedClock


def build_cube():
    clock = SimulatedClock("01/01/80")
    database = RollbackDatabase(clock=clock, representation="states")
    database.define("r", Schema.of(name=Domain.STRING))
    with database.begin() as txn:  # transaction 1: add three tuples
        for name in ("a", "b", "c"):
            database.insert("r", {"name": name}, txn=txn)
    clock.advance(1)
    database.insert("r", {"name": "d"})  # transaction 2: add one
    clock.advance(1)
    with database.begin() as txn:  # transaction 3: delete one, add one
        database.delete("r", {"name": "a"}, txn=txn)
        database.insert("r", {"name": "e"}, txn=txn)
    return database


def test_figure_3(benchmark):
    database = build_cube()
    states = database.store("r").states

    def rollback_all():
        return [database.rollback("r", when) for when, _ in states]

    slices = benchmark(rollback_all)

    # The cube: three appended static states, exactly as the narrative says.
    assert [len(state) for _, state in states] == [3, 4, 4]
    assert {row["name"] for row in slices[0]} == {"a", "b", "c"}
    assert {row["name"] for row in slices[1]} == {"a", "b", "c", "d"}
    assert {row["name"] for row in slices[2]} == {"b", "c", "d", "e"}
    # Before the first transaction: the null relation.
    assert database.rollback("r", "01/01/79").is_empty

    print()
    print("Figure 3: a static rollback relation (sequence of states)")
    for index, (when, state) in enumerate(states, start=1):
        names = ", ".join(sorted(state.column("name")))
        print(f"  after transaction {index} (at {when}): {{{names}}}")
