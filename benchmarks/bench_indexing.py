"""Indexed vs. scanned temporal access: what the interval tree buys.

The core value types answer ``timeslice``/``rollback`` by scanning.  The
interval-tree indexes of :mod:`repro.core.indexing` replace the scan with
an O(log n + k) stab.  This bench sweeps store sizes and reports both
paths (answers asserted equal first), showing where indexing starts to
pay: scan cost grows linearly with rows, stab cost with log(rows) plus
matches.

Run:  pytest benchmarks/bench_indexing.py --benchmark-only -s
"""

import time

from repro.core import BitemporalIndex, TemporalDatabase
from repro.time import Instant, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

SIZES = [10, 30, 90]
REPEATS = 200


def build(people):
    database = TemporalDatabase(clock=SimulatedClock("01/01/79"))
    apply_workload(database, FacultyWorkload(people=people,
                                             events_per_person=5, seed=23))
    return database.temporal("faculty")


def latency(operation, repeats=REPEATS):
    start = time.perf_counter()
    for _ in range(repeats):
        operation()
    return (time.perf_counter() - start) / repeats * 1e6


def test_indexing(benchmark):
    probe = Instant.parse("06/01/81")
    rows = []
    for people in SIZES:
        relation = build(people)
        index = BitemporalIndex(relation)
        # Correctness before speed.
        assert index.rollback(probe) == relation.rollback(probe)
        scan_us = latency(lambda: relation.rollback(probe))
        build_us = latency(lambda: BitemporalIndex(relation), repeats=10)
        stab_us = latency(lambda: index.rollback(probe))
        rows.append((people, len(relation), scan_us, stab_us, build_us))

    relation = build(SIZES[-1])
    index = BitemporalIndex(relation)
    benchmark(index.rollback, probe)

    print()
    print("rollback: row scan vs. interval-tree stab (microseconds)")
    print(f"{'people':>7} {'rows':>6} {'scan':>8} {'stab':>8} "
          f"{'speedup':>8} {'build':>9}")
    for people, count, scan_us, stab_us, build_us in rows:
        print(f"{people:>7} {count:>6} {scan_us:>8.1f} {stab_us:>8.1f} "
              f"{scan_us / stab_us:>7.1f}x {build_us:>9.1f}")
    print()
    print("the index amortizes after build/(scan-stab) queries against an")
    print("unchanged store; DatabaseIndexCache reuses it until the next "
          "commit.")

    # Shape: the speedup grows with store size.
    speedups = [scan / stab for _, _, scan, stab, _ in rows]
    assert speedups[-1] > speedups[0]
