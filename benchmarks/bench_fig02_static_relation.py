"""Figure 2 — a static relation, and §4.1's Quel query.

Rebuilds the static ``faculty`` relation from the paper's update narrative
and benchmarks the paper's first query:

    range of f is faculty
    retrieve (f.rank) where f.name = "Merrie"     ->  full

Run:  pytest benchmarks/bench_fig02_static_relation.py --benchmark-only -s
"""

from repro.core import StaticDatabase

from benchmarks.scenario import build_faculty, tquel_session


def test_figure_2(benchmark):
    database, _ = build_faculty(StaticDatabase)
    session = tquel_session(database)
    query = 'retrieve (f.rank) where f.name = "Merrie"'

    result = benchmark(session.query, query)

    # The paper's printed answer.
    assert result.to_dicts() == [{"rank": "full"}]
    # The relation itself matches Figure 2's instance.
    assert {(row["name"], row["rank"])
            for row in database.snapshot("faculty")} == {
        ("Merrie", "full"), ("Tom", "associate")}

    print()
    print(database.snapshot("faculty").pretty(
        "Figure 2: a static relation ('faculty')"))
    print()
    print(session.render(result, title=f"§4.1 query: {query}"))
