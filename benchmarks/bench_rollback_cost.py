"""Rollback (as-of) query cost vs. history length, both representations.

The flip side of the storage trade-off: the cube answers ``rollback(t)``
by bisecting to a prebuilt state (fast, ~O(log T)), while the interval
table scans its timestamped rows (O(rows)).  This bench measures both as
history grows, confirming the crossover the representations imply:
the cube buys rollback speed with quadratic storage.

Run:  pytest benchmarks/bench_rollback_cost.py --benchmark-only -s
"""

import time

from repro.core import RollbackDatabase
from repro.time import Instant, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

SIZES = [10, 20, 40, 80]
PROBE_REPEATS = 200


def build(representation, people):
    workload = FacultyWorkload(people=people, events_per_person=4, seed=7)
    database = RollbackDatabase(clock=SimulatedClock("01/01/79"),
                                representation=representation)
    apply_workload(database, workload)
    return database


def rollback_latency(database, probes):
    start = time.perf_counter()
    for _ in range(PROBE_REPEATS // len(probes)):
        for probe in probes:
            database.rollback("faculty", probe)
    elapsed = time.perf_counter() - start
    return elapsed / PROBE_REPEATS


def test_rollback_cost(benchmark):
    probes = [Instant.parse("06/01/80"), Instant.parse("06/01/81"),
              Instant.parse("06/01/82"), Instant.parse("06/01/83")]
    rows = []
    for people in SIZES:
        interval_db = build("interval", people)
        states_db = build("states", people)
        # Both must agree before timing means anything.
        for probe in probes:
            assert interval_db.rollback("faculty", probe) == \
                states_db.rollback("faculty", probe)
        interval_us = rollback_latency(interval_db, probes) * 1e6
        states_us = rollback_latency(states_db, probes) * 1e6
        rows.append((people, len(interval_db.store("faculty")),
                     interval_us, states_us))

    # The benchmark fixture times the practical representation at mid size.
    database = build("interval", SIZES[2])
    benchmark(database.rollback, "faculty", probes[1])

    print()
    print("rollback(t) latency vs. history size (microseconds/query)")
    print(f"{'people':>7} {'tt rows':>8} {'interval':>10} {'cube':>10} "
          f"{'interval/cube':>14}")
    for people, tt_rows, interval_us, states_us in rows:
        print(f"{people:>7} {tt_rows:>8} {interval_us:>10.1f} "
              f"{states_us:>10.1f} {interval_us / states_us:>13.1f}x")
    print()
    print("The cube's prebuilt states make rollback cheap; the interval")
    print("table pays a scan — the inverse of the storage trade-off.")

    # Shape check: the interval representation's scan cost grows with
    # history; the cube's bisect+return barely does.
    assert rows[-1][2] > rows[0][2]
