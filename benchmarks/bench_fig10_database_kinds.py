"""Figure 10 — "Types of Databases": the 2x2 classification, live.

Renders the classification table, and — beyond the static data — verifies
it *behaviourally*: for each cell, the corresponding database class
supports exactly the advertised capabilities, accepting or rejecting
rollback and historical queries accordingly.  Benchmarks classification
plus the capability probes.

Run:  pytest benchmarks/bench_fig10_database_kinds.py --benchmark-only -s
"""

import pytest

from repro.core import (DatabaseKind, HistoricalDatabase, RollbackDatabase,
                        StaticDatabase, TemporalDatabase, classify,
                        render_figure_10)
from repro.errors import (HistoricalNotSupportedError,
                          RollbackNotSupportedError)
from repro.relational import Domain, Schema
from repro.time import SimulatedClock

KINDS = [
    (StaticDatabase, DatabaseKind.STATIC),
    (RollbackDatabase, DatabaseKind.STATIC_ROLLBACK),
    (HistoricalDatabase, DatabaseKind.HISTORICAL),
    (TemporalDatabase, DatabaseKind.TEMPORAL),
]


def probe_all():
    """Exercise every cell of Figure 10 against a live database."""
    outcomes = {}
    for db_class, expected_kind in KINDS:
        database = db_class(clock=SimulatedClock("01/01/80"))
        database.define("r", Schema.of(x=Domain.STRING))
        assert database.kind is expected_kind
        assert classify(database.supports_rollback,
                        database.supports_historical_queries) is expected_kind
        can_rollback = True
        try:
            database.rollback("r", "01/01/80")
        except RollbackNotSupportedError:
            can_rollback = False
        can_timeslice = True
        try:
            database.timeslice("r", "01/01/80")
        except HistoricalNotSupportedError:
            can_timeslice = False
        outcomes[expected_kind] = (can_rollback, can_timeslice)
    return outcomes


def test_figure_10(benchmark):
    outcomes = benchmark(probe_all)

    assert outcomes == {
        DatabaseKind.STATIC: (False, False),
        DatabaseKind.STATIC_ROLLBACK: (True, False),
        DatabaseKind.HISTORICAL: (False, True),
        DatabaseKind.TEMPORAL: (True, True),
    }

    print()
    print("Figure 10: Types of Databases")
    print(render_figure_10())
    print()
    print("...verified against live databases:")
    for kind, (can_rollback, can_timeslice) in outcomes.items():
        print(f"  {str(kind):16s} rollback={'yes' if can_rollback else 'no ':3s}"
              f" historical={'yes' if can_timeslice else 'no'}")
