"""Figure 6 — the historical relation, and §4.3's when-query.

Rebuilds Figure 6's ``faculty`` relation (valid-time from/to columns) and
benchmarks the paper's TQuel query:

    retrieve (f1.rank)
    where f1.name = "Merrie" and f2.name = "Tom"
    when f1 overlap start of f2
        ->  full, valid [12/01/82, ∞)

Run:  pytest benchmarks/bench_fig06_historical_relation.py --benchmark-only -s
"""

from repro.core import HistoricalDatabase

from benchmarks.scenario import build_faculty, tquel_session

QUERY = ('retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" '
         'when f1 overlap start of f2')


def test_figure_6(benchmark):
    database, _ = build_faculty(HistoricalDatabase)
    session = tquel_session(database)

    result = benchmark(session.query, QUERY)

    # The relation is exactly Figure 6.
    rows = {(r.data["name"], r.data["rank"], r.valid.start.paper_format(),
             r.valid.end.paper_format())
            for r in database.history("faculty").rows}
    assert rows == {
        ("Merrie", "associate", "09/01/77", "12/01/82"),
        ("Merrie", "full", "12/01/82", "∞"),
        ("Tom", "associate", "12/05/82", "∞"),
        ("Mike", "assistant", "01/01/83", "03/01/84"),
    }
    # The paper's printed answer: full, valid from 12/01/82 to ∞.
    assert len(result) == 1
    row = result.rows[0]
    assert row.data["rank"] == "full"
    assert (row.valid.start.paper_format(),
            row.valid.end.paper_format()) == ("12/01/82", "∞")

    print()
    print(database.history("faculty").pretty(
        "Figure 6: a historical relation"))
    print()
    print(session.render(result, title=f"§4.3 query: {QUERY}"))
