"""Figure 4 — the interval-stamped rollback relation, and the as-of query.

Rebuilds the paper's ``faculty`` rollback relation (tuples stamped with
transaction (start, end)) from its transaction narrative, checks the four
rows printed in Figure 4, and benchmarks §4.2's TQuel query:

    retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"
        ->  associate

Run:  pytest benchmarks/bench_fig04_rollback_intervals.py --benchmark-only -s
"""

from repro.core import RollbackDatabase
from repro.tquel.printer import render_rollback

from benchmarks.scenario import build_faculty, tquel_session


def test_figure_4(benchmark):
    database, _ = build_faculty(RollbackDatabase)
    session = tquel_session(database)
    query = 'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"'

    result = benchmark(session.query, query)

    # The paper's printed answer: associate (the promotion was recorded
    # 12/15/82, after the as-of instant).
    assert result.to_dicts() == [{"rank": "associate"}]

    # Figure 4's rows, all present with the paper's timestamps.
    rows = {(r.data["name"], r.data["rank"], r.tt.start.paper_format(),
             r.tt.end.paper_format())
            for r in database.store("faculty").rows}
    assert {("Merrie", "associate", "08/25/77", "12/15/82"),
            ("Merrie", "full", "12/15/82", "∞"),
            ("Tom", "associate", "12/07/82", "∞"),
            ("Mike", "assistant", "01/10/83", "02/25/84")} <= rows

    print()
    print(render_rollback(database.store("faculty"),
                          "Figure 4: a static rollback relation"))
    print()
    print(session.render(result, title=f"§4.2 query: {query}"))
