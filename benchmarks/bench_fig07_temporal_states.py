"""Figure 7 — a temporal relation as a sequence of historical states.

Reproduces the four-transaction narrative of Figure 7 — "(1) three tuples
were added, (2) one tuple was added, (3) one tuple was added and an
existing one deleted, and (4) a previous tuple was deleted (presumably it
should not have been there in the first place)" — and benchmarks
materializing the full sequence of historical states (the 4-D cube).

Run:  pytest benchmarks/bench_fig07_temporal_states.py --benchmark-only -s
"""

from repro.core import TemporalDatabase
from repro.relational import Domain, Schema
from repro.time import SimulatedClock


def build():
    clock = SimulatedClock("01/01/80")
    database = TemporalDatabase(clock=clock)
    database.define("r", Schema.of(name=Domain.STRING))
    with database.begin() as txn:  # (1) three tuples added
        for name in ("a", "b", "c"):
            database.insert("r", {"name": name}, valid_from="01/01/80",
                            txn=txn)
    clock.advance(1)  # (2) one tuple added
    database.insert("r", {"name": "d"}, valid_from="01/02/80")
    clock.advance(1)  # (3) one added, one deleted
    with database.begin() as txn:
        database.insert("r", {"name": "e"}, valid_from="01/03/80", txn=txn)
        database.delete("r", {"name": "a"}, valid_from="01/03/80", txn=txn)
    clock.advance(1)  # (4) an erroneous tuple deleted outright
    database.delete("r", {"name": "b"})
    return database


def test_figure_7(benchmark):
    database = build()
    relation = database.temporal("r")

    states = benchmark(relation.historical_states)

    assert len(states) == 4
    # Each transaction appended a new historical state; the current
    # (post-correction) state no longer contains 'b' at any valid time...
    final = states[-1][1]
    assert all("b" != row.data["name"] for row in final.rows)
    # ...but the state as of transaction 3 still believed in 'b'.
    assert any(row.data["name"] == "b" for row in states[2][1].rows)
    # Rollback of the temporal relation is a historical relation, on which
    # a historical query (timeslice) runs — the paper's composition.
    assert states[2][1].timeslice("01/02/80").column("name")

    print()
    print("Figure 7: a temporal relation (sequence of historical states)")
    for index, (when, state) in enumerate(states, start=1):
        summary = "; ".join(
            f"{row.data['name']}@{row.valid}" for row in sorted(
                state.rows, key=lambda r: r.data["name"]))
        print(f"  historical state after transaction {index} ({when}):")
        print(f"    {summary or '(empty)'}")
