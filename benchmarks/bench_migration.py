"""Migration cost: what upgrading up the taxonomy takes.

The paper's conclusion urges systems to support all three times; this
bench prices the upgrade path for an existing store: migrating a rollback
database of growing history into a temporal one (a full replay of every
commit) versus the cheap snapshot-only upgrades, with the diagonal
correctness property asserted before timing.

Run:  pytest benchmarks/bench_migration.py --benchmark-only -s
"""

import time

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase, migrate)
from repro.time import Instant, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

SIZES = [10, 20, 40]


def build_rollback(people):
    database = RollbackDatabase(clock=SimulatedClock("01/01/79"))
    apply_workload(database, FacultyWorkload(people=people,
                                             events_per_person=4, seed=37))
    return database


def timed_once(operation):
    start = time.perf_counter()
    result = operation()
    return result, (time.perf_counter() - start) * 1e3


def test_migration(benchmark):
    base = Instant.parse("01/01/80").chronon
    rows = []
    for people in SIZES:
        source = build_rollback(people)
        transactions = len(source.log)

        target, replay_ms = timed_once(
            lambda: migrate(source, TemporalDatabase))
        # Diagonal correctness before the numbers mean anything.
        for offset in range(0, 1200, 211):
            when = Instant.from_chronon(base + offset)
            assert target.rollback("faculty", when).timeslice(when) == \
                source.rollback("faculty", when)

        _, snapshot_ms = timed_once(
            lambda: migrate(source, StaticDatabase, allow_loss=True))
        rows.append((people, transactions, replay_ms, snapshot_ms))

    source = build_rollback(SIZES[0])
    benchmark(migrate, source, TemporalDatabase)

    print()
    print("migration cost (milliseconds)")
    print(f"{'people':>7} {'txns':>5} {'replay->temporal':>17} "
          f"{'snapshot->static':>17}")
    for people, transactions, replay_ms, snapshot_ms in rows:
        print(f"{people:>7} {transactions:>5} {replay_ms:>17.1f} "
              f"{snapshot_ms:>17.1f}")
    print()
    print("replay re-commits every transaction at its original instant so")
    print("old rollbacks keep answering; the snapshot downgrade copies one")
    print("state and discards the axis (allow_loss=True).")

    # Shape: replay cost grows with history; the snapshot copy barely does.
    assert rows[-1][2] > rows[0][2]
