"""Storage: the state cube vs. the interval table (§4.2's claim).

The paper: implementing a static rollback relation as a sequence of
states "is impractical, due to excessive duplication: the tuples that
don't change between states must be duplicated in the new state".  This
bench makes the claim quantitative — it applies the same faculty workload
to both representations and reports stored cells as the history grows.

Expected shape: interval storage grows ~linearly in the number of
*changes*; the cube grows ~quadratically (each of the T transactions
re-stores the full O(T)-sized state), so the ratio grows roughly
linearly with history length.

Run:  pytest benchmarks/bench_storage_duplication.py --benchmark-only -s
"""

from repro.core import RollbackDatabase
from repro.time import SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

SIZES = [10, 20, 40, 80]


def storage_for(representation, people):
    workload = FacultyWorkload(people=people, events_per_person=4, seed=42)
    database = RollbackDatabase(clock=SimulatedClock("01/01/79"),
                                representation=representation)
    transactions = apply_workload(database, workload)
    return database.store("faculty").storage_cells(), transactions


def test_storage_duplication(benchmark):
    rows = []
    for people in SIZES:
        interval_cells, transactions = storage_for("interval", people)
        states_cells, _ = storage_for("states", people)
        rows.append((people, transactions, interval_cells, states_cells,
                     states_cells / interval_cells))

    # The paper's claim, checked: the cube always costs more, and the
    # blow-up worsens as history grows.
    ratios = [ratio for *_, ratio in rows]
    assert all(ratio > 1.0 for ratio in ratios)
    assert ratios[-1] > ratios[0]

    # Benchmark the workload application itself on the practical store.
    benchmark(storage_for, "interval", SIZES[0])

    print()
    print("Storage: interval-stamped table vs. state cube (stored cells)")
    print(f"{'people':>7} {'txns':>5} {'interval':>9} {'cube':>10} "
          f"{'cube/interval':>14}")
    for people, transactions, interval_cells, states_cells, ratio in rows:
        print(f"{people:>7} {transactions:>5} {interval_cells:>9} "
              f"{states_cells:>10} {ratio:>13.1f}x")
    print()
    print('§4.2: the cube is "impractical, due to excessive duplication" —')
    print("the ratio grows with history length, as predicted.")
