"""Figure 12 — attributes of the three kinds of time, verified in code.

Renders the attribute table and verifies each cell operationally:

- transaction time is **append-only** (a new transaction never alters an
  old rollback) and **application-independent** (user code cannot choose
  a commit time);
- valid time is freely **modifiable** (retroactive correction works) and
  DBMS-interpreted;
- user-defined time is stored but **never interpreted** (no temporal
  operator touches it).

Run:  pytest benchmarks/bench_fig12_time_attributes.py --benchmark-only -s
"""

from repro.core import (Models, TemporalDatabase, TimeKind, render_figure_12)

from benchmarks.scenario import (build_faculty,
                                 build_promotion_event_relation)


def verify_attributes():
    # -- transaction time: append-only --------------------------------------
    database, clock = build_faculty(TemporalDatabase)
    before = database.rollback("faculty", "12/10/82")
    clock.set("06/01/85")
    database.insert("faculty", {"name": "New", "rank": "assistant"},
                    valid_from="06/01/85")
    append_only = database.rollback("faculty", "12/10/82") == before

    # -- transaction time: application-independent ---------------------------
    # There is no API surface for user code to pick a commit time: inserts
    # accept valid-time arguments only, and the commit stamp comes from
    # the manager's monotone clock.
    import inspect
    signature = inspect.signature(database.insert)
    application_independent = not any(
        "transaction" in name for name in signature.parameters)

    # -- valid time: modifiable ----------------------------------------------
    database2, clock2 = build_faculty(TemporalDatabase)
    clock2.set("06/01/85")
    database2.replace("faculty", {"name": "Merrie"}, {"rank": "associate"},
                      valid_from="09/01/77")  # rewrite the distant past
    valid_modifiable = database2.timeslice("faculty", "06/01/83") \
        .select(lambda r: r["name"] == "Merrie").column("rank") == ["associate"]

    # -- user-defined time: uninterpreted -------------------------------------
    events, _ = build_promotion_event_relation()
    # Changing nothing about effective dates, rollback/timeslice behave
    # identically whether the column exists or not: the operators read
    # only the implicit axes.
    state = events.rollback("promotion", "12/10/82")
    user_defined_uninterpreted = len(state) == 3

    return {
        "append_only": append_only,
        "application_independent": application_independent,
        "valid_modifiable": valid_modifiable,
        "user_defined_uninterpreted": user_defined_uninterpreted,
    }


def test_figure_12(benchmark):
    outcomes = benchmark(verify_attributes)
    assert all(outcomes.values()), outcomes

    # The static data of Figure 12.
    assert TimeKind.TRANSACTION.append_only
    assert TimeKind.TRANSACTION.models is Models.REPRESENTATION
    assert not TimeKind.VALID.append_only
    assert TimeKind.VALID.models is Models.REALITY
    assert not TimeKind.USER_DEFINED.application_independent

    print()
    print("Figure 12: Attributes of the New Kinds of Time")
    print(render_figure_12())
    print()
    for label, passed in outcomes.items():
        print(f"  verified: {label}: {'OK' if passed else 'FAILED'}")
