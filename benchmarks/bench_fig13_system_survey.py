"""Figure 13 — time support in existing or proposed systems (1985).

Regenerates the survey table and derives, through :func:`classify`, the
paper's concluding observation: fifteen years of work had produced many
static databases, a few rollback implementations and historical
formalizations, and almost nothing temporal.  Benchmarks the survey
classification sweep.

Run:  pytest benchmarks/bench_fig13_system_survey.py --benchmark-only -s
"""

from collections import Counter

from repro.core import DatabaseKind, FIGURE_13, render_figure_13


def classify_survey():
    return Counter(system.database_kind for system in FIGURE_13)


def test_figure_13(benchmark):
    by_kind = benchmark(classify_survey)

    assert len(FIGURE_13) == 17
    # The paper's landscape: mostly static/historical designs, a handful
    # of rollback stores, and TRM + TQuel as the only temporal entries.
    temporal_systems = {s.system for s in FIGURE_13
                        if s.database_kind is DatabaseKind.TEMPORAL}
    assert temporal_systems == {"TRM", "TQuel"}
    assert by_kind[DatabaseKind.TEMPORAL] == 2
    assert by_kind[DatabaseKind.STATIC_ROLLBACK] == 5
    assert by_kind[DatabaseKind.HISTORICAL] == 6
    assert by_kind[DatabaseKind.STATIC] == 4

    print()
    print("Figure 13: Time Support in Existing or Proposed Systems")
    print(render_figure_13())
    print()
    print("Derived database kinds (via classify):")
    for kind in DatabaseKind:
        systems = sorted(s.system for s in FIGURE_13
                         if s.database_kind is kind)
        print(f"  {str(kind):16s} ({by_kind[kind]:2d}): {', '.join(systems)}")
