#!/usr/bin/env python
"""Run the temporal performance suite and write ``BENCH_temporal.json``.

Two kinds of measurement:

1. **Ingest scaling** (measured here directly): drive a fixed current
   state of ``KEYS`` facts through *n* single-operation commits for
   n ∈ {10^2, 10^3, 10^4}.  History grows by one closed row per commit
   while the open partition stays constant, so the incremental commit
   path must keep per-commit latency flat — the acceptance bar is a
   ratio ≤ 2x between the smallest and largest n.  A second series
   interleaves an indexed ``rollback`` probe after every commit to
   exercise live index maintenance (O(Δ log n) patching, not rebuilds).
2. **The pytest benches** (``bench_temporal_workload.py``,
   ``bench_indexing.py``, ``bench_rollback_cost.py``) run as
   subprocesses; their pass/fail and wall time land in the report.

A third measurement proves the :mod:`repro.obs` instrumentation is
cheap: the same ingest loop runs with recording off and on (best of
several rounds each) and the per-commit overhead must stay under 5%.
The collected metrics snapshot is embedded in the report.

An additional measurement sweeps the **query paths** (embedded in
``BENCH_temporal.json`` under ``query_paths``): an as-of timeslice and
a predicate+as-of retrieve run through a TQuel :class:`Session` against
the same replace-loop history, once per plan mode (forced ``naive`` /
``index`` / ``columnar``, plus ``auto`` — the cost-based planner with
the as-of result cache live).  Each mode is warmed once (chunk packing
/ cache fill), then timed best-of-``QUERY_REPEATS``; the canonical row
sets of all four modes must be identical (plan choice never changes
results).  The acceptance bar is a ≥ 10x planner-on speedup over
forced-naive at the largest size (enforced when that size reaches
10^4; the CI smoke sweep records the numbers without gating).

A fourth measurement times **recovery** (``BENCH_recovery.json``): the
same ingest history is journaled through a
:class:`~repro.storage.recovery.DurabilityManager` with a checkpoint
written ``RECOVERY_TAIL`` commits before the end, then the directory is
recovered both ways.  Full replay re-runs every commit, so its cost
grows with n; checkpoint + tail replays a constant-length tail, so as
history grows the speedup must grow with it — the acceptance bar is a
≥ 2x speedup at the largest size (enforced when that size is ≥ 1000;
the CI smoke sweep at n=100 records the numbers without gating).

A fifth measurement sweeps **contention** (``BENCH_concurrency.json``):
the :func:`~repro.workload.stress.run_stress` harness drives the same
counter workload from 1, 2, 4 and 8 concurrent sessions through the
:mod:`repro.concurrency` layer, recording throughput and the conflict
rate at each width.  The gate is correctness, not speed: every point
must commit all of its transactions with zero lost updates, strictly
monotone commit times, and serial-replay equivalence (the single-writer
engine serializes commits, so throughput is not expected to scale —
the sweep documents the cost of safety under contention).

A sixth measurement times **replication** (``BENCH_replication.json``):
the same ingest history streams to a replica over an in-process
transport.  Three series per size: steady-state lag (the replica pumps
every n/20 commits; the lag right before each pump and the apply cost
are recorded), cold catch-up over the record-resend path (a fresh
replica joins after n commits), and cold catch-up over the snapshot
path (the primary is recovered from a checkpoint, so its in-memory
floor is above the replica's position and the stream falls back to a
full-state snapshot).  The gate is correctness, not speed: every series
must end with the replica at the primary's exact sequence number and an
identical canonical state digest.

A seventh measurement sweeps **sharding** (``BENCH_sharding.json``):
the :func:`~repro.workload.sharded.run_sharded` harness drives
per-worker **disjoint** counter keys from 8 sessions against a 1-shard
baseline and a 4-shard store, then a mixed point where a slice of the
transactions are two-key transfers crossing shards through the
two-phase protocol (the measured cross-shard fraction must reach 10%).
Every point must hold the full audit (zero lost updates, strictly
monotone per-shard commit times, per-shard serial-replay equivalence);
the performance gate is a ≥ 3x aggregate-throughput speedup of 4 shards
over the 1-shard baseline on the disjoint workload — the per-shard
pipelines actually break the single-writer wall, they don't just
relabel it.

An eighth measurement sweeps **integrity** (``BENCH_integrity.json``):
the same journaled history, with its Merkle chain, drives the two
divergence-detection paths against each other — the O(1) chain-head
comparison a replica performs on *every* heartbeat versus the O(state)
canonical digest it would otherwise need (kept as the slow-path
cross-check, computed uncached here).  The acceptance bar is a ≥ 10x
chain-over-digest speedup at the largest size (enforced when that size
reaches 10^4; the CI smoke sweep records the numbers without gating).
The same point also times a full `audit_directory` walk and both
scrubber repair paths: a damaged tail segment repaired by record
resend from a full-history source, and a damaged prefix segment
repaired by snapshot catch-up from a source compacted past the damage
— every repair must converge digest-equal and re-audit clean.

A ninth measurement sweeps **serving** (``BENCH_serving.json``): the
asyncio serving layer end to end — concurrent ``ReproClient``
connections driving a ``ReproServer`` over in-process MemoryPipes via
the loadgen harness (:func:`repro.workload.run_serving`).  Clean
points sweep client count × write mix and record client-observed
latency percentiles, throughput and shed counts; a **chaos** point
re-runs the mix under seeded wire faults (drop/delay/corrupt) and a
**failover** point kills the primary mid-run and promotes a replica.
The gate is correctness, not speed: every point's audit must hold —
zero lost acknowledged writes, zero read-your-writes violations, zero
untyped failures — and the hostile points must actually have been
hostile (faults fired; the failover happened).

Run:  python benchmarks/run_bench.py [--sizes 100,1000,10000]
                                     [--seed N]
                                     [--out BENCH_temporal.json]
                                     [--recovery-out BENCH_recovery.json]
                                     [--concurrency-out BENCH_concurrency.json]
                                     [--replication-out BENCH_replication.json]
                                     [--sharding-out BENCH_sharding.json]
                                     [--integrity-out BENCH_integrity.json]
                                     [--serving-out BENCH_serving.json]
                                     [--integrity-only] [--serving-only]
                                     [--skip-suites]
"""

import argparse
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import obs  # noqa: E402
from repro.core import TemporalDatabase  # noqa: E402
from repro.relational import Domain, Schema  # noqa: E402
from repro.time import Instant, SimulatedClock  # noqa: E402
from repro.tquel import Session  # noqa: E402

KEYS = 50
SUITES = ["bench_temporal_workload.py", "bench_indexing.py",
          "bench_rollback_cost.py"]
BASE = Instant.parse("01/01/80")
#: Fixed size + rounds of the instrumentation-overhead measurement.
OVERHEAD_COMMITS = 2000
OVERHEAD_ROUNDS = 3
OVERHEAD_LIMIT = 1.05
#: The checkpoint sits this many commits before the end of history, so
#: tail replay has constant cost while full replay grows with n.
RECOVERY_TAIL = 50
#: Required checkpoint-vs-full-replay speedup at the largest size
#: (gated only when that size is large enough for replay to dominate).
RECOVERY_SPEEDUP = 2.0
RECOVERY_GATE_SIZE = 1000
#: The contention sweep: session counts and transactions per session.
CONCURRENCY_SESSIONS = (1, 2, 4, 8)
CONCURRENCY_OPS = 150
CONCURRENCY_KEYS = 8
#: The replica pumps this many times over an ingest run (lag sampling).
REPLICATION_PUMPS = 20
#: The sharding sweep: shard count, sessions, transactions per session,
#: disjoint keys per session, requested cross-shard transfer slice, and
#: the required disjoint-workload speedup over the 1-shard baseline.
SHARDING_SHARDS = 4
SHARDING_SESSIONS = 8
SHARDING_OPS = 60
SHARDING_KEYS = 16
SHARDING_CROSS = 0.2
SHARDING_MIN_CROSS_FRACTION = 0.10
SHARDING_SPEEDUP = 3.0
#: Rounds per sharding point; the best round is reported (scheduler
#: noise only ever subtracts throughput, so max-of-N estimates the
#: noise-free capability — same rationale as the overhead measurement).
SHARDING_ROUNDS = 3
#: Pump-round ceiling for catch-up loops (a bug, not noise, exhausts it).
REPLICATION_MAX_ROUNDS = 100_000
#: The query-path sweep: required planner-on speedup over forced-naive
#: at the gate size (gated only when the sweep reaches that size), and
#: timing repeats per (plan, query) pair — best-of-N, as everywhere.
QUERY_GATE_SIZE = 10_000
QUERY_SPEEDUP = 10.0
QUERY_REPEATS = 3
#: The integrity sweep: the O(1) chain-head compare is far below one
#: timer tick, so it is timed over a loop; the digest side is
#: best-of-N single runs.  The chain-vs-digest speedup gate applies at
#: the gate size, like the query-path gate above.
INTEGRITY_CHAIN_LOOPS = 1000
INTEGRITY_ROUNDS = 3
INTEGRITY_GATE_SIZE = 10_000
INTEGRITY_SPEEDUP = 10.0
#: The serving sweep: client counts × write mixes for the clean points,
#: requests per client, the wire-fault probabilities of the chaos
#: point, and the shape of the failover point (clients, replicas, the
#: acked-write count that triggers the primary kill).
SERVING_CLIENTS = (2, 8)
SERVING_REQUESTS = 12
SERVING_WRITE_RATIOS = (0.8, 0.2)
SERVING_CHAOS = {"drop": 0.05, "delay": 0.05, "corrupt": 0.03,
                 "delay_s": 0.002}
SERVING_FAILOVER_CLIENTS = 4
SERVING_FAILOVER_REPLICAS = 2
SERVING_FAILOVER_AT = 5


def _git_sha():
    """The current commit SHA, or None outside a git checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.DEVNULL)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.decode().strip()


def _ingest(commits, query_every=0, seed=0):
    """Time *commits* replace-commits against a KEYS-fact current state.

    The key touched at each step is drawn from ``random.Random(seed)``,
    so a trajectory is reproducible from the recorded seed alone.
    """
    rng = random.Random(seed)
    clock = SimulatedClock(BASE)
    database = TemporalDatabase(clock=clock)
    database.define("facts", Schema.of(k=Domain.STRING, v=Domain.INTEGER))
    for i in range(KEYS):
        database.insert("facts", {"k": "k%d" % i, "v": 0},
                        valid_from=BASE)
    targets = [rng.randrange(KEYS) for _ in range(commits)]
    start = time.perf_counter()
    for step in range(commits):
        clock.set(BASE + 10 + step)
        database.replace("facts", {"k": "k%d" % targets[step]},
                         {"v": step + 1})
        if query_every and step % query_every == 0:
            database.rollback("facts", clock.current())
    elapsed = time.perf_counter() - start
    history = len(database.temporal("facts"))
    cache = database.index_cache
    return {
        "commits": commits,
        "history_rows": history,
        "open_rows": KEYS,
        "total_s": round(elapsed, 6),
        "per_commit_us": round(elapsed / commits * 1e6, 3),
        "ops_per_sec": round(commits / elapsed, 1),
        "index_incremental_updates":
            cache.incremental_updates if query_every else 0,
        "index_rebuilds": cache.misses if query_every else 0,
    }


def _measure_overhead(seed):
    """Ingest with recording off vs. on; returns (summary, metrics).

    Best-of-N on both sides so scheduler noise cancels; the instrumented
    side's collected metrics snapshot is returned for the report.
    """
    plain = min(_ingest(OVERHEAD_COMMITS, seed=seed)["total_s"]
                for _ in range(OVERHEAD_ROUNDS))
    instrumented = None
    snapshot = None
    for _ in range(OVERHEAD_ROUNDS):
        with obs.recording() as instrumentation:
            total = _ingest(OVERHEAD_COMMITS, seed=seed)["total_s"]
        if instrumented is None or total < instrumented:
            instrumented = total
            snapshot = instrumentation.metrics.snapshot()
    ratio = instrumented / plain
    summary = {
        "commits": OVERHEAD_COMMITS,
        "rounds": OVERHEAD_ROUNDS,
        "plain_best_s": round(plain, 6),
        "instrumented_best_s": round(instrumented, 6),
        "overhead_ratio": round(ratio, 4),
        "overhead_under_5pct": ratio <= OVERHEAD_LIMIT,
    }
    return summary, snapshot


def _query_history(commits, seed):
    """Build (untimed) the same replace-loop history :func:`_ingest` times.

    Returns ``(database, as_of)`` where *as_of* pins the middle of
    transaction-time history, so an as-of query must reject roughly half
    the closed log — the regime the planner's cost model is built for.
    """
    rng = random.Random(seed)
    clock = SimulatedClock(BASE)
    database = TemporalDatabase(clock=clock)
    database.define("facts", Schema.of(k=Domain.STRING, v=Domain.INTEGER))
    for i in range(KEYS):
        database.insert("facts", {"k": "k%d" % i, "v": 0},
                        valid_from=BASE)
    for step in range(commits):
        clock.set(BASE + 10 + step)
        database.replace("facts", {"k": "k%d" % rng.randrange(KEYS)},
                         {"v": step + 1})
    return database, BASE + 10 + commits // 2


def _canonical_rows(result):
    """A plan-independent fingerprint of a relation result.

    Sorted ``(attributes, valid, tt)`` triples: the differential
    contract says plan choice may reorder rows but never change the
    set, so equality of this form is the bench-side equivalence check.
    """
    rows = []
    for row in result.rows:
        rows.append((tuple(sorted(row.data.items())),
                     str(getattr(row, "valid", None)),
                     str(getattr(row, "tt", None))))
    rows.sort()
    return rows


def _time_query(session, source, repeats):
    """Best-of-*repeats* wall time of one retrieve, in seconds."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        session.query(source)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _query_point(commits, seed):
    """One query-path measurement: four plan modes over one history.

    Each mode gets its own :class:`Session` (so forced modes never see
    another mode's result-cache entries), one untimed warm-up run (the
    columnar mode packs its chunk there; ``auto`` populates the as-of
    result cache there — warm ``auto`` is the planner-on steady state
    the gate measures), then best-of-``QUERY_REPEATS`` timed runs.  The
    canonical row sets of all four modes are cross-checked per query.
    """
    database, as_of = _query_history(commits, seed)
    queries = {
        "timeslice": 'retrieve (f.k, f.v) as of "%s"' % as_of,
        "predicate": ('retrieve (f.v) where f.k = "k7" as of "%s"'
                      % as_of),
    }
    modes = ("naive", "index", "columnar", "auto")
    point = {
        "commits": commits,
        "history_rows": len(database.temporal("facts")),
        "as_of": str(as_of),
        "queries": {},
        "results_agree": True,
    }
    for label, source in queries.items():
        timings = {}
        rows_by_mode = {}
        for mode in modes:
            session = Session(database, plan=mode)
            session.execute("range of f is facts")
            rows_by_mode[mode] = _canonical_rows(session.query(source))
            timings[mode] = _time_query(session, source, QUERY_REPEATS)
        agree = all(rows_by_mode[mode] == rows_by_mode["naive"]
                    for mode in modes)
        if not agree:
            point["results_agree"] = False
        point["queries"][label] = {
            "rows": len(rows_by_mode["naive"]),
            "results_agree": agree,
            "speedup": round(timings["naive"] / max(timings["auto"],
                                                    1e-9), 2),
            **{"%s_us" % mode: round(timings[mode] * 1e6, 1)
               for mode in modes},
        }
    point["speedup"] = min(info["speedup"]
                           for info in point["queries"].values())
    return point


def _run_query_paths(sizes, seed):
    """The query-path sweep + its gate flags (see module docstring)."""
    section = {"points": {}, "gate_size": QUERY_GATE_SIZE,
               "required_speedup": QUERY_SPEEDUP,
               "repeats": QUERY_REPEATS}
    for n in sizes:
        point = _query_point(n, seed)
        section["points"][str(n)] = point
        print("query paths n=%d: timeslice naive %.0f us -> auto %.0f us "
              "(%.1fx); predicate naive %.0f us -> auto %.0f us (%.1fx)"
              % (n,
                 point["queries"]["timeslice"]["naive_us"],
                 point["queries"]["timeslice"]["auto_us"],
                 point["queries"]["timeslice"]["speedup"],
                 point["queries"]["predicate"]["naive_us"],
                 point["queries"]["predicate"]["auto_us"],
                 point["queries"]["predicate"]["speedup"]))
    largest = max(sizes)
    at_largest = section["points"][str(largest)]
    section["gated"] = largest >= QUERY_GATE_SIZE
    section["speedup"] = at_largest["speedup"]
    section["speedup_ok"] = (not section["gated"]
                             or section["speedup"] >= QUERY_SPEEDUP)
    section["results_agree"] = all(point["results_agree"]
                                   for point in section["points"].values())
    return section


def _recovery_point(commits, seed):
    """One recovery measurement: build a durable history, restart twice.

    The ingest trajectory is the same replace-loop as :func:`_ingest`,
    journaled through a :class:`DurabilityManager`, with one checkpoint
    written ``RECOVERY_TAIL`` commits before the end.  Both recovery
    paths are then timed cold (fresh manager, fresh database) and the
    recovered states are cross-checked against each other.
    """
    from repro.storage import DurabilityManager

    rng = random.Random(seed)
    with tempfile.TemporaryDirectory() as scratch:
        directory = os.path.join(scratch, "dur")
        manager = DurabilityManager(directory)
        database, _ = manager.recover(TemporalDatabase)
        clock = database.manager.clock.source
        clock.set(BASE)
        database.define("facts",
                        Schema.of(k=Domain.STRING, v=Domain.INTEGER))
        for i in range(KEYS):
            database.insert("facts", {"k": "k%d" % i, "v": 0},
                            valid_from=BASE)
        checkpoint_after = max(0, commits - RECOVERY_TAIL)
        checkpoint_s = None
        for step in range(commits):
            clock.set(BASE + 10 + step)
            database.replace("facts", {"k": "k%d" % rng.randrange(KEYS)},
                             {"v": step + 1})
            if step + 1 == checkpoint_after:
                start = time.perf_counter()
                manager.checkpoint()
                checkpoint_s = time.perf_counter() - start

        start = time.perf_counter()
        replayed_full, full_report = DurabilityManager(directory).recover(
            TemporalDatabase, use_checkpoint=False)
        full_s = time.perf_counter() - start

        start = time.perf_counter()
        replayed_tail, tail_report = DurabilityManager(directory).recover(
            TemporalDatabase)
        tail_s = time.perf_counter() - start

        if replayed_tail.temporal("facts") != replayed_full.temporal("facts"):
            raise AssertionError(
                "recovery paths disagree at n=%d" % commits)
        return {
            "commits": commits,
            "records_total": full_report.records_total,
            "tail_records": tail_report.records_replayed,
            "checkpoint_write_s": (round(checkpoint_s, 6)
                                   if checkpoint_s is not None else None),
            "full_replay_s": round(full_s, 6),
            "checkpoint_tail_s": round(tail_s, 6),
            "speedup": round(full_s / tail_s, 3),
        }


def _run_recovery(sizes, seed):
    """The recovery sweep: every size, plus the speedup gate verdict."""
    section = {"tail": RECOVERY_TAIL, "points": {}}
    for n in sizes:
        point = _recovery_point(n, seed)
        section["points"][str(n)] = point
        print("recovery n=%d: full replay %.1f ms, checkpoint+tail "
              "%.1f ms (%.1fx, tail of %d records)" % (
                  n, point["full_replay_s"] * 1e3,
                  point["checkpoint_tail_s"] * 1e3,
                  point["speedup"], point["tail_records"]))
    largest = max(sizes)
    point = section["points"][str(largest)]
    section["gated"] = largest >= RECOVERY_GATE_SIZE
    section["required_speedup"] = RECOVERY_SPEEDUP
    section["speedup_ok"] = (not section["gated"]
                             or point["speedup"] >= RECOVERY_SPEEDUP)
    return section


def _concurrency_point(sessions, seed):
    """One contention measurement: *sessions* workers, audited."""
    from repro.workload.stress import run_stress

    report = run_stress(kind=TemporalDatabase, sessions=sessions,
                        transactions=CONCURRENCY_OPS,
                        keys=CONCURRENCY_KEYS, seed=seed)
    latency = report.commit_latency
    return {
        "sessions": sessions,
        "transactions_per_session": CONCURRENCY_OPS,
        "committed": report.committed,
        "wall_s": report.wall_s,
        "throughput_tps": (round(report.committed / report.wall_s, 1)
                           if report.wall_s else None),
        "commit_latency_p50_us": round(latency.get("p50", 0.0) * 1e6, 3),
        "commit_latency_p95_us": round(latency.get("p95", 0.0) * 1e6, 3),
        "commit_latency_p99_us": round(latency.get("p99", 0.0) * 1e6, 3),
        "conflicts": report.conflicts,
        "retries": report.retries,
        "conflict_rate": round(report.conflicts
                               / max(1, report.committed), 4),
        "lost_updates": report.lost_updates,
        "commit_times_monotone": report.commit_times_monotone,
        "serial_equivalent": report.serial_equivalent,
        "invariants_ok": (report.ok
                          and report.committed
                          == sessions * CONCURRENCY_OPS),
    }


def _run_concurrency(seed):
    """Throughput vs. session count, with the correctness gate verdict."""
    section = {"keys": CONCURRENCY_KEYS, "points": {}}
    ok = True
    for sessions in CONCURRENCY_SESSIONS:
        point = _concurrency_point(sessions, seed)
        section["points"][str(sessions)] = point
        ok = ok and point["invariants_ok"]
        print("concurrency s=%d: %.0f txn/s, conflict rate %.1f%%, "
              "commit p50/p95/p99 %.0f/%.0f/%.0f us, %s" % (
                  sessions, point["throughput_tps"] or 0.0,
                  point["conflict_rate"] * 100,
                  point["commit_latency_p50_us"],
                  point["commit_latency_p95_us"],
                  point["commit_latency_p99_us"],
                  "ok" if point["invariants_ok"] else "INVARIANTS FAILED"))
    section["invariants_ok"] = ok
    return section


def _sharding_run(shards, cross_ratio, seed, placement):
    """One audited :func:`run_sharded` run with the bench workload shape.

    The GIL-yield think-time hook forces the read and the commit of
    concurrent transactions to actually interleave; without it a ~200us
    pure-Python transaction usually completes within one scheduler
    quantum and the measured contention is quantum luck, not workload
    structure.
    """
    from repro.core import StaticDatabase
    from repro.workload.sharded import run_sharded

    return run_sharded(kind=StaticDatabase, shards=shards,
                       sessions=SHARDING_SESSIONS,
                       transactions=SHARDING_OPS,
                       keys_per_session=SHARDING_KEYS,
                       cross_ratio=cross_ratio,
                       placement=placement,
                       work=lambda: time.sleep(0),
                       seed=seed)


def _sharding_describe(report, all_ok):
    """The report dict of one sharding point (from its best round)."""
    attempted = SHARDING_SESSIONS * SHARDING_OPS
    cross_ratio = report.cross_ratio
    shards = report.shards
    placement = report.placement
    return {
        "shards": shards,
        "sessions": SHARDING_SESSIONS,
        "transactions_per_session": SHARDING_OPS,
        "cross_ratio_requested": cross_ratio,
        "placement": placement,
        "committed": report.committed,
        "cross_shard_commits": report.cross_shard_commits,
        "cross_shard_fraction": round(
            report.cross_shard_commits / max(1, report.committed), 4),
        "wall_s": report.wall_s,
        "throughput_tps": report.tps,
        "latency_p50_us": round(report.latency_p50_s * 1e6, 3),
        "latency_p95_us": round(report.latency_p95_s * 1e6, 3),
        "latency_p99_us": round(report.latency_p99_s * 1e6, 3),
        "conflicts": report.conflicts,
        "lost_updates": report.lost_updates,
        "sum_delta": report.sum_delta,
        "commit_times_monotone": report.commit_times_monotone,
        "serial_equivalent": report.serial_equivalent,
        "rounds": SHARDING_ROUNDS,
        "invariants_ok": all_ok and report.committed == attempted,
    }


def _run_sharding(seed):
    """Baseline vs. sharded vs. mixed cross-shard, with the 3x gate.

    The disjoint baseline/sharded pair is measured in **paired rounds**
    — each round runs the 1-shard baseline and the 4-shard store
    back-to-back and the speedup gate takes the best *paired* ratio, so
    slow-machine epochs (scheduler load inflates every ``time.sleep``,
    which taxes the conflict-heavy baseline hardest) hit both sides of
    a ratio equally instead of whichever point they happened to land
    on.  Every round of every point must pass the full audit.  The
    disjoint pair uses ``"aligned"`` placement (each worker's keys on
    one shard — the well-partitioned deployment; a 1-shard store is
    identical either way); the mixed point scatters keys so its
    transfers actually cross shards through the 2PC path.
    """
    section = {"keys_per_session": SHARDING_KEYS, "points": {}}
    pairs = []
    base_ok = True
    shard_ok = True
    for round_index in range(SHARDING_ROUNDS):
        base = _sharding_run(1, 0.0, seed + round_index, "aligned")
        shard = _sharding_run(SHARDING_SHARDS, 0.0, seed + round_index,
                              "aligned")
        base_ok = base_ok and base.ok
        shard_ok = shard_ok and shard.ok
        pairs.append((base, shard))
    best = max(pairs, key=lambda pair: (pair[1].tps / pair[0].tps
                                        if pair[0].tps else 0.0))
    section["points"]["baseline_1_shard"] = _sharding_describe(
        best[0], base_ok)
    section["points"]["sharded_disjoint"] = _sharding_describe(
        best[1], shard_ok)

    mixed = None
    mixed_ok = True
    for round_index in range(SHARDING_ROUNDS):
        candidate = _sharding_run(SHARDING_SHARDS, SHARDING_CROSS,
                                  seed + round_index, "scattered")
        mixed_ok = mixed_ok and candidate.ok
        if mixed is None or candidate.tps > mixed.tps:
            mixed = candidate
    section["points"]["sharded_mixed"] = _sharding_describe(
        mixed, mixed_ok)

    for label, point in section["points"].items():
        print("sharding %s: %.0f txn/s, p50/p99 %.0f/%.0f us, "
              "cross-shard %.1f%%, %s" % (
                  label, point["throughput_tps"],
                  point["latency_p50_us"], point["latency_p99_us"],
                  point["cross_shard_fraction"] * 100,
                  "ok" if point["invariants_ok"]
                  else "INVARIANTS FAILED"))
    baseline = section["points"]["baseline_1_shard"]["throughput_tps"]
    disjoint = section["points"]["sharded_disjoint"]["throughput_tps"]
    section["paired_ratios"] = [
        round(shard.tps / base.tps, 3) if base.tps else None
        for base, shard in pairs]
    section["speedup"] = (round(disjoint / baseline, 3) if baseline
                          else None)
    section["required_speedup"] = SHARDING_SPEEDUP
    section["speedup_ok"] = (section["speedup"] is not None
                             and section["speedup"] >= SHARDING_SPEEDUP)
    section["min_cross_fraction"] = SHARDING_MIN_CROSS_FRACTION
    section["cross_fraction_ok"] = (
        section["points"]["sharded_mixed"]["cross_shard_fraction"]
        >= SHARDING_MIN_CROSS_FRACTION)
    section["invariants_ok"] = all(
        point["invariants_ok"] for point in section["points"].values())
    print("sharding speedup (%d shards vs 1, disjoint keys, best "
          "paired round): %.2fx" % (SHARDING_SHARDS,
                                    section["speedup"] or 0.0))
    return section


def _drain(primary, replica):
    """Pump both ends until the replica reaches the primary's seq."""
    for _ in range(REPLICATION_MAX_ROUNDS):
        if replica.applied_seq >= primary.current_seq:
            return
        primary.pump()
        replica.pump()
    raise AssertionError("replica never caught up to seq %d (stuck at %d)"
                         % (primary.current_seq, replica.applied_seq))


def _replication_point(commits, seed):
    """One replication measurement: steady-state lag + cold resend catch-up.

    The primary runs the same replace-loop as :func:`_ingest` while a
    replica pumps every ``commits / REPLICATION_PUMPS`` commits; the lag
    sampled right before each pump shows how far the stream runs ahead
    between pumps, and the pump time is the pure apply cost.  A second,
    cold replica then joins after the run and catches up over the
    record-resend path.
    """
    from repro.replication import (InProcessTransport, Primary, Replica,
                                   state_digest)

    rng = random.Random(seed)
    clock = SimulatedClock(BASE)
    database = TemporalDatabase(clock=clock)
    transport = InProcessTransport()
    primary = Primary("primary", database, transport)
    replica = Replica("replica", TemporalDatabase, transport, "primary")
    primary.add_replica("replica")

    database.define("facts", Schema.of(k=Domain.STRING, v=Domain.INTEGER))
    for i in range(KEYS):
        database.insert("facts", {"k": "k%d" % i, "v": 0}, valid_from=BASE)

    interval = max(1, commits // REPLICATION_PUMPS)
    lags = []
    apply_s = 0.0
    start = time.perf_counter()
    for step in range(commits):
        clock.set(BASE + 10 + step)
        database.replace("facts", {"k": "k%d" % rng.randrange(KEYS)},
                         {"v": step + 1})
        if (step + 1) % interval == 0:
            lags.append(primary.current_seq - replica.applied_seq)
            pump_start = time.perf_counter()
            replica.pump()
            apply_s += time.perf_counter() - pump_start
    ingest_s = time.perf_counter() - start
    _drain(primary, replica)

    primary_digest = state_digest(database)
    steady_ok = (replica.applied_seq == primary.current_seq
                 and state_digest(replica.database) == primary_digest)

    cold = Replica("cold", TemporalDatabase, transport, "primary")
    primary.add_replica("cold")
    start = time.perf_counter()
    cold.request_catchup()
    _drain(primary, cold)
    resend_s = time.perf_counter() - start
    resend_ok = (cold.applied_seq == primary.current_seq
                 and state_digest(cold.database) == primary_digest)

    backlog = primary.current_seq
    return {
        "commits": commits,
        "primary_seq": backlog,
        "ingest_total_s": round(ingest_s, 6),
        "pumps": len(lags),
        "lag_records_max": max(lags) if lags else 0,
        "lag_records_mean": (round(sum(lags) / len(lags), 1)
                             if lags else 0),
        "steady_apply_s": round(apply_s, 6),
        "apply_per_record_us": (round(apply_s / backlog * 1e6, 3)
                                if backlog else None),
        "catchup_resend_s": round(resend_s, 6),
        "catchup_records_per_sec": (round(backlog / resend_s, 1)
                                    if resend_s else None),
        "steady_converged": steady_ok,
        "resend_converged": resend_ok,
    }


def _replication_snapshot_point(commits, seed):
    """Cold catch-up over the snapshot path, timed.

    The primary is recovered from a checkpoint written near the end of
    its history, so its in-memory floor sits above a cold replica's
    position and catch-up must fall back to a full-state snapshot —
    checkpoint-based catch-up, the replication analogue of
    ``recover(use_checkpoint=True)``.
    """
    from repro.replication import (InProcessTransport, Primary, Replica,
                                   state_digest)
    from repro.storage import DurabilityManager

    rng = random.Random(seed)
    with tempfile.TemporaryDirectory() as scratch:
        directory = os.path.join(scratch, "dur")
        manager = DurabilityManager(directory)
        database, _ = manager.recover(TemporalDatabase)
        clock = database.manager.clock.source
        clock.set(BASE)
        database.define("facts",
                        Schema.of(k=Domain.STRING, v=Domain.INTEGER))
        for i in range(KEYS):
            database.insert("facts", {"k": "k%d" % i, "v": 0},
                            valid_from=BASE)
        checkpoint_after = max(0, commits - RECOVERY_TAIL)
        for step in range(commits):
            clock.set(BASE + 10 + step)
            database.replace("facts", {"k": "k%d" % rng.randrange(KEYS)},
                             {"v": step + 1})
            if step + 1 == checkpoint_after:
                manager.checkpoint()

        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        floor = report.records_total - len(recovered.log)
        transport = InProcessTransport()
        primary = Primary("primary", recovered, transport, floor=floor)
        cold = Replica("cold", TemporalDatabase, transport, "primary")
        primary.add_replica("cold")
        start = time.perf_counter()
        cold.request_catchup()
        _drain(primary, cold)
        snapshot_s = time.perf_counter() - start
        ok = (cold.applied_seq == primary.current_seq
              and state_digest(cold.database) == state_digest(recovered))
        return {
            "commits": commits,
            "primary_floor": floor,
            "snapshot_used": cold.log_floor > 0,
            "catchup_snapshot_s": round(snapshot_s, 6),
            "snapshot_converged": ok and cold.log_floor > 0,
        }


def _run_replication(sizes, seed):
    """The replication sweep: every size, with the convergence verdict."""
    section = {"pumps": REPLICATION_PUMPS, "points": {}}
    ok = True
    for n in sizes:
        point = _replication_point(n, seed)
        point.update(_replication_snapshot_point(n, seed))
        section["points"][str(n)] = point
        ok = (ok and point["steady_converged"] and point["resend_converged"]
              and point["snapshot_converged"])
        print("replication n=%d: lag max %d mean %.1f records, apply "
              "%.1f us/record; catch-up resend %.1f ms, snapshot %.1f ms "
              "(floor %d) %s" % (
                  n, point["lag_records_max"], point["lag_records_mean"],
                  point["apply_per_record_us"] or 0.0,
                  point["catchup_resend_s"] * 1e3,
                  point["catchup_snapshot_s"] * 1e3,
                  point["primary_floor"],
                  "ok" if (point["steady_converged"]
                           and point["resend_converged"]
                           and point["snapshot_converged"])
                  else "DIVERGED"))
    section["converged_ok"] = ok
    return section


def _integrity_history(directory, commits, seed):
    """Build the journaled replace-loop history the integrity sweep uses.

    Same trajectory as :func:`_recovery_point`: a checkpoint published
    ``RECOVERY_TAIL`` commits before the end, so the directory holds a
    prefix segment (covered by the checkpoint) and a tail segment —
    the two-segment shape both repair paths need.
    """
    from repro.storage import DurabilityManager

    rng = random.Random(seed)
    manager = DurabilityManager(directory)
    database, _ = manager.recover(TemporalDatabase)
    clock = database.manager.clock.source
    clock.set(BASE)
    database.define("facts", Schema.of(k=Domain.STRING, v=Domain.INTEGER))
    for i in range(KEYS):
        database.insert("facts", {"k": "k%d" % i, "v": 0},
                        valid_from=BASE)
    checkpoint_after = max(1, commits - RECOVERY_TAIL)
    for step in range(commits):
        clock.set(BASE + 10 + step)
        database.replace("facts", {"k": "k%d" % rng.randrange(KEYS)},
                         {"v": step + 1})
        if step + 1 == checkpoint_after:
            manager.checkpoint()
    return manager, database


def _integrity_point(commits, seed):
    """One integrity measurement: divergence-check costs + repair paths.

    - the **chain check** is what a replica does on every heartbeat:
      compare the shipped chain head against its own and its local
      commit count against the expected one — O(1) regardless of n;
    - the **digest** is the full-state canonical SHA-256 it replaced,
      computed uncached (the slow-path cross-check's true cost);
    - the **repair paths**: a damaged tail segment repaired by record
      resend from a full-history source, and a damaged prefix segment
      repaired by snapshot catch-up from a source that compacted past
      the verified prefix.  Both must converge digest-equal and
      re-audit clean — the correctness half of the gate.
    """
    from repro.replication import state_digest
    from repro.storage import (DurabilityManager, Scrubber,
                               audit_directory, flip_byte)
    from repro.storage.scrub import DirectorySource

    with tempfile.TemporaryDirectory() as scratch:
        base = os.path.join(scratch, "base")
        manager, database = _integrity_history(base, commits, seed)

        head = manager.chain_head
        expected = len(database.log)
        start = time.perf_counter()
        for _ in range(INTEGRITY_CHAIN_LOOPS):
            verdict = (manager.chain_head == head
                       and len(database.log) == expected)
        chain_s = (time.perf_counter() - start) / INTEGRITY_CHAIN_LOOPS
        if not verdict:
            raise AssertionError("chain head drifted during timing")

        digest_s = None
        for _ in range(INTEGRITY_ROUNDS):
            start = time.perf_counter()
            state_digest(database, cache=False)
            elapsed = time.perf_counter() - start
            if digest_s is None or elapsed < digest_s:
                digest_s = elapsed

        start = time.perf_counter()
        audit = audit_directory(base)
        audit_s = time.perf_counter() - start
        if not audit.clean:
            raise AssertionError(
                "clean directory failed its audit at n=%d: %s"
                % (commits, [f.describe() for f in audit.findings]))

        source_dir = os.path.join(scratch, "source")
        resend_dir = os.path.join(scratch, "damaged-tail")
        snapshot_dir = os.path.join(scratch, "damaged-prefix")
        for copy in (source_dir, resend_dir, snapshot_dir):
            shutil.copytree(base, copy)

        # Record resend: damage the tail segment; the full-history
        # source's floor (0) sits below the verified prefix, so repair
        # re-fetches just the quarantined tail records.
        tail_path = DurabilityManager(resend_dir).segments()[-1][1]
        flip_byte(tail_path, os.path.getsize(tail_path) // 2)
        source = DirectorySource(source_dir, TemporalDatabase)
        start = time.perf_counter()
        resend = Scrubber(resend_dir).repair(source, TemporalDatabase)
        resend_s = time.perf_counter() - start

        # Snapshot catch-up: prune the source's pre-checkpoint
        # segments (its floor rises to the checkpoint) and damage the
        # copy's *first* segment, so no record path can serve the
        # repair and a whole snapshot is adopted.
        pruned_dir = os.path.join(scratch, "source-pruned")
        shutil.copytree(base, pruned_dir)
        pruned_segments = DurabilityManager(pruned_dir).segments()
        floor_index = pruned_segments[-1][0]
        for start_index, path in pruned_segments:
            if start_index < floor_index:
                os.unlink(path)
        first_path = DurabilityManager(snapshot_dir).segments()[0][1]
        flip_byte(first_path, os.path.getsize(first_path) // 2)
        pruned = DirectorySource(pruned_dir, TemporalDatabase)
        start = time.perf_counter()
        snapshot = Scrubber(snapshot_dir).repair(pruned, TemporalDatabase)
        snapshot_s = time.perf_counter() - start

        converged = (resend.digest_match is True
                     and not resend.used_snapshot
                     and snapshot.digest_match is True
                     and snapshot.used_snapshot
                     and audit_directory(resend_dir).clean
                     and audit_directory(snapshot_dir).clean)
        return {
            "commits": commits,
            "records_total": audit.records_total,
            "legacy_frames": audit.legacy_frames,
            "chain_check_us": round(chain_s * 1e6, 4),
            "digest_us": round(digest_s * 1e6, 1),
            "speedup": round(digest_s / chain_s, 1),
            "audit_s": round(audit_s, 6),
            "repair_resend_s": round(resend_s, 6),
            "repair_resend_records": resend.refetched_records,
            "repair_snapshot_s": round(snapshot_s, 6),
            "repair_snapshot_records": snapshot.refetched_records,
            "repairs_converged": converged,
        }


def _run_integrity(sizes, seed):
    """The integrity sweep: every size, plus the gate verdicts."""
    section = {"points": {}, "gate_size": INTEGRITY_GATE_SIZE,
               "required_speedup": INTEGRITY_SPEEDUP,
               "chain_loops": INTEGRITY_CHAIN_LOOPS,
               "digest_rounds": INTEGRITY_ROUNDS}
    ok = True
    for n in sizes:
        point = _integrity_point(n, seed)
        section["points"][str(n)] = point
        ok = ok and point["repairs_converged"]
        print("integrity n=%d: chain check %.2f us vs digest %.0f us "
              "(%.0fx); audit %.1f ms; repair resend %.1f ms "
              "(%d records), snapshot %.1f ms (%d records) %s" % (
                  n, point["chain_check_us"], point["digest_us"],
                  point["speedup"], point["audit_s"] * 1e3,
                  point["repair_resend_s"] * 1e3,
                  point["repair_resend_records"],
                  point["repair_snapshot_s"] * 1e3,
                  point["repair_snapshot_records"],
                  "ok" if point["repairs_converged"] else "DIVERGED"))
    largest = max(sizes)
    at_largest = section["points"][str(largest)]
    section["gated"] = largest >= INTEGRITY_GATE_SIZE
    section["speedup"] = at_largest["speedup"]
    section["speedup_ok"] = (not section["gated"]
                             or section["speedup"] >= INTEGRITY_SPEEDUP)
    section["repairs_converged"] = ok
    return section


def _serving_point(clients, write_ratio, seed, chaos=None, replicas=0,
                   failover_at=None, ryw_ratio=0.3):
    """One loadgen run, reduced to the numbers the report keeps."""
    from repro.server import ChaosConfig
    from repro.workload import run_serving
    config = ChaosConfig(seed=seed, **chaos) if chaos else None
    report = run_serving(clients=clients, requests=SERVING_REQUESTS,
                         seed=seed, write_ratio=write_ratio,
                         budget_ms=10_000.0, chaos=config,
                         replicas=replicas, failover_at=failover_at,
                         ryw_ratio=ryw_ratio)
    point = {
        "clients": clients,
        "write_ratio": write_ratio,
        "attempted": report.attempted,
        "succeeded": report.succeeded,
        "shed": report.shed,
        "wall_s": report.wall_s,
        "throughput_rps": report.throughput_rps,
        "latency_p50_us": report.latency_p50_us,
        "latency_p95_us": report.latency_p95_us,
        "latency_p99_us": report.latency_p99_us,
        "acked_writes": report.acked_writes,
        "acked_writes_lost": report.acked_writes_lost,
        "ryw_checks": report.ryw_checks,
        "ryw_violations": report.ryw_violations,
        "unexpected_failures": report.unexpected_failures,
        "client_retries": report.client_retries,
        "client_failovers": report.client_failovers,
        "failover_performed": report.failover_performed,
        "audit_ok": report.ok,
    }
    if chaos:
        point["chaos"] = report.chaos
    return point


def _run_serving_bench(seed):
    """The serving sweep + audit gate (see module docstring).

    Clean points sweep ``SERVING_CLIENTS`` × ``SERVING_WRITE_RATIOS``;
    the ``chaos`` point re-runs the busiest mix under seeded wire
    faults; the ``failover`` point kills the primary mid-run.  The
    recorded latencies are capability numbers — the gate is the audit
    (plus proof the hostile points were hostile).
    """
    section = {"points": {}, "requests_per_client": SERVING_REQUESTS,
               "chaos_config": dict(SERVING_CHAOS)}
    ok = True
    for clients in SERVING_CLIENTS:
        for ratio in SERVING_WRITE_RATIOS:
            name = "c%d_w%d" % (clients, int(ratio * 100))
            point = _serving_point(clients, ratio, seed)
            section["points"][name] = point
            ok = ok and point["audit_ok"]
            print("serving %s: %.0f req/s, p50 %.0f us, p95 %.0f us, "
                  "p99 %.0f us, shed %d %s" % (
                      name, point["throughput_rps"],
                      point["latency_p50_us"], point["latency_p95_us"],
                      point["latency_p99_us"], point["shed"],
                      "ok" if point["audit_ok"] else "AUDIT FAILED"))

    chaos_point = _serving_point(max(SERVING_CLIENTS),
                                 max(SERVING_WRITE_RATIOS), seed,
                                 chaos=SERVING_CHAOS)
    section["points"]["chaos"] = chaos_point
    hostile = sum(chaos_point.get("chaos", {}).values()) > 0
    ok = ok and chaos_point["audit_ok"] and hostile
    print("serving chaos: %.0f req/s, p99 %.0f us, faults %s, "
          "retries %d %s" % (
              chaos_point["throughput_rps"],
              chaos_point["latency_p99_us"],
              chaos_point.get("chaos", {}),
              chaos_point["client_retries"],
              "ok" if chaos_point["audit_ok"] and hostile
              else "AUDIT FAILED"))

    failover_point = _serving_point(
        SERVING_FAILOVER_CLIENTS, 0.5, seed,
        replicas=SERVING_FAILOVER_REPLICAS,
        failover_at=SERVING_FAILOVER_AT, ryw_ratio=0.5)
    section["points"]["failover"] = failover_point
    moved = (failover_point["failover_performed"]
             and failover_point["client_failovers"] > 0)
    ok = ok and failover_point["audit_ok"] and moved
    print("serving failover: %.0f req/s, acked %d lost %d, "
          "client failovers %d %s" % (
              failover_point["throughput_rps"],
              failover_point["acked_writes"],
              failover_point["acked_writes_lost"],
              failover_point["client_failovers"],
              "ok" if failover_point["audit_ok"] and moved
              else "AUDIT FAILED"))

    section["chaos_was_hostile"] = hostile
    section["failover_moved_clients"] = moved
    section["invariants_ok"] = ok
    return section


def _run_suites():
    results = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    for suite in SUITES:
        start = time.perf_counter()
        # The benches assert timing shapes (speedup grows with size etc.),
        # so one retry absorbs scheduler noise on a loaded machine.
        for attempt in range(2):
            proc = subprocess.run(
                [sys.executable, "-m", "pytest",
                 os.path.join("benchmarks", suite), "-q",
                 "--benchmark-disable"],
                cwd=REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
            if proc.returncode == 0:
                break
        results[suite] = {
            "passed": proc.returncode == 0,
            "seconds": round(time.perf_counter() - start, 2),
        }
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="100,1000,10000",
                        help="comma-separated commit counts for the sweep")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_temporal.json"))
    parser.add_argument("--recovery-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_recovery.json"))
    parser.add_argument("--concurrency-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_concurrency.json"))
    parser.add_argument("--replication-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_replication.json"))
    parser.add_argument("--sharding-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_sharding.json"))
    parser.add_argument("--integrity-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_integrity.json"))
    parser.add_argument("--serving-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_serving.json"))
    parser.add_argument("--integrity-only", action="store_true",
                        help="run only the integrity sweep (the "
                             "integrity-suite CI step's bench half)")
    parser.add_argument("--serving-only", action="store_true",
                        help="run only the serving sweep (the "
                             "serve-suite CI step's bench half)")
    parser.add_argument("--skip-suites", action="store_true",
                        help="skip the pytest benches (ingest sweep only)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the ingest trajectory (default: 0); "
                             "recorded in the report for reproducibility")
    args = parser.parse_args(argv)
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error("--sizes must be comma-separated integers, "
                     "got %r" % args.sizes)
    if not sizes:
        parser.error("--sizes must name at least one commit count")

    if args.serving_only:
        serving = _run_serving_bench(args.seed)
        serving.update({
            "generated_by": "benchmarks/run_bench.py",
            "python": sys.version.split()[0],
            "git_sha": _git_sha(),
            "seed": args.seed,
        })
        with open(args.serving_out, "w") as handle:
            json.dump(serving, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.serving_out)
        if not serving["invariants_ok"]:
            print("FAIL: the serving sweep violated an audited "
                  "invariant (lost acked write, ryw violation, untyped "
                  "failure) or a hostile point was not hostile")
            return 1
        return 0

    if args.integrity_only:
        integrity = _run_integrity(sizes, args.seed)
        integrity.update({
            "generated_by": "benchmarks/run_bench.py",
            "python": sys.version.split()[0],
            "git_sha": _git_sha(),
            "seed": args.seed,
            "keys": KEYS,
        })
        with open(args.integrity_out, "w") as handle:
            json.dump(integrity, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.integrity_out)
        if not integrity["repairs_converged"]:
            print("FAIL: a scrubber repair failed to converge to a "
                  "digest-equal, clean-auditing directory")
            return 1
        if not integrity["speedup_ok"]:
            print("FAIL: the chain-head divergence check is not ≥ %.1fx "
                  "faster than the full-state digest at n=%d"
                  % (INTEGRITY_SPEEDUP, max(sizes)))
            return 1
        return 0

    report = {
        "generated_by": "benchmarks/run_bench.py",
        "python": sys.version.split()[0],
        "git_sha": _git_sha(),
        "seed": args.seed,
        "keys": KEYS,
        "sizes": sizes,
        "ingest": {},
        "ingest_with_index_queries": {},
    }
    for n in sizes:
        report["ingest"][str(n)] = _ingest(n, seed=args.seed)
        report["ingest_with_index_queries"][str(n)] = _ingest(
            n, query_every=1, seed=args.seed)
        print("ingest n=%d: %.1f us/commit (%.0f ops/s); "
              "with index queries: %.1f us/commit" % (
                  n, report["ingest"][str(n)]["per_commit_us"],
                  report["ingest"][str(n)]["ops_per_sec"],
                  report["ingest_with_index_queries"][str(n)]
                  ["per_commit_us"]))

    smallest, largest = str(min(sizes)), str(max(sizes))
    ratio = (report["ingest"][largest]["per_commit_us"]
             / report["ingest"][smallest]["per_commit_us"])
    report["flatness_ratio"] = round(ratio, 3)
    report["flat_within_2x"] = ratio <= 2.0
    print("per-commit latency ratio (n=%s vs n=%s): %.2fx"
          % (largest, smallest, ratio))

    report["query_paths"] = _run_query_paths(sizes, args.seed)

    overhead, metrics = _measure_overhead(args.seed)
    if not overhead["overhead_under_5pct"]:
        # One re-measure absorbs a noisy first pass on a loaded machine.
        overhead, metrics = _measure_overhead(args.seed)
    report["instrumentation"] = {"overhead": overhead, "metrics": metrics}
    print("instrumentation overhead: %.2f%% per commit "
          "(plain %.0f us, instrumented %.0f us, n=%d, best of %d)" % (
              (overhead["overhead_ratio"] - 1.0) * 100,
              overhead["plain_best_s"] / overhead["commits"] * 1e6,
              overhead["instrumented_best_s"] / overhead["commits"] * 1e6,
              overhead["commits"], overhead["rounds"]))

    recovery = _run_recovery(sizes, args.seed)
    recovery.update({
        "generated_by": "benchmarks/run_bench.py",
        "python": report["python"],
        "git_sha": report["git_sha"],
        "seed": args.seed,
        "keys": KEYS,
    })
    with open(args.recovery_out, "w") as handle:
        json.dump(recovery, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.recovery_out)
    report["recovery"] = recovery

    concurrency = _run_concurrency(args.seed)
    concurrency.update({
        "generated_by": "benchmarks/run_bench.py",
        "python": report["python"],
        "git_sha": report["git_sha"],
        "seed": args.seed,
    })
    with open(args.concurrency_out, "w") as handle:
        json.dump(concurrency, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.concurrency_out)
    report["concurrency"] = concurrency

    replication = _run_replication(sizes, args.seed)
    replication.update({
        "generated_by": "benchmarks/run_bench.py",
        "python": report["python"],
        "git_sha": report["git_sha"],
        "seed": args.seed,
        "keys": KEYS,
    })
    with open(args.replication_out, "w") as handle:
        json.dump(replication, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.replication_out)
    report["replication"] = replication

    sharding = _run_sharding(args.seed)
    sharding.update({
        "generated_by": "benchmarks/run_bench.py",
        "python": report["python"],
        "git_sha": report["git_sha"],
        "seed": args.seed,
    })
    with open(args.sharding_out, "w") as handle:
        json.dump(sharding, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.sharding_out)
    report["sharding"] = sharding

    integrity = _run_integrity(sizes, args.seed)
    integrity.update({
        "generated_by": "benchmarks/run_bench.py",
        "python": report["python"],
        "git_sha": report["git_sha"],
        "seed": args.seed,
        "keys": KEYS,
    })
    with open(args.integrity_out, "w") as handle:
        json.dump(integrity, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.integrity_out)
    report["integrity"] = integrity

    serving = _run_serving_bench(args.seed)
    serving.update({
        "generated_by": "benchmarks/run_bench.py",
        "python": report["python"],
        "git_sha": report["git_sha"],
        "seed": args.seed,
    })
    with open(args.serving_out, "w") as handle:
        json.dump(serving, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.serving_out)
    report["serving"] = serving

    if not args.skip_suites:
        report["suites"] = _run_suites()
        for suite, outcome in report["suites"].items():
            print("%s: %s (%.1fs)" % (
                suite, "ok" if outcome["passed"] else "FAILED",
                outcome["seconds"]))

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)

    failed_suites = [s for s, o in report.get("suites", {}).items()
                     if not o["passed"]]
    if failed_suites:
        return 1
    if len(sizes) > 1 and not report["flat_within_2x"]:
        print("FAIL: per-commit ingest latency is not flat within 2x")
        return 1
    if not report["query_paths"]["results_agree"]:
        print("FAIL: a forced plan mode returned different rows than "
              "the naive reference — plan choice must never change "
              "results")
        return 1
    if not report["query_paths"]["speedup_ok"]:
        print("FAIL: planner-on queries are not ≥ %.1fx faster than "
              "forced-naive at n=%d" % (QUERY_SPEEDUP, max(sizes)))
        return 1
    if not overhead["overhead_under_5pct"]:
        print("FAIL: instrumentation overhead %.2f%% exceeds 5%%"
              % ((overhead["overhead_ratio"] - 1.0) * 100))
        return 1
    if not recovery["speedup_ok"]:
        print("FAIL: checkpoint+tail recovery is not ≥ %.1fx faster than "
              "full replay at n=%d" % (RECOVERY_SPEEDUP, max(sizes)))
        return 1
    if not concurrency["invariants_ok"]:
        print("FAIL: the contention sweep violated a serializability "
              "invariant (lost update, non-monotone commit times, or "
              "serial-replay divergence)")
        return 1
    if not replication["converged_ok"]:
        print("FAIL: a replica failed to converge to the primary's "
              "sequence number and canonical state digest")
        return 1
    if not sharding["invariants_ok"]:
        print("FAIL: the sharding sweep violated an invariant (lost "
              "update, torn cross-shard transfer, non-monotone shard "
              "commit times, or per-shard serial-replay divergence)")
        return 1
    if not sharding["cross_fraction_ok"]:
        print("FAIL: the mixed sharding point committed fewer than "
              "%.0f%% cross-shard transactions"
              % (SHARDING_MIN_CROSS_FRACTION * 100))
        return 1
    if not sharding["speedup_ok"]:
        print("FAIL: %d shards are not ≥ %.1fx faster than the 1-shard "
              "baseline on disjoint keys"
              % (SHARDING_SHARDS, SHARDING_SPEEDUP))
        return 1
    if not integrity["repairs_converged"]:
        print("FAIL: a scrubber repair failed to converge to a "
              "digest-equal, clean-auditing directory")
        return 1
    if not integrity["speedup_ok"]:
        print("FAIL: the chain-head divergence check is not ≥ %.1fx "
              "faster than the full-state digest at n=%d"
              % (INTEGRITY_SPEEDUP, max(sizes)))
        return 1
    if not serving["invariants_ok"]:
        print("FAIL: the serving sweep violated an audited invariant "
              "(lost acked write, ryw violation, untyped failure) or a "
              "hostile point was not hostile")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
