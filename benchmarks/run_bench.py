#!/usr/bin/env python
"""Run the temporal performance suite and write ``BENCH_temporal.json``.

Two kinds of measurement:

1. **Ingest scaling** (measured here directly): drive a fixed current
   state of ``KEYS`` facts through *n* single-operation commits for
   n ∈ {10^2, 10^3, 10^4}.  History grows by one closed row per commit
   while the open partition stays constant, so the incremental commit
   path must keep per-commit latency flat — the acceptance bar is a
   ratio ≤ 2x between the smallest and largest n.  A second series
   interleaves an indexed ``rollback`` probe after every commit to
   exercise live index maintenance (O(Δ log n) patching, not rebuilds).
2. **The pytest benches** (``bench_temporal_workload.py``,
   ``bench_indexing.py``, ``bench_rollback_cost.py``) run as
   subprocesses; their pass/fail and wall time land in the report.

Run:  python benchmarks/run_bench.py [--sizes 100,1000,10000]
                                     [--out BENCH_temporal.json]
                                     [--skip-suites]
"""

import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import TemporalDatabase  # noqa: E402
from repro.relational import Domain, Schema  # noqa: E402
from repro.time import Instant, SimulatedClock  # noqa: E402

KEYS = 50
SUITES = ["bench_temporal_workload.py", "bench_indexing.py",
          "bench_rollback_cost.py"]
BASE = Instant.parse("01/01/80")


def _ingest(commits, query_every=0):
    """Time *commits* replace-commits against a KEYS-fact current state."""
    clock = SimulatedClock(BASE)
    database = TemporalDatabase(clock=clock)
    database.define("facts", Schema.of(k=Domain.STRING, v=Domain.INTEGER))
    for i in range(KEYS):
        database.insert("facts", {"k": "k%d" % i, "v": 0},
                        valid_from=BASE)
    start = time.perf_counter()
    for step in range(commits):
        clock.set(BASE + 10 + step)
        database.replace("facts", {"k": "k%d" % (step % KEYS)},
                         {"v": step + 1})
        if query_every and step % query_every == 0:
            database.rollback("facts", clock.current())
    elapsed = time.perf_counter() - start
    history = len(database.temporal("facts"))
    cache = database.index_cache
    return {
        "commits": commits,
        "history_rows": history,
        "open_rows": KEYS,
        "total_s": round(elapsed, 6),
        "per_commit_us": round(elapsed / commits * 1e6, 3),
        "ops_per_sec": round(commits / elapsed, 1),
        "index_incremental_updates":
            cache.incremental_updates if query_every else 0,
        "index_rebuilds": cache.misses if query_every else 0,
    }


def _run_suites():
    results = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    for suite in SUITES:
        start = time.perf_counter()
        # The benches assert timing shapes (speedup grows with size etc.),
        # so one retry absorbs scheduler noise on a loaded machine.
        for attempt in range(2):
            proc = subprocess.run(
                [sys.executable, "-m", "pytest",
                 os.path.join("benchmarks", suite), "-q",
                 "--benchmark-disable"],
                cwd=REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
            if proc.returncode == 0:
                break
        results[suite] = {
            "passed": proc.returncode == 0,
            "seconds": round(time.perf_counter() - start, 2),
        }
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="100,1000,10000",
                        help="comma-separated commit counts for the sweep")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_temporal.json"))
    parser.add_argument("--skip-suites", action="store_true",
                        help="skip the pytest benches (ingest sweep only)")
    args = parser.parse_args(argv)
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error("--sizes must be comma-separated integers, "
                     "got %r" % args.sizes)
    if not sizes:
        parser.error("--sizes must name at least one commit count")

    report = {
        "generated_by": "benchmarks/run_bench.py",
        "python": sys.version.split()[0],
        "keys": KEYS,
        "sizes": sizes,
        "ingest": {},
        "ingest_with_index_queries": {},
    }
    for n in sizes:
        report["ingest"][str(n)] = _ingest(n)
        report["ingest_with_index_queries"][str(n)] = _ingest(n, query_every=1)
        print("ingest n=%d: %.1f us/commit (%.0f ops/s); "
              "with index queries: %.1f us/commit" % (
                  n, report["ingest"][str(n)]["per_commit_us"],
                  report["ingest"][str(n)]["ops_per_sec"],
                  report["ingest_with_index_queries"][str(n)]
                  ["per_commit_us"]))

    smallest, largest = str(min(sizes)), str(max(sizes))
    ratio = (report["ingest"][largest]["per_commit_us"]
             / report["ingest"][smallest]["per_commit_us"])
    report["flatness_ratio"] = round(ratio, 3)
    report["flat_within_2x"] = ratio <= 2.0
    print("per-commit latency ratio (n=%s vs n=%s): %.2fx"
          % (largest, smallest, ratio))

    if not args.skip_suites:
        report["suites"] = _run_suites()
        for suite, outcome in report["suites"].items():
            print("%s: %s (%.1fs)" % (
                suite, "ok" if outcome["passed"] else "FAILED",
                outcome["seconds"]))

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)

    failed_suites = [s for s, o in report.get("suites", {}).items()
                     if not o["passed"]]
    if failed_suites:
        return 1
    if len(sizes) > 1 and not report["flat_within_2x"]:
        print("FAIL: per-commit ingest latency is not flat within 2x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
