#!/usr/bin/env python
"""Run the temporal performance suite and write ``BENCH_temporal.json``.

Two kinds of measurement:

1. **Ingest scaling** (measured here directly): drive a fixed current
   state of ``KEYS`` facts through *n* single-operation commits for
   n ∈ {10^2, 10^3, 10^4}.  History grows by one closed row per commit
   while the open partition stays constant, so the incremental commit
   path must keep per-commit latency flat — the acceptance bar is a
   ratio ≤ 2x between the smallest and largest n.  A second series
   interleaves an indexed ``rollback`` probe after every commit to
   exercise live index maintenance (O(Δ log n) patching, not rebuilds).
2. **The pytest benches** (``bench_temporal_workload.py``,
   ``bench_indexing.py``, ``bench_rollback_cost.py``) run as
   subprocesses; their pass/fail and wall time land in the report.

A third measurement proves the :mod:`repro.obs` instrumentation is
cheap: the same ingest loop runs with recording off and on (best of
several rounds each) and the per-commit overhead must stay under 5%.
The collected metrics snapshot is embedded in the report.

Run:  python benchmarks/run_bench.py [--sizes 100,1000,10000]
                                     [--seed N]
                                     [--out BENCH_temporal.json]
                                     [--skip-suites]
"""

import argparse
import json
import os
import random
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import obs  # noqa: E402
from repro.core import TemporalDatabase  # noqa: E402
from repro.relational import Domain, Schema  # noqa: E402
from repro.time import Instant, SimulatedClock  # noqa: E402

KEYS = 50
SUITES = ["bench_temporal_workload.py", "bench_indexing.py",
          "bench_rollback_cost.py"]
BASE = Instant.parse("01/01/80")
#: Fixed size + rounds of the instrumentation-overhead measurement.
OVERHEAD_COMMITS = 2000
OVERHEAD_ROUNDS = 3
OVERHEAD_LIMIT = 1.05


def _git_sha():
    """The current commit SHA, or None outside a git checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.DEVNULL)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.decode().strip()


def _ingest(commits, query_every=0, seed=0):
    """Time *commits* replace-commits against a KEYS-fact current state.

    The key touched at each step is drawn from ``random.Random(seed)``,
    so a trajectory is reproducible from the recorded seed alone.
    """
    rng = random.Random(seed)
    clock = SimulatedClock(BASE)
    database = TemporalDatabase(clock=clock)
    database.define("facts", Schema.of(k=Domain.STRING, v=Domain.INTEGER))
    for i in range(KEYS):
        database.insert("facts", {"k": "k%d" % i, "v": 0},
                        valid_from=BASE)
    targets = [rng.randrange(KEYS) for _ in range(commits)]
    start = time.perf_counter()
    for step in range(commits):
        clock.set(BASE + 10 + step)
        database.replace("facts", {"k": "k%d" % targets[step]},
                         {"v": step + 1})
        if query_every and step % query_every == 0:
            database.rollback("facts", clock.current())
    elapsed = time.perf_counter() - start
    history = len(database.temporal("facts"))
    cache = database.index_cache
    return {
        "commits": commits,
        "history_rows": history,
        "open_rows": KEYS,
        "total_s": round(elapsed, 6),
        "per_commit_us": round(elapsed / commits * 1e6, 3),
        "ops_per_sec": round(commits / elapsed, 1),
        "index_incremental_updates":
            cache.incremental_updates if query_every else 0,
        "index_rebuilds": cache.misses if query_every else 0,
    }


def _measure_overhead(seed):
    """Ingest with recording off vs. on; returns (summary, metrics).

    Best-of-N on both sides so scheduler noise cancels; the instrumented
    side's collected metrics snapshot is returned for the report.
    """
    plain = min(_ingest(OVERHEAD_COMMITS, seed=seed)["total_s"]
                for _ in range(OVERHEAD_ROUNDS))
    instrumented = None
    snapshot = None
    for _ in range(OVERHEAD_ROUNDS):
        with obs.recording() as instrumentation:
            total = _ingest(OVERHEAD_COMMITS, seed=seed)["total_s"]
        if instrumented is None or total < instrumented:
            instrumented = total
            snapshot = instrumentation.metrics.snapshot()
    ratio = instrumented / plain
    summary = {
        "commits": OVERHEAD_COMMITS,
        "rounds": OVERHEAD_ROUNDS,
        "plain_best_s": round(plain, 6),
        "instrumented_best_s": round(instrumented, 6),
        "overhead_ratio": round(ratio, 4),
        "overhead_under_5pct": ratio <= OVERHEAD_LIMIT,
    }
    return summary, snapshot


def _run_suites():
    results = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    for suite in SUITES:
        start = time.perf_counter()
        # The benches assert timing shapes (speedup grows with size etc.),
        # so one retry absorbs scheduler noise on a loaded machine.
        for attempt in range(2):
            proc = subprocess.run(
                [sys.executable, "-m", "pytest",
                 os.path.join("benchmarks", suite), "-q",
                 "--benchmark-disable"],
                cwd=REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
            if proc.returncode == 0:
                break
        results[suite] = {
            "passed": proc.returncode == 0,
            "seconds": round(time.perf_counter() - start, 2),
        }
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="100,1000,10000",
                        help="comma-separated commit counts for the sweep")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_temporal.json"))
    parser.add_argument("--skip-suites", action="store_true",
                        help="skip the pytest benches (ingest sweep only)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the ingest trajectory (default: 0); "
                             "recorded in the report for reproducibility")
    args = parser.parse_args(argv)
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error("--sizes must be comma-separated integers, "
                     "got %r" % args.sizes)
    if not sizes:
        parser.error("--sizes must name at least one commit count")

    report = {
        "generated_by": "benchmarks/run_bench.py",
        "python": sys.version.split()[0],
        "git_sha": _git_sha(),
        "seed": args.seed,
        "keys": KEYS,
        "sizes": sizes,
        "ingest": {},
        "ingest_with_index_queries": {},
    }
    for n in sizes:
        report["ingest"][str(n)] = _ingest(n, seed=args.seed)
        report["ingest_with_index_queries"][str(n)] = _ingest(
            n, query_every=1, seed=args.seed)
        print("ingest n=%d: %.1f us/commit (%.0f ops/s); "
              "with index queries: %.1f us/commit" % (
                  n, report["ingest"][str(n)]["per_commit_us"],
                  report["ingest"][str(n)]["ops_per_sec"],
                  report["ingest_with_index_queries"][str(n)]
                  ["per_commit_us"]))

    smallest, largest = str(min(sizes)), str(max(sizes))
    ratio = (report["ingest"][largest]["per_commit_us"]
             / report["ingest"][smallest]["per_commit_us"])
    report["flatness_ratio"] = round(ratio, 3)
    report["flat_within_2x"] = ratio <= 2.0
    print("per-commit latency ratio (n=%s vs n=%s): %.2fx"
          % (largest, smallest, ratio))

    overhead, metrics = _measure_overhead(args.seed)
    if not overhead["overhead_under_5pct"]:
        # One re-measure absorbs a noisy first pass on a loaded machine.
        overhead, metrics = _measure_overhead(args.seed)
    report["instrumentation"] = {"overhead": overhead, "metrics": metrics}
    print("instrumentation overhead: %.2f%% per commit "
          "(plain %.0f us, instrumented %.0f us, n=%d, best of %d)" % (
              (overhead["overhead_ratio"] - 1.0) * 100,
              overhead["plain_best_s"] / overhead["commits"] * 1e6,
              overhead["instrumented_best_s"] / overhead["commits"] * 1e6,
              overhead["commits"], overhead["rounds"]))

    if not args.skip_suites:
        report["suites"] = _run_suites()
        for suite, outcome in report["suites"].items():
            print("%s: %s (%.1fs)" % (
                suite, "ok" if outcome["passed"] else "FAILED",
                outcome["seconds"]))

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)

    failed_suites = [s for s, o in report.get("suites", {}).items()
                     if not o["passed"]]
    if failed_suites:
        return 1
    if len(sizes) > 1 and not report["flat_within_2x"]:
        print("FAIL: per-commit ingest latency is not flat within 2x")
        return 1
    if not overhead["overhead_under_5pct"]:
        print("FAIL: instrumentation overhead %.2f%% exceeds 5%%"
              % ((overhead["overhead_ratio"] - 1.0) * 100))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
