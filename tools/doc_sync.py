#!/usr/bin/env python
"""Regenerate (or verify) the machine-produced blocks in ``docs/``.

Markdown files under ``docs/`` may embed blocks bounded by::

    <!-- doc-sync:begin <name> -->
    ...generated content...
    <!-- doc-sync:end -->

Each ``<name>`` maps to a generator in this file that rebuilds the
content from the live code.  Every generator is deterministic by
construction — simulated clock, ``explain(..., timings=False)``, no
wall-clock anywhere — so the blocks are byte-stable across runs and
machines.

``--check`` (the CI mode) regenerates every block and exits non-zero
with a unified diff when a committed doc has drifted from the code;
``--write`` rewrites the files in place.  A marker naming an unknown
generator, or a ``begin`` without its ``end``, is an error in both
modes: silent marker rot is exactly what this tool exists to prevent.

Run:  PYTHONPATH=src python tools/doc_sync.py --check
      PYTHONPATH=src python tools/doc_sync.py --write
"""

from __future__ import annotations

import argparse
import difflib
import os
import re
import sys
from typing import Callable, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import TemporalDatabase  # noqa: E402
from repro.core import columnar as _columnar  # noqa: E402
from repro.time import SimulatedClock  # noqa: E402
from repro.tquel import Session  # noqa: E402
from repro.tquel.planner import COSTS  # noqa: E402

# The planner's columnar cost (and so the reason strings in the
# transcripts below) depends on whether NumPy imported.  Pin the
# pure-Python fallback kernels so the generated blocks are identical on
# every machine — including the CI image, which has no numpy.
_columnar._np = None

DOCS_DIR = os.path.join(REPO_ROOT, "docs")

_BLOCK = re.compile(
    r"(<!-- doc-sync:begin (?P<name>[\w-]+) -->\n)"
    r"(?P<body>.*?)"
    r"(<!-- doc-sync:end -->)",
    re.DOTALL)
_BEGIN = re.compile(r"<!-- doc-sync:begin ([\w-]+) -->")


# -- fixtures ---------------------------------------------------------------------

#: The §4 faculty history (the quickstart / ``repro cache`` workload).
FACULTY_HISTORY = [
    ("08/25/77", 'append to faculty (name = "Merrie", rank = "associate") '
                 'valid from "09/01/77"'),
    ("12/01/82", 'append to faculty (name = "Tom", rank = "full") '
                 'valid from "12/05/82"'),
    ("12/07/82", 'replace f (rank = "associate") where f.name = "Tom" '
                 'valid from "12/05/82"'),
    ("12/15/82", 'replace f (rank = "full") where f.name = "Merrie" '
                 'valid from "12/01/82"'),
    ("01/10/83", 'append to faculty (name = "Mike", rank = "assistant") '
                 'valid from "01/01/83"'),
    ("02/25/84", 'delete f where f.name = "Mike" valid from "03/01/84"'),
]


def _faculty_session(plan: str = "auto") -> Session:
    """The paper's faculty database on a pinned simulated clock."""
    clock = SimulatedClock("01/01/77")
    session = Session(TemporalDatabase(clock=clock), plan=plan)
    session.execute("create faculty (name = string, rank = string) "
                    "key (name)")
    session.execute("range of f is faculty")
    for instant, statement in FACULTY_HISTORY:
        clock.set(instant)
        session.execute(statement)
    clock.set("03/01/84")
    return session


def _fenced(text: str) -> str:
    return "```\n" + text.rstrip("\n") + "\n```\n"


# -- generators -------------------------------------------------------------------

def _gen_explain_asof() -> str:
    """The worked as-of explain transcript QUERY_PLANNING.md annotates."""
    session = _faculty_session()
    query = ('retrieve (f.rank) where f.name = "Merrie" '
             'as of "12/10/82"')
    return (f"    .explain {query}\n\n"
            + _fenced(session.explain(query, timings=False)))


def _gen_explain_forced() -> str:
    """The same query under each forced plan mode (one line each),
    plus a forced `index` on a kind that has no index path — the
    degradation notice is part of the contract."""
    query = ('retrieve (f.rank) where f.name = "Merrie" '
             'as of "12/10/82"')
    lines = []
    for mode in ("naive", "index", "columnar"):
        session = _faculty_session(plan=mode)
        plan = session.explain_plan(query, timings=False)
        info = plan["variables"]["f"]
        lines.append(f"plan={mode:<8} (temporal)   -> {info['plan']:<8} "
                     f"({info['plan_reason']})")
    from repro.core import HistoricalDatabase
    clock = SimulatedClock("01/01/77")
    session = Session(HistoricalDatabase(clock=clock), plan="index")
    session.execute("create faculty (name = string, rank = string) "
                    "key (name)")
    session.execute("range of f is faculty")
    clock.set("08/25/77")
    session.execute('append to faculty (name = "Merrie", '
                    'rank = "associate") valid from "09/01/77"')
    plan = session.explain_plan(
        'retrieve (f.rank) where f.name = "Merrie"', timings=False)
    info = plan["variables"]["f"]
    lines.append(f"plan=index    (historical) -> {info['plan']:<8} "
                 f"({info['plan_reason']})")
    return _fenced("\n".join(lines))


def _gen_cache_stats() -> str:
    """The ``repro cache`` transcript: the demo workload's cache stats."""
    # Imported from the CLI so this transcript can never diverge from
    # what the `repro cache` verb actually prints.
    from repro.cli import _demo_workload, _format_caches
    clock = SimulatedClock("01/01/77")
    session = Session(TemporalDatabase(clock=clock))
    _demo_workload(session, clock)
    auto = _fenced(_format_caches(session.database))
    clock = SimulatedClock("01/01/77")
    session = Session(TemporalDatabase(clock=clock), plan="columnar")
    _demo_workload(session, clock)
    forced = _fenced(_format_caches(session.database))
    return ("    $ repro cache --kind temporal\n\n" + auto
            + "\nForcing the columnar path (`repro cache --plan columnar`)"
            " packs the\nchunk instead — and the result cache stays"
            " cold, because cached\nstreams serve `auto` sessions"
            " only:\n\n" + forced)


def _gen_costs() -> str:
    """The COSTS table, straight from ``repro.tquel.planner.COSTS``."""
    rows = ["| constant | value | charges for |",
            "|---|---|---|"]
    notes = {
        "C_ROW": "visiting one stored row as a Python object",
        "C_PRED": "one pushed conjunct evaluated through the AST",
        "C_WHEN": "one `when` predicate evaluated through `Period` objects",
        "C_PROBE": "one interval-tree descent step (multiplied by log2 N)",
        "C_MAT": "materializing one candidate from a chunk row",
        "C_CELL_NUMPY": "one cell of an ndarray mask kernel",
        "C_CELL_PY": "one cell of the fallback float-loop kernel",
        "C_PACK": "packing one row into columns (first chunk build)",
        "C_SETUP": "fixed kernel setup (keeps tiny scans naive)",
    }
    for name, value in COSTS.items():
        rows.append(f"| `{name}` | {value} | {notes[name]} |")
    return "\n".join(rows) + "\n"


def _gen_integrity_audit() -> str:
    """The ``repro audit`` transcripts INTEGRITY.md annotates: a clean
    pass over the faculty store, then the same store with record 4
    rewritten in place under a fresh CRC — the tamper only the chain
    can see.  Deterministic: simulated clock, canonical JSON hashing,
    and the temp directory name substituted out."""
    import tempfile

    from repro.cli import _format_audit
    from repro.storage import (DurabilityManager, audit_directory,
                               tamper_record)

    with tempfile.TemporaryDirectory() as scratch:
        directory = os.path.join(scratch, "store")
        manager = DurabilityManager(directory)
        database, _ = manager.recover(TemporalDatabase)
        clock = database.manager.clock.source
        clock.set("01/01/77")
        session = Session(database)
        session.execute("create faculty (name = string, rank = string) "
                        "key (name)")
        session.execute("range of f is faculty")
        for instant, statement in FACULTY_HISTORY:
            clock.set(instant)
            session.execute(statement)
        clean = _format_audit(audit_directory(directory))
        tamper_record(manager.segments()[0][1], 4)
        damaged = _format_audit(audit_directory(directory))
        clean = clean.replace(directory, "store")
        damaged = damaged.replace(directory, "store")
    return ("    $ repro audit --dir store\n\n" + _fenced(clean)
            + "\nNow rewrite record 4 in place **with a recomputed CRC**"
              " (the\n`tamper_record` injector) — every frame still"
              " verifies, and the same\naudit pins the rewrite anyway,"
              " because the chain fields commit to the\noriginal"
              " payload:\n\n"
              "    $ repro audit --dir store    # exit status 2\n\n"
            + _fenced(damaged))


GENERATORS: Dict[str, Callable[[], str]] = {
    "planning-explain-asof": _gen_explain_asof,
    "planning-explain-forced": _gen_explain_forced,
    "planning-cache-stats": _gen_cache_stats,
    "planning-costs": _gen_costs,
    "integrity-audit": _gen_integrity_audit,
}


# -- sync engine ------------------------------------------------------------------

def sync_text(text: str, path: str) -> str:
    """Return *text* with every doc-sync block regenerated."""
    spans = []

    def _replace(match: "re.Match[str]") -> str:
        name = match.group("name")
        if name not in GENERATORS:
            raise SystemExit(f"{path}: unknown doc-sync generator {name!r} "
                             f"(known: {', '.join(sorted(GENERATORS))})")
        spans.append(name)
        return match.group(1) + GENERATORS[name]() + match.group(4)

    synced = _BLOCK.sub(_replace, text)
    unmatched = [name for name in _BEGIN.findall(text)
                 if name not in spans]
    if unmatched:
        raise SystemExit(f"{path}: doc-sync begin marker(s) without an "
                         f"end marker: {', '.join(unmatched)}")
    return synced


def run(write: bool) -> int:
    stale: List[str] = []
    for entry in sorted(os.listdir(DOCS_DIR)):
        if not entry.endswith(".md"):
            continue
        path = os.path.join(DOCS_DIR, entry)
        with open(path) as handle:
            text = handle.read()
        synced = sync_text(text, os.path.relpath(path, REPO_ROOT))
        if synced == text:
            continue
        rel = os.path.relpath(path, REPO_ROOT)
        if write:
            with open(path, "w") as handle:
                handle.write(synced)
            print(f"rewrote {rel}")
        else:
            stale.append(rel)
            sys.stdout.writelines(difflib.unified_diff(
                text.splitlines(keepends=True),
                synced.splitlines(keepends=True),
                fromfile=f"{rel} (committed)",
                tofile=f"{rel} (regenerated)"))
    if stale:
        print(f"STALE: {', '.join(stale)} — run "
              f"`PYTHONPATH=src python tools/doc_sync.py --write`")
        return 1
    if not write:
        print("doc-sync: all generated blocks are fresh")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--check", action="store_true",
                       help="fail (with a diff) if any block is stale")
    group.add_argument("--write", action="store_true",
                       help="rewrite stale blocks in place")
    args = parser.parse_args(argv)
    return run(write=args.write)


if __name__ == "__main__":
    sys.exit(main())
