"""Recovery tests: checkpoint + tail replay ≡ full replay ≡ never crashed.

The core acceptance property of the durability subsystem: for every
database kind, a database recovered from the latest checkpoint plus the
journal tail is observationally identical to one recovered by replaying
all of history, and to the original that never went down — snapshots,
rollbacks, timeslices, temporal rows and the paper's TQuel answers all
agree.
"""

import os

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import JournalError
from repro.storage import DurabilityManager, detect_kind
from repro.time import SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

from tests.storage.probes import (EXPECTED_AS_OF, EXPECTED_BITEMPORAL,
                                  EXPECTED_STATIC, EXPECTED_WHEN,
                                  drive_faculty, observations, paper_answers)

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]


@pytest.fixture
def directory(tmp_path):
    return str(tmp_path / "dur")


class TestEquivalence:
    """Randomized: checkpoint+tail and full replay answer identically."""

    @pytest.mark.parametrize("db_class", ALL_KINDS)
    @pytest.mark.parametrize("seed", [7, 1985])
    def test_checkpoint_tail_equals_full_replay(self, db_class, seed,
                                                directory):
        workload = FacultyWorkload(people=6, events_per_person=3, seed=seed)
        steps = workload.steps()
        cuts = [len(steps) // 3, 2 * len(steps) // 3]

        # The reference database never crashes and never persists.
        reference = db_class(clock=SimulatedClock(1))
        apply_workload(reference, workload, steps=steps)

        # The durable database checkpoints twice mid-history.
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(db_class)
        apply_workload(durable, workload, steps=steps[:cuts[0]])
        manager.checkpoint()
        apply_workload(durable, workload, steps=steps[cuts[0]:cuts[1]])
        manager.checkpoint()
        apply_workload(durable, workload, steps=steps[cuts[1]:])

        via_checkpoint, fast = DurabilityManager(directory).recover(db_class)
        via_replay, slow = DurabilityManager(directory).recover(
            db_class, use_checkpoint=False)

        expected = observations(reference, relation=workload.relation)
        assert observations(durable, relation=workload.relation) == expected
        assert observations(via_checkpoint,
                            relation=workload.relation) == expected
        assert observations(via_replay,
                            relation=workload.relation) == expected

        # The checkpoint did its job: the tail is strictly shorter.
        assert not fast.full_replay and slow.full_replay
        assert fast.records_replayed < slow.records_replayed
        assert fast.records_total == slow.records_total

    @pytest.mark.parametrize("db_class", ALL_KINDS)
    def test_recovered_database_continues_identically(self, db_class,
                                                      directory):
        # Crash-free stop after 4 faculty steps, recover, run the rest:
        # the result must equal a database that never went down at all.
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(db_class)
        drive_faculty(durable, stop=4)
        manager.checkpoint()

        recovered_manager = DurabilityManager(directory)
        recovered, _ = recovered_manager.recover(db_class)
        drive_faculty(recovered, start=4)

        reference = db_class(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(recovered) == observations(reference)
        assert [r.commit_time for r in recovered_manager.database.log] == \
            [r.commit_time for r in reference.log][4:]


class TestPaperQueriesSurviveRecovery:
    @pytest.mark.parametrize("db_class", ALL_KINDS)
    def test_figures_2_to_9_answers(self, db_class, directory):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(db_class)
        drive_faculty(durable, stop=5)
        manager.checkpoint()
        drive_faculty(durable, start=5)

        recovered, report = DurabilityManager(directory).recover(db_class)
        assert report.checkpoint_index == 5
        answers = paper_answers(recovered)
        assert answers == paper_answers(durable)
        if not recovered.supports_historical_queries:
            # With valid time, a plain retrieve yields the whole history;
            # the exact Figure-2 answer applies to snapshot kinds only.
            assert answers["static"] == EXPECTED_STATIC
        if recovered.supports_rollback:
            assert answers["as_of"] == EXPECTED_AS_OF
        if recovered.supports_historical_queries:
            assert answers["when"] == EXPECTED_WHEN
        if recovered.supports_rollback and \
                recovered.supports_historical_queries:
            for as_of, expected in EXPECTED_BITEMPORAL.items():
                assert answers[f"bitemporal@{as_of}"] == expected


class TestManagerMechanics:
    def test_recover_empty_directory_is_fresh_database(self, directory):
        database, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.full_replay and report.records_total == 0
        assert len(database.log) == 0

    def test_attach_backfills_existing_history(self, directory):
        from tests.conftest import build_faculty
        database, _ = build_faculty(TemporalDatabase)
        manager = DurabilityManager(directory)
        manager.attach(database)
        assert manager.record_count == len(database.log)
        rebuilt, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.records_replayed == len(database.log)
        assert observations(rebuilt) == observations(database)

    def test_attach_over_existing_history_refused(self, directory):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=2)
        with pytest.raises(JournalError, match="recover"):
            DurabilityManager(directory).attach(
                TemporalDatabase(clock=SimulatedClock(1)))

    def test_checkpoint_rotates_segment_once(self, directory):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=3)
        manager.checkpoint()
        # Rotation creates the new segment eagerly (zero-length), so the
        # directory names its live segment before the first append.
        assert [start for start, _ in manager.segments()] == [0, 3]
        drive_faculty(durable, start=3, stop=5)
        assert [start for start, _ in manager.segments()] == [0, 3]
        manager.checkpoint()
        assert [start for start, _ in manager.segments()] == [0, 3, 5]
        # A checkpoint with no commits since the last one does not rotate.
        manager.checkpoint()
        assert [start for start, _ in manager.segments()] == [0, 3, 5]
        assert manager.checkpoints.indices() == [3, 5]

    def test_old_segments_can_be_pruned_after_checkpoint(self, directory):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=4)
        manager.checkpoint()
        drive_faculty(durable, start=4)
        # The operator compaction step DURABILITY.md documents.
        for start, path in manager.segments():
            if start < 4:
                os.remove(path)
        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.checkpoint_index == 4
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(recovered) == observations(reference)

    def test_detect_kind_reads_newest_checkpoint(self, directory):
        assert detect_kind(directory) is None
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(RollbackDatabase)
        drive_faculty(durable, stop=2)
        manager.checkpoint()
        assert detect_kind(directory) == "static rollback"


class TestDamageHandling:
    def _durable_faculty(self, directory, checkpoint_at=4):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=checkpoint_at)
        manager.checkpoint()
        drive_faculty(durable, start=checkpoint_at)
        return manager

    def test_torn_tail_is_truncated_and_life_goes_on(self, directory):
        manager = self._durable_faculty(directory)
        _, live_path = manager.segments()[-1]
        with open(live_path, "ab") as handle:
            handle.write(b"r1 9999 deadbeef {\"torn")  # crashed append
        recovered_manager = DurabilityManager(directory)
        recovered, report = recovered_manager.recover(TemporalDatabase)
        assert report.torn_bytes_truncated > 0
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(recovered) == observations(reference)
        # The repaired segment accepts new commits and recovers cleanly.
        recovered.manager.clock.source.set("06/01/85")
        recovered.insert("faculty", {"name": "New", "rank": "full"},
                         valid_from="06/01/85")
        again, report2 = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report2.torn_bytes_truncated == 0
        assert observations(again) == observations(recovered)

    def test_mid_journal_corruption_is_fatal(self, directory):
        manager = self._durable_faculty(directory, checkpoint_at=2)
        start, live_path = manager.segments()[-1]
        with open(live_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        assert len(lines) >= 2
        lines[0] = b"r1 10 00000000 {\"bad\": 1}\n"  # wrong checksum
        with open(live_path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(JournalError, match="not a torn tail"):
            DurabilityManager(directory).recover(TemporalDatabase)

    def test_damaged_checkpoint_falls_back_to_older(self, directory):
        manager = self._durable_faculty(directory, checkpoint_at=3)
        manager.checkpoint()  # a second checkpoint at the full history
        newest = manager.checkpoints.path_for(7)
        data = open(newest, "rb").read()
        with open(newest, "wb") as handle:
            handle.write(data[:len(data) // 3])
        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.checkpoint_index == 3
        assert report.checkpoints_skipped == 1
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(recovered) == observations(reference)

    def test_every_checkpoint_damaged_means_full_replay(self, directory):
        manager = self._durable_faculty(directory, checkpoint_at=3)
        for index in manager.checkpoints.indices():
            path = manager.checkpoints.path_for(index)
            with open(path, "wb") as handle:
                handle.write(b"c1 3 00000000 junk\n")
        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.full_replay
        assert report.records_replayed == 7
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(recovered) == observations(reference)


class TestEmptyTrailingSegment:
    """Regression: a crash between segment create and first append.

    Checkpoint rotation creates the new segment eagerly, so a crash in
    that window leaves a zero-length trailing segment file.  Recovery
    must classify it as a clean (empty) tail — not damage — place the
    next append correctly, and keep every durable record.
    """

    def test_rotation_crash_leaves_recoverable_empty_segment(self,
                                                             directory):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=4)
        manager.checkpoint()  # rotates; creates journal-00000004.seg empty
        start, live_path = manager.segments()[-1]
        assert start == 4 and os.path.getsize(live_path) == 0
        # "Crash" here: abandon the manager, recover the directory fresh.
        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.records_total == 4
        assert report.records_replayed == 0
        assert report.torn_bytes_truncated == 0
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference, stop=4)
        assert observations(recovered) == observations(reference)

    def test_appends_after_recovery_land_in_the_empty_segment(self,
                                                              directory):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=4)
        manager.checkpoint()
        fresh = DurabilityManager(directory)
        recovered, _ = fresh.recover(TemporalDatabase)
        drive_faculty(recovered, start=4)
        start, live_path = fresh.segments()[-1]
        assert start == 4 and os.path.getsize(live_path) > 0
        assert fresh.record_count == 7
        again, report = DurabilityManager(directory).recover(TemporalDatabase)
        assert report.records_total == 7
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(again) == observations(reference)

    def test_zero_length_lone_segment_is_a_fresh_database(self, directory):
        os.makedirs(directory)
        open(os.path.join(directory, "journal-00000000.seg"), "wb").close()
        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.records_total == 0
        assert report.segments_read == 1
        assert recovered.relation_names() == []

    def test_full_replay_tolerates_the_empty_tail_too(self, directory):
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=4)
        manager.checkpoint()
        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase, use_checkpoint=False)
        assert report.full_replay
        assert report.records_total == 4
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference, stop=4)
        assert observations(recovered) == observations(reference)
