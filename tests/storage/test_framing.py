"""Unit tests for record framing: torn vs corrupt classification."""

import pytest

from repro.storage import (CHECKPOINT_TAG, FrameDamage, FrameError, frame,
                           frame_record, parse_frame)


class TestRoundTrip:
    def test_frame_parse_roundtrip(self):
        entry = {"sequence": 3, "nested": {"a": [1, 2]}, "s": "héllo"}
        assert parse_frame(frame_record(entry)) == entry

    def test_tags_are_not_interchangeable(self):
        line = frame('{"x": 1}', tag=CHECKPOINT_TAG)
        with pytest.raises(FrameError) as excinfo:
            parse_frame(line)  # journal tag expected by default
        assert excinfo.value.damage is FrameDamage.CORRUPT

    def test_legacy_bare_json_accepted(self):
        assert parse_frame('{"x": 1}') == {"x": 1}


class TestClassification:
    """TORN = possible crash residue; CORRUPT = never explainable by one."""

    def damage_of(self, line):
        with pytest.raises(FrameError) as excinfo:
            parse_frame(line)
        return excinfo.value.damage

    def test_short_payload_is_torn(self):
        # An append died partway: fewer payload bytes than promised.
        line = frame_record({"x": 1})
        assert self.damage_of(line[:-3]) is FrameDamage.TORN

    def test_truncated_header_is_torn(self):
        line = frame_record({"x": 1})
        assert self.damage_of(line[:4]) is FrameDamage.TORN

    def test_bad_checksum_is_corrupt(self):
        line = frame_record({"x": 1})
        flipped = line.replace('"x"', '"y"')  # same length, wrong CRC
        assert self.damage_of(flipped) is FrameDamage.CORRUPT

    def test_overlong_payload_is_corrupt(self):
        # More bytes than the length prefix: no crash writes *extra* data.
        line = frame_record({"x": 1}) + "tail"
        assert self.damage_of(line) is FrameDamage.CORRUPT

    def test_unparseable_payload_is_corrupt(self):
        import zlib
        payload = "{not json"
        data = payload.encode("utf-8")
        line = f"r1 {len(data)} {zlib.crc32(data):08x} {payload}"
        assert self.damage_of(line) is FrameDamage.CORRUPT
