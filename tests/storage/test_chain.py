"""Unit tests for the commit hash chain (repro.storage.chain)."""

import pytest

from repro.errors import ChainError
from repro.storage import (GENESIS, ChainVerifier, chain_entry, content_hash,
                           entry_chain, head_of, link_hash)


def make_entries(n=5):
    """A toy commit-entry sequence, chained from GENESIS."""
    out = []
    prev = GENESIS
    for i in range(n):
        entry = chain_entry({"sequence": i, "commit_time": f"t{i}",
                             "operations": [{"action": "insert", "x": i}]},
                            prev)
        prev = entry["chain"]["commit"]
        out.append(entry)
    return out


class TestHashing:
    def test_content_hash_ignores_the_chain_fields(self):
        bare = {"sequence": 0, "operations": []}
        chained = chain_entry(dict(bare), GENESIS)
        assert content_hash(bare) == content_hash(chained)

    def test_content_hash_is_canonical_over_key_order(self):
        a = {"sequence": 0, "commit_time": "t0"}
        b = {"commit_time": "t0", "sequence": 0}
        assert content_hash(a) == content_hash(b)

    def test_content_hash_changes_with_any_payload_edit(self):
        entry = {"sequence": 0, "operations": [{"x": 1}]}
        edited = {"sequence": 0, "operations": [{"x": 2}]}
        assert content_hash(entry) != content_hash(edited)

    def test_chain_entry_fields_hash_together(self):
        entry = chain_entry({"sequence": 3}, GENESIS)
        chain = entry_chain(entry)
        assert chain is not None
        assert chain["prev"] == GENESIS
        assert chain["content"] == content_hash(entry)
        assert chain["commit"] == link_hash(chain["prev"], chain["content"])

    def test_chain_entry_does_not_mutate_the_input(self):
        entry = {"sequence": 0}
        chain_entry(entry, GENESIS)
        assert "chain" not in entry

    def test_entry_chain_rejects_malformed_fields(self):
        assert entry_chain({"sequence": 0}) is None
        assert entry_chain({"chain": "not-a-dict"}) is None
        assert entry_chain({"chain": {"prev": "x"}}) is None
        assert entry_chain({"chain": {"prev": 1, "content": 2,
                                      "commit": 3}}) is None


class TestVerifier:
    def test_clean_walk_adopts_every_head(self):
        entries = make_entries()
        verifier = ChainVerifier(GENESIS)
        for entry in entries:
            verifier.take(entry)
        assert verifier.verified == len(entries)
        assert verifier.head == entries[-1]["chain"]["commit"]
        assert head_of([dict(e) for e in entries]) == verifier.head

    def test_heads_are_content_derived_so_unchained_copies_converge(self):
        # A primary folds encode_commit() entries that carry no chain
        # key; the journal's r2 records do carry it.  Both walks must
        # land on the same head, or replication could never compare.
        entries = make_entries()
        bare = []
        for entry in entries:
            copy = dict(entry)
            copy.pop("chain")
            bare.append(copy)
        running = GENESIS
        for entry in bare:
            running = link_hash(running, content_hash(entry))
        assert running == entries[-1]["chain"]["commit"]

    def test_tampered_payload_is_chain_tamper(self):
        entries = make_entries()
        entries[2]["sequence"] = 999  # CRC-valid rewrite analogue
        verifier = ChainVerifier(GENESIS)
        verifier.take(entries[0])
        verifier.take(entries[1])
        with pytest.raises(ChainError) as excinfo:
            verifier.take(entries[2])
        assert excinfo.value.kind == "tamper"

    def test_edited_chain_field_is_detected(self):
        entries = make_entries()
        entries[2]["chain"]["prev"] = "f" * 64
        verifier = ChainVerifier(GENESIS)
        verifier.take(entries[0])
        verifier.take(entries[1])
        with pytest.raises(ChainError):
            verifier.take(entries[2])

    def test_removed_record_is_chain_break(self):
        entries = make_entries()
        verifier = ChainVerifier(GENESIS)
        verifier.take(entries[0])
        with pytest.raises(ChainError) as excinfo:
            verifier.take(entries[2])  # entry 1 went missing
        assert excinfo.value.kind == "break"

    def test_reordered_records_are_chain_break(self):
        entries = make_entries()
        verifier = ChainVerifier(GENESIS)
        verifier.take(entries[0])
        with pytest.raises(ChainError):
            verifier.take(entries[2])

    def test_legacy_records_reanchor_instead_of_failing(self):
        entries = make_entries()
        legacy = {"sequence": 99, "operations": []}  # pre-chain record
        verifier = ChainVerifier(GENESIS)
        verifier.take(entries[0])
        verifier.take(legacy)
        assert verifier.head is None
        assert verifier.legacy == 1
        # The next chained record re-anchors the walk on itself.
        verifier.take(entries[1])
        assert verifier.head == entries[1]["chain"]["commit"]

    def test_forget_tolerates_a_known_hole(self):
        entries = make_entries()
        verifier = ChainVerifier(GENESIS)
        verifier.take(entries[0])
        verifier.forget()  # e.g. operator deleted a pruned segment
        verifier.take(entries[3])  # would be a break without forget()
        assert verifier.head == entries[3]["chain"]["commit"]

    def test_chain_error_is_a_journal_error(self):
        from repro.errors import JournalError
        assert issubclass(ChainError, JournalError)
