"""Property tests: every persistence path is a faithful round trip."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HistoricalRelation, TemporalRelation
from repro.core.historical import HistoricalRow
from repro.core.temporal import BitemporalRow
from repro.relational import Attribute, Domain, Relation, Schema, Tuple
from repro.storage import (export_csv, export_historical_csv,
                           export_temporal_csv, import_csv,
                           import_historical_csv, import_temporal_csv)
from repro.storage.serializer import relation_from_dict, relation_to_dict
from repro.time import Instant, POS_INF, Period

SCHEMA = Schema([
    Attribute("name", Domain.STRING),
    Attribute("grade", Domain.INTEGER),
    Attribute("nick", Domain.STRING, nullable=True),
])

BASE = Instant.parse("01/01/80").chronon

names = st.sampled_from(["a", "b", "c d", "e,f", 'quo"te'])
grades = st.integers(min_value=-5, max_value=5)
nicks = st.one_of(st.none(), st.sampled_from(["x", "y z", ""]))


@st.composite
def tuples(draw):
    return Tuple(SCHEMA, {"name": draw(names), "grade": draw(grades),
                          "nick": draw(nicks)})


@st.composite
def periods(draw):
    start = draw(st.integers(min_value=0, max_value=40))
    if draw(st.booleans()):
        return Period(Instant.from_chronon(BASE + start), POS_INF)
    length = draw(st.integers(min_value=1, max_value=20))
    return Period(Instant.from_chronon(BASE + start),
                  Instant.from_chronon(BASE + start + length))


class TestCsvRoundTrips:
    @given(st.lists(tuples(), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_static_csv(self, rows):
        relation = Relation(SCHEMA, rows)
        buffer = io.StringIO()
        export_csv(relation, buffer)
        buffer.seek(0)
        rebuilt = import_csv(SCHEMA, buffer)
        # Empty-string nicks become nulls on import (CSV cannot tell them
        # apart); everything else round-trips exactly.
        normalized = Relation(SCHEMA, (
            row.replace(nick=None) if row["nick"] == "" else row
            for row in relation))
        assert rebuilt == normalized

    @given(st.lists(st.tuples(tuples(), periods()), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_historical_csv(self, raw):
        relation = HistoricalRelation(
            SCHEMA, (HistoricalRow(data, valid) for data, valid in raw
                     if data["nick"] != ""))
        buffer = io.StringIO()
        export_historical_csv(relation, buffer)
        buffer.seek(0)
        assert import_historical_csv(SCHEMA, buffer) == relation

    @given(st.lists(st.tuples(tuples(), periods(), periods()), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_temporal_csv(self, raw):
        relation = TemporalRelation(
            SCHEMA, (BitemporalRow(data, valid, tt)
                     for data, valid, tt in raw if data["nick"] != ""))
        buffer = io.StringIO()
        export_temporal_csv(relation, buffer)
        buffer.seek(0)
        assert import_temporal_csv(SCHEMA, buffer) == relation


class TestJsonRoundTrips:
    @given(st.lists(tuples(), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_static_json(self, rows):
        relation = Relation(SCHEMA, rows)
        assert relation_from_dict(relation_to_dict(relation)) == relation

    @given(st.lists(st.tuples(tuples(), periods()), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_historical_json(self, raw):
        from repro.storage.serializer import historical_to_dict
        relation = HistoricalRelation(
            SCHEMA, (HistoricalRow(data, valid) for data, valid in raw))
        assert relation_from_dict(historical_to_dict(relation)) == relation

    @given(st.lists(st.tuples(tuples(), periods(), periods()), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_temporal_json(self, raw):
        from repro.storage.serializer import temporal_to_dict
        relation = TemporalRelation(
            SCHEMA, (BitemporalRow(data, valid, tt)
                     for data, valid, tt in raw))
        assert relation_from_dict(temporal_to_dict(relation)) == relation
