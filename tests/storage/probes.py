"""Shared observational probes for the durability test suites.

Recovery correctness here is *observational*: a recovered database must
answer every query its kind supports exactly like the database that
never crashed.  These helpers collect those answers:

- :func:`observations` — the kind-aware query fingerprint (snapshot,
  rollbacks, timeslices, history, temporal rows at fixed probe
  instants).  Deliberately excludes the in-memory commit log: after a
  checkpoint recovery the log holds only the replayed tail, and the
  durability contract promises identical *answers*, not an identical
  in-memory log.
- :func:`paper_answers` — the paper's §4.1–§4.4 TQuel queries (Figures
  2–9 scenario), asked through a real :class:`~repro.tquel.Session`.
- :func:`faculty_steps` / :func:`drive_faculty` — the conftest faculty
  narrative as a resumable step list, so fault tests can crash between
  any two transactions and finish the rest after recovery.
"""

from repro.tquel import Session

from tests.conftest import faculty_schema

#: Instants straddling every interesting edge of the faculty scenario
#: and the generated workloads (which start at the 01/01/80 epoch).
PROBE_INSTANTS = (
    "06/01/78", "06/01/80", "06/01/81", "03/01/82", "12/10/82",
    "12/20/82", "06/01/83", "03/15/84", "01/01/85",
)


def observations(database, relation="faculty"):
    """Every answer *relation* can give, keyed by probe name.

    Two databases of the same kind with equal observations are
    indistinguishable to queries — the equivalence the recovery tests
    assert.
    """
    collected = {"kind": database.kind, "snapshot": database.snapshot(relation)}
    if database.supports_rollback:
        for when in PROBE_INSTANTS:
            collected[f"rollback@{when}"] = database.rollback(relation, when)
    if database.supports_historical_queries:
        collected["history"] = database.history(relation)
        for when in PROBE_INSTANTS:
            collected[f"timeslice@{when}"] = database.timeslice(relation, when)
    if database.supports_rollback and database.supports_historical_queries:
        collected["temporal"] = database.temporal(relation)
    return collected


def _plain(result):
    """A query result as comparable plain data, whatever its kind.

    Snapshot relations give their dict rows; historical/temporal
    relations add their valid/transaction periods as strings."""
    if hasattr(result, "to_dicts"):
        return result.to_dicts()
    rows = []
    for row in result.rows:
        item = dict(row.data)
        if hasattr(row, "valid"):
            item["__valid"] = str(row.valid)
        if hasattr(row, "tt"):
            item["__tt"] = str(row.tt)
        rows.append(item)
    return sorted(rows, key=repr)


def paper_answers(database):
    """The paper's §4.1–§4.4 query answers, where the taxonomy allows.

    Expects the conftest faculty scenario to have been driven into
    *database*.  Returns a dict of plain data (safe to compare with
    ``==`` across separately recovered databases).
    """
    session = Session(database)
    session.execute("range of f is faculty")
    answers = {
        "static": [{"rank": row["rank"]} for row in _plain(session.query(
            'retrieve (f.rank) where f.name = "Merrie"'))],
    }
    if database.supports_rollback:
        answers["as_of"] = [{"rank": row["rank"]}
                            for row in _plain(session.query(
                                'retrieve (f.rank) where f.name = "Merrie" '
                                'as of "12/10/82"'))]
    if database.supports_historical_queries:
        session.execute("range of f1 is faculty")
        session.execute("range of f2 is faculty")
        when_query = ('retrieve (f1.rank) where f1.name = "Merrie" and '
                      'f2.name = "Tom" when f1 overlap start of f2')
        answers["when"] = [row.data["rank"]
                           for row in session.query(when_query).rows]
        if database.supports_rollback:
            for as_of in ("12/10/82", "12/20/82"):
                answers[f"bitemporal@{as_of}"] = [
                    row.data["rank"]
                    for row in session.query(
                        f'{when_query} as of "{as_of}"').rows]
    return answers


#: Expected §4 answers per capability, straight from the paper's text.
EXPECTED_STATIC = [{"rank": "full"}]
EXPECTED_AS_OF = [{"rank": "associate"}]
EXPECTED_WHEN = ["full"]
EXPECTED_BITEMPORAL = {"12/10/82": ["associate"], "12/20/82": ["full"]}


def faculty_steps(database):
    """The conftest faculty narrative as ``(commit instant, thunk)`` steps.

    Mirrors ``tests.conftest.build_faculty`` exactly, but resumable: a
    fault test runs steps until the injected crash, recovers, and runs
    the remainder against the recovered database.
    """
    historical = database.kind.supports_historical_queries

    def args(**valid):
        return valid if historical else {}

    return [
        ("01/01/77", lambda: database.define("faculty", faculty_schema())),
        ("08/25/77", lambda: database.insert(
            "faculty", {"name": "Merrie", "rank": "associate"},
            **args(valid_from="09/01/77"))),
        ("12/01/82", lambda: database.insert(
            "faculty", {"name": "Tom", "rank": "full"},
            **args(valid_from="12/05/82"))),
        ("12/07/82", lambda: database.replace(
            "faculty", {"name": "Tom"}, {"rank": "associate"},
            **args(valid_from="12/05/82"))),
        ("12/15/82", lambda: database.replace(
            "faculty", {"name": "Merrie"}, {"rank": "full"},
            **args(valid_from="12/01/82"))),
        ("01/10/83", lambda: database.insert(
            "faculty", {"name": "Mike", "rank": "assistant"},
            **args(valid_from="01/01/83"))),
        ("02/25/84", lambda: database.delete(
            "faculty", {"name": "Mike"},
            **args(valid_from="03/01/84"))),
    ]


def drive_faculty(database, start=0, stop=None):
    """Run faculty steps ``[start:stop]`` against *database*.

    Returns the number of steps that completed (each is one commit)."""
    clock = database.manager.clock.source
    done = 0
    for when, action in faculty_steps(database)[start:stop]:
        clock.set(when)
        action()
        done += 1
    return done
