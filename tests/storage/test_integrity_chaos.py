"""Corruption chaos: every injector, every position, detect → repair.

Two harnesses drive the integrity machinery the way an adversary (or a
failing disk) would:

- the **exhaustive flip sweep** XORs one byte at *every offset* of a
  journal segment, one at a time, and requires the audit to classify
  each flip — no offset may produce a clean report, and no mid-file
  record may silently vanish;
- the **detect-and-repair matrix** crosses every at-rest injector
  (bit-flip, mid-file truncation, chain-field tamper, CRC-valid record
  tamper, checkpoint tamper) with every segment position (first, middle,
  last record) and requires each damaged directory to converge back to
  a digest-equal copy of its healthy peer with zero lost durable
  commits.

This file is the ``integrity-suite`` CI step's core workload.
"""

import os

import pytest

from repro.core import TemporalDatabase
from repro.replication import state_digest
from repro.storage import (CheckpointStore, DurabilityManager, Scrubber,
                           audit_directory, flip_byte, tamper_chain_field,
                           tamper_record, truncate_file)
from repro.storage.scrub import DirectorySource

from tests.storage.probes import drive_faculty, observations

#: The full damage taxonomy (docs/INTEGRITY.md).
TAXONOMY = {"torn", "corrupt", "chain-break", "chain-tamper", "gap",
            "checkpoint", "sidelog"}


def build(directory, stop=None, final_checkpoint=False):
    manager = DurabilityManager(directory)
    database, _ = manager.recover(TemporalDatabase)
    drive_faculty(database, stop=stop)
    if final_checkpoint:
        manager.checkpoint()
    return manager, database


def data_segment(directory):
    """The first (record-bearing) segment of *directory*."""
    return DurabilityManager(directory).segments()[0][1]


def line_spans(path):
    """``(start_offset, end_offset)`` of every line in *path*."""
    spans = []
    offset = 0
    with open(path, "rb") as handle:
        for line in handle.read().splitlines(keepends=True):
            spans.append((offset, offset + len(line)))
            offset += len(line)
    return spans


class TestExhaustiveFlipSweep:
    def test_every_single_byte_flip_is_detected_and_classified(
            self, tmp_path):
        # Satellite: the property sweep.  One small segment, one flip
        # per offset, every flip must surface as a classified finding.
        directory = str(tmp_path / "dur")
        build(directory, stop=4)
        path = data_segment(directory)
        size = os.path.getsize(path)
        assert size > 0
        missed = []
        misclassified = []
        for offset in range(size):
            flip_byte(path, offset)
            report = audit_directory(directory)
            if report.clean:
                missed.append(offset)
            else:
                bad = [f.kind for f in report.findings
                       if f.kind not in TAXONOMY]
                if bad:
                    misclassified.append((offset, bad))
            flip_byte(path, offset)  # restore
        assert missed == [], (f"{len(missed)} of {size} byte flips were "
                              f"not detected: offsets {missed[:10]}...")
        assert misclassified == []
        # The restores were exact: the segment audits clean again.
        assert audit_directory(directory).clean

    def test_no_mid_file_flip_silently_drops_a_record(self, tmp_path):
        # A flip inside record k must never yield an audit that claims
        # a fully-verified shorter history: the verified prefix stops at
        # or before k, and the damage is pinned to a finding.
        directory = str(tmp_path / "dur")
        build(directory, stop=4)
        path = data_segment(directory)
        for index, (start, end) in enumerate(line_spans(path)):
            offset = (start + end) // 2
            flip_byte(path, offset)
            report = audit_directory(directory)
            assert not report.clean
            assert report.verified_prefix <= index
            assert any(f.index is None or f.index <= index
                       for f in report.findings)
            flip_byte(path, offset)


def inject_bit_flip(directory, line_number):
    path = data_segment(directory)
    start, end = line_spans(path)[line_number - 1]
    flip_byte(path, (start + end) // 2)


def inject_truncation(directory, line_number):
    path = data_segment(directory)
    start, end = line_spans(path)[line_number - 1]
    truncate_file(path, (start + end) // 2)


def inject_chain_field(directory, line_number):
    tamper_chain_field(data_segment(directory), line_number)


def inject_record_tamper(directory, line_number):
    tamper_record(data_segment(directory), line_number)


def inject_checkpoint_tamper(directory, line_number):
    store = CheckpointStore(directory)
    flip_byte(store.path_for(store.indices()[-1]), 40 + line_number)


INJECTORS = {
    "bit-flip": inject_bit_flip,
    "truncation": inject_truncation,
    "chain-field": inject_chain_field,
    "record-tamper": inject_record_tamper,
    "checkpoint-tamper": inject_checkpoint_tamper,
}

#: first / middle / last record of the 7-record faculty segment.
POSITIONS = {"first": 1, "middle": 4, "last": 7}


class TestDetectAndRepairMatrix:
    @pytest.mark.parametrize("position", sorted(POSITIONS))
    @pytest.mark.parametrize("injector", sorted(INJECTORS))
    def test_damage_is_detected_classified_and_repaired(
            self, tmp_path, injector, position):
        damaged_dir = str(tmp_path / "damaged")
        healthy_dir = str(tmp_path / "healthy")
        # A final checkpoint pins the full history, so even tail
        # truncation is detectable offline (and the checkpoint-tamper
        # injector has a checkpoint to damage).
        build(damaged_dir, final_checkpoint=True)
        _, healthy = build(healthy_dir, final_checkpoint=True)
        INJECTORS[injector](damaged_dir, POSITIONS[position])

        # Detect + classify: never clean, never outside the taxonomy.
        report = audit_directory(damaged_dir)
        assert not report.clean, f"{injector}@{position} went undetected"
        assert all(f.kind in TAXONOMY for f in report.findings)

        # Repair: converge with the healthy peer.
        repair = Scrubber(damaged_dir).repair(
            DirectorySource(healthy_dir, TemporalDatabase),
            TemporalDatabase)
        assert repair.digest_match is True
        assert repair.records_total == 7

        # Zero lost durable commits: the repaired directory recovers
        # cleanly to the same answers as the never-damaged peer.
        assert audit_directory(damaged_dir).clean
        recovered, recovery = DurabilityManager(damaged_dir).recover(
            TemporalDatabase)
        assert recovery.records_total == 7
        assert observations(recovered) == observations(healthy)
        assert state_digest(recovered) == state_digest(healthy)

    def test_crc_valid_tamper_is_invisible_to_frames_alone(self, tmp_path):
        # The headline acceptance case, stated as its own test: the
        # tampered record still frame-verifies; only the chain sees it.
        from repro.storage import Journal
        directory = str(tmp_path / "dur")
        build(directory)
        path = data_segment(directory)
        tamper_record(path, 4)
        assert len(Journal(path).read()) == 7  # frames all pass
        report = audit_directory(directory)
        assert [f.kind for f in report.findings] == ["chain-tamper"]
