"""Unit tests for checkpoint files and the checkpoint store."""

import os

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import CheckpointError
from repro.storage import (CHECKPOINT_TAG, CheckpointStore, checkpoint_bytes,
                           frame, read_checkpoint)
from repro.time import SimulatedClock

from tests.conftest import build_faculty
from tests.storage.probes import observations

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(str(tmp_path / "dur"))


class TestRoundTrip:
    @pytest.mark.parametrize("db_class", ALL_KINDS)
    def test_checkpoint_restores_every_kind(self, db_class, store):
        database, _ = build_faculty(db_class)
        store.write(database, len(database.log))
        commit_index, restored = store.load_latest()
        assert commit_index == len(database.log)
        assert observations(restored) == observations(database)

    def test_restored_database_accepts_new_commits(self, store):
        database, _ = build_faculty(TemporalDatabase)
        store.write(database, len(database.log))
        _, restored = store.load_latest()
        restored.manager.clock.source.set("06/01/85")
        restored.insert("faculty", {"name": "New", "rank": "full"},
                        valid_from="06/01/85")
        assert "New" in {row["name"] for row in restored.snapshot("faculty")}
        assert len(restored.log) == 1  # only the post-restore commit

    def test_write_is_atomic_no_tmp_left(self, store):
        database, _ = build_faculty(StaticDatabase)
        path = store.write(database, 7)
        assert os.path.exists(path)
        assert not [name for name in os.listdir(store.directory)
                    if name.endswith(".tmp")]


class TestValidation:
    def test_missing_file_raises(self, store):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(store.path_for(3))

    def test_truncated_checkpoint_raises(self, store):
        database, _ = build_faculty(StaticDatabase)
        path = store.write(database, 7)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        with pytest.raises(CheckpointError, match="damaged"):
            read_checkpoint(path)

    def test_unknown_format_raises(self, store):
        os.makedirs(store.directory, exist_ok=True)
        payload = '{"commit_index": 0, "database": {}, "format": 99}'
        with open(store.path_for(0), "w") as handle:
            handle.write(frame(payload, tag=CHECKPOINT_TAG) + "\n")
        with pytest.raises(CheckpointError, match="format"):
            read_checkpoint(store.path_for(0))

    def test_latest_skips_damaged_newest(self, store):
        database, clock = build_faculty(TemporalDatabase)
        store.write(database, 7)
        clock.set("06/01/85")
        database.insert("faculty", {"name": "New", "rank": "full"},
                        valid_from="06/01/85")
        newest = store.path_for(8)
        with open(newest, "wb") as handle:
            handle.write(checkpoint_bytes(database, 8)[:40])
        commit_index, entry = store.latest()
        assert commit_index == 7  # the torn newer one was skipped
        assert entry["commit_index"] == 7

    def test_stray_tmp_files_are_not_checkpoints(self, store):
        database, _ = build_faculty(StaticDatabase)
        store.write(database, 7)
        with open(store.path_for(9) + ".tmp", "wb") as handle:
            handle.write(b"half a checkpoint")
        assert store.indices() == [7]

    def test_empty_directory_has_no_latest(self, store):
        assert store.latest() is None
        assert store.load_latest() is None


class TestClockRestoration:
    def test_restored_clock_resumes_at_last_commit(self, store):
        database, _ = build_faculty(TemporalDatabase)
        store.write(database, 7)
        _, restored = store.load_latest(clock=SimulatedClock("02/25/84"))
        # A same-instant reading must still commit strictly after the
        # last recorded transaction (transaction time is monotone).
        when = restored.insert("faculty", {"name": "Ann", "rank": "full"},
                               valid_from="03/01/84")
        assert when > database.log.last().commit_time
