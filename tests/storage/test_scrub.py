"""Scrubber tests: audit classification, quarantine, and repair.

The scrubber's contract (docs/INTEGRITY.md): every kind of at-rest
damage is *detected* and *classified* — never silently replayed — and a
damaged directory with a healthy peer converges back to a digest-equal
copy with zero lost durable commits.
"""

import json
import os

import pytest

from repro import obs
from repro.core import StaticDatabase, TemporalDatabase
from repro.relational import Domain, Schema
from repro.storage import (CHAINED_TAG, GENESIS, CheckpointStore,
                           DurabilityManager, Journal, Scrubber,
                           audit_directory, chain_entry, flip_byte,
                           frame_record, parse_journal_line,
                           tamper_chain_field, tamper_record, truncate_file)
from repro.storage.scrub import (DirectorySource, audit_sharded,
                                 combined_root)

from tests.storage.probes import drive_faculty, observations


@pytest.fixture
def directory(tmp_path):
    return str(tmp_path / "dur")


@pytest.fixture
def source_dir(tmp_path):
    return str(tmp_path / "healthy")


def build(directory, checkpoint_at=None, kind=TemporalDatabase):
    """A durable faculty database; optionally checkpoint mid-history."""
    manager = DurabilityManager(directory)
    database, _ = manager.recover(kind)
    if checkpoint_at is None:
        drive_faculty(database)
    else:
        drive_faculty(database, stop=checkpoint_at)
        manager.checkpoint()
        drive_faculty(database, start=checkpoint_at)
    return manager, database


def segment_paths(directory):
    return [path for _, path in DurabilityManager(directory).segments()]


def rewrite_segment(path, rebuild):
    """Parse a segment's entries (chain stripped) and rewrite its lines."""
    entries = []
    for line in open(path):
        entry, _ = parse_journal_line(line.rstrip("\n"))
        entry.pop("chain", None)
        entries.append(entry)
    with open(path, "w") as handle:
        for line in rebuild(entries):
            handle.write(line + "\n")


class TestAuditClassification:
    def test_clean_directory_audits_clean(self, directory):
        build(directory)
        report = audit_directory(directory)
        assert report.clean
        assert report.records_total == 7
        assert report.chain_verified == 7
        assert report.verified_prefix == 7
        assert report.chain_head is not None

    def test_audit_emits_events_and_metrics(self, directory):
        build(directory)
        with obs.recording() as instrumentation:
            audit_directory(directory)
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["scrub.audits"] == 1
        kinds = instrumentation.events.aggregate()
        assert kinds["integrity.audit"] == 1

    def test_torn_final_record_is_benign_torn(self, directory):
        build(directory)
        path = segment_paths(directory)[-1]
        line = frame_record(chain_entry({"sequence": 99, "operations": []},
                                        GENESIS), tag=CHAINED_TAG)
        with open(path, "a") as handle:
            handle.write(line[:len(line) // 2])  # crashed mid-append
        report = audit_directory(directory)
        assert [f.kind for f in report.findings] == ["torn"]
        # The torn tail does not damage the verified prefix's records.
        assert report.chain_verified == 7

    def test_flipped_byte_is_corrupt(self, directory):
        build(directory)
        path = segment_paths(directory)[0]
        flip_byte(path, os.path.getsize(path) // 2)
        report = audit_directory(directory)
        assert any(f.kind == "corrupt" for f in report.findings)
        assert report.verified_prefix < 7

    def test_crc_valid_tamper_is_caught_by_the_chain_alone(self, directory):
        # The acceptance case: the frame is perfectly valid (length and
        # CRC recomputed), so checksum verification passes — only the
        # chain knows the record is not the one that committed.
        build(directory)
        path = segment_paths(directory)[0]
        tamper_record(path, 4)
        assert len(Journal(path).read()) == 7  # CRC sees nothing wrong
        report = audit_directory(directory)
        assert [f.kind for f in report.findings] == ["chain-tamper"]
        assert report.findings[0].line_number == 4
        assert report.verified_prefix == 3

    def test_edited_chain_field_is_classified(self, directory):
        build(directory)
        path = segment_paths(directory)[0]
        tamper_chain_field(path, 3, field="prev")
        report = audit_directory(directory)
        assert report.findings
        assert all(f.kind.startswith("chain-") for f in report.findings)

    def test_mid_file_truncation_is_not_mistaken_for_a_crash(
            self, directory):
        # Truncate an *inner* segment: its torn tail looks like crash
        # residue byte-wise, but no crash tears a mid-history file.
        build(directory, checkpoint_at=4)
        first = segment_paths(directory)[0]
        truncate_file(first, os.path.getsize(first) - 30)
        report = audit_directory(directory)
        assert any(f.kind == "corrupt" and "mid-file" in f.detail
                   for f in report.findings)
        assert not report.clean

    def test_tail_truncation_is_exposed_by_the_checkpoint(self, directory):
        # Cut whole records off the end of the journal: framing alone
        # reads a clean-but-shorter history, but the checkpoint already
        # incorporates more records than the journal now holds.
        manager, database = build(directory)
        manager.checkpoint()  # covers 7 records; rotates an empty tail
        data_segment, empty_tail = segment_paths(directory)
        os.unlink(empty_tail)
        lines = open(data_segment, "rb").read().splitlines(keepends=True)
        with open(data_segment, "wb") as handle:
            handle.writelines(lines[:-2])
        report = audit_directory(directory)
        assert any(f.kind == "gap" and "truncated" in f.detail
                   for f in report.findings)

    def test_tampered_checkpoint_is_classified(self, directory):
        build(directory, checkpoint_at=4)
        store = CheckpointStore(directory)
        index = store.indices()[-1]
        flip_byte(store.path_for(index), 40)
        report = audit_directory(directory)
        assert any(f.kind == "checkpoint" for f in report.findings)

    def test_rewritten_prefix_contradicts_the_checkpointed_head(
            self, directory):
        # Rewrite history *before* a checkpoint while keeping every CRC
        # and every chain link locally consistent (re-chained from
        # genesis).  Only the checkpointed head still pins the original
        # history.
        build(directory, checkpoint_at=4)
        path = segment_paths(directory)[0]

        def forge(entries):
            entries[1]["sequence"] = entries[1].get("sequence", 0) + 500
            prev = GENESIS
            for entry in entries:
                chained = chain_entry(entry, prev)
                prev = chained["chain"]["commit"]
                yield frame_record(chained, tag=CHAINED_TAG)

        rewrite_segment(path, lambda entries: list(forge(entries)))
        report = audit_directory(directory)
        assert any(f.kind == "chain-break" and "checkpoint" in f.detail
                   for f in report.findings)

    def test_damaged_sidelog_is_classified(self, directory):
        build(directory)
        side = os.path.join(directory, "2pc.seg")
        with open(side, "w") as handle:
            handle.write(frame_record({"kind": "prepare", "gid": "g1",
                                       "base": 0, "operations": []}) + "\n")
        flip_byte(side, 20)
        report = audit_directory(directory)
        assert any(f.kind == "sidelog" for f in report.findings)
        assert report.sidelogs_audited == 1


class TestLegacyFrames:
    def test_bare_json_lines_are_counted_not_flagged(self, directory):
        # Satellite: the audit reports how much unprotected history the
        # directory still carries (the migration burn-down number).
        build(directory)
        path = segment_paths(directory)[0]

        def downgrade(entries):
            lines = [json.dumps(entry) for entry in entries[:3]]
            prev = GENESIS
            for entry in entries[3:]:
                chained = chain_entry(entry, prev)
                prev = chained["chain"]["commit"]
                lines.append(frame_record(chained, tag=CHAINED_TAG))
            return lines

        rewrite_segment(path, downgrade)
        with obs.recording() as instrumentation:
            report = audit_directory(directory)
        assert report.clean  # legacy is a fact, not damage
        assert report.legacy_frames == 3
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["storage.legacy_frames"] == 3

    def test_recovery_reports_legacy_frames_too(self, directory):
        build(directory)
        path = segment_paths(directory)[0]
        rewrite_segment(path, lambda entries: [json.dumps(entry)
                                               for entry in entries])
        database, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.legacy_frames == 7
        assert report.records_total == 7


class TestQuarantineAndRepair:
    def damage_and_repair(self, directory, source_dir, damage):
        """Build two identical directories, damage one, repair it."""
        build(directory)
        src_manager, src_database = build(source_dir)
        damage(directory)
        report = Scrubber(directory).repair(
            DirectorySource(source_dir, TemporalDatabase), TemporalDatabase)
        return report, src_database

    def test_quarantine_moves_never_deletes(self, directory):
        build(directory)
        path = segment_paths(directory)[0]
        tamper_record(path, 4)
        scrubber = Scrubber(directory)
        with obs.recording() as instrumentation:
            moved = scrubber.quarantine()
        assert moved == [os.path.basename(path)]
        quarantined = os.path.join(directory, "quarantine",
                                   os.path.basename(path))
        assert os.path.exists(quarantined)
        assert not os.path.exists(path)
        kinds = instrumentation.events.aggregate()
        assert kinds["integrity.quarantine"] == 1

    def test_repair_by_record_resend(self, directory, source_dir):
        report, src_database = self.damage_and_repair(
            directory, source_dir,
            lambda d: tamper_record(segment_paths(d)[0], 4))
        assert not report.used_snapshot
        assert report.refetched_records > 0
        assert report.digest_match is True
        recovered, _ = DurabilityManager(directory).recover(TemporalDatabase)
        assert observations(recovered) == observations(src_database)

    def test_repair_by_snapshot_when_source_compacted(self, directory,
                                                      source_dir):
        # The source checkpointed and pruned its early segments, so the
        # damaged node's verified prefix is below the source's floor —
        # records cannot bridge it; a snapshot must.
        build(directory)
        src_manager, src_database = build(source_dir, checkpoint_at=4)
        for start, path in src_manager.segments()[:-1]:
            os.unlink(path)  # prune checkpointed-away history
        tamper_record(segment_paths(directory)[0], 2)
        report = Scrubber(directory).repair(
            DirectorySource(source_dir, TemporalDatabase), TemporalDatabase)
        assert report.used_snapshot
        assert report.digest_match is True
        recovered, _ = DurabilityManager(directory).recover(TemporalDatabase)
        assert observations(recovered) == observations(src_database)

    def test_repair_loses_zero_durable_commits(self, directory, source_dir):
        report, src_database = self.damage_and_repair(
            directory, source_dir,
            lambda d: flip_byte(segment_paths(d)[0], 30))
        recovered, recovery = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert recovery.records_total == len(src_database.log)
        assert recovery.chain_verified == recovery.records_total

    def test_repaired_directory_keeps_committing(self, directory,
                                                 source_dir):
        self.damage_and_repair(
            directory, source_dir,
            lambda d: tamper_record(segment_paths(d)[0], 5))
        manager = DurabilityManager(directory)
        recovered, _ = manager.recover(TemporalDatabase)
        recovered.manager.clock.source.set("06/01/85")
        recovered.insert("faculty", {"name": "New", "rank": "full"},
                         valid_from="06/01/85")
        again, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        assert report.records_total == 8
        assert report.chain_verified == 8

    def test_clean_repair_is_a_noop(self, directory, source_dir):
        build(directory)
        build(source_dir)
        report = Scrubber(directory).repair(
            DirectorySource(source_dir, TemporalDatabase), TemporalDatabase)
        assert report.findings == 0
        assert report.quarantined == ()
        assert report.refetched_records == 0


class TestShardedAudit:
    def build_sharded(self, tmp_path, name="shards"):
        from repro.sharding import ShardedDurabilityManager
        directory = str(tmp_path / name)
        manager = ShardedDurabilityManager(directory, shards=2)
        store, _ = manager.recover(StaticDatabase)
        store.define("counters",
                     Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER))
        for i in range(6):
            store.insert("counters", {"k": f"k{i}", "v": i})
        return directory, manager, store

    def test_sharded_audit_walks_every_shard(self, tmp_path):
        directory, manager, store = self.build_sharded(tmp_path)
        result = audit_sharded(directory)
        assert result["clean"]
        assert len(result["per_shard"]) == 2
        assert result["combined_root"] is not None
        assert result["combined_root"] == manager.combined_root()
        assert manager.chain_heads() == [r.chain_head
                                         for r in result["per_shard"]]

    def test_damage_in_one_shard_spoils_the_root(self, tmp_path):
        directory, manager, store = self.build_sharded(tmp_path)
        shard_dir = os.path.join(directory, "shard-00")
        seg = segment_paths(shard_dir)[0]
        tamper_record(seg, 1)
        result = audit_sharded(directory)
        assert not result["clean"]
        assert result["combined_root"] is None

    def test_combined_root_refuses_unknown_heads(self):
        assert combined_root([]) is None
        assert combined_root(["a" * 64, None]) is None
        assert combined_root(["a" * 64, "b" * 64]) is not None


class TestCliVerbs:
    def run_cli(self, argv, capsys):
        from repro.cli import repro_main
        code = repro_main(argv)
        return code, capsys.readouterr().out

    def test_audit_verb_clean_and_damaged(self, directory, capsys):
        build(directory)
        code, out = self.run_cli(["audit", "--dir", directory], capsys)
        assert code == 0
        assert "clean" in out
        tamper_record(segment_paths(directory)[0], 4)
        code, out = self.run_cli(["audit", "--dir", directory, "--json"],
                                 capsys)
        assert code == 2
        data = json.loads(out)
        assert data["clean"] is False
        assert data["findings"][0]["kind"] == "chain-tamper"
        assert data["legacy_frames"] == 0

    def test_scrub_verb_quarantines_without_a_source(self, directory,
                                                     capsys):
        build(directory)
        tamper_record(segment_paths(directory)[0], 4)
        code, out = self.run_cli(["scrub", "--dir", directory], capsys)
        assert code == 2
        assert "quarantined" in out
        assert os.path.isdir(os.path.join(directory, "quarantine"))

    def test_scrub_verb_repairs_from_a_source(self, directory, source_dir,
                                              capsys):
        build(directory)
        build(source_dir)
        tamper_record(segment_paths(directory)[0], 4)
        code, out = self.run_cli(
            ["scrub", "--dir", directory, "--repair-from", source_dir,
             "--json"], capsys)
        assert code == 0
        data = json.loads(out)
        assert data["digest_match"] is True
        code, out = self.run_cli(["audit", "--dir", directory], capsys)
        assert code == 0

    def test_sharded_audit_verb(self, tmp_path, capsys):
        directory, _, _ = TestShardedAudit().build_sharded(tmp_path)
        code, out = self.run_cli(
            ["audit", "--dir", directory, "--sharded"], capsys)
        assert code == 0
        assert "combined root" in out
