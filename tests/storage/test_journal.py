"""Unit tests for the durable journal and replay."""

import json
import os

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import JournalError
from repro.storage import Journal
from repro.time import Instant, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

from tests.conftest import build_faculty


@pytest.fixture
def journal_path(tmp_path):
    return str(tmp_path / "db.journal")


class TestRecording:
    def test_bind_journals_every_commit(self, journal_path):
        clock = SimulatedClock("01/01/77")
        database = TemporalDatabase(clock=clock)
        Journal(journal_path).bind(database)
        from tests.conftest import faculty_schema
        database.define("faculty", faculty_schema())
        clock.set("08/25/77")
        database.insert("faculty", {"name": "Merrie", "rank": "associate"},
                        valid_from="09/01/77")
        entries = Journal(journal_path).read()
        assert len(entries) == 2  # define + insert
        assert entries[1]["operations"][0]["action"] == "insert"

    def test_bind_late_captures_history(self, journal_path):
        database, _ = build_faculty(TemporalDatabase)
        Journal(journal_path).bind(database)
        entries = Journal(journal_path).read()
        assert len(entries) == len(database.log)

    def test_read_missing_file_is_empty(self, journal_path):
        assert Journal(journal_path).read() == []

    def test_corrupt_line_detected(self, journal_path):
        with open(journal_path, "w") as handle:
            handle.write("{not json\n")
        with pytest.raises(JournalError, match="corrupt"):
            Journal(journal_path).read()

    def test_entries_are_framed_lines(self, journal_path):
        # One record per line: tag, payload length, CRC32, JSON payload.
        from repro.storage import CHAINED_TAG, parse_frame
        database, _ = build_faculty(StaticDatabase)
        Journal(journal_path).bind(database)
        with open(journal_path) as handle:
            for line in handle:
                tag, length, checksum, payload = line.rstrip("\n").split(
                    " ", 3)
                assert tag == CHAINED_TAG
                assert int(length) == len(payload.encode("utf-8"))
                assert parse_frame(line.rstrip("\n"),
                                   tag=CHAINED_TAG) == json.loads(payload)

    def test_legacy_bare_json_lines_still_replay(self, journal_path):
        # Journals written before framing (bare JSON lines) are still
        # accepted; they just lack checksums (and chain fields).
        database, _ = build_faculty(TemporalDatabase)
        Journal(journal_path).bind(database)
        from repro.storage import parse_journal_line
        entries = []
        for line in open(journal_path):
            entry, _ = parse_journal_line(line.rstrip("\n"))
            entry.pop("chain", None)
            entries.append(entry)
        with open(journal_path, "w") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")
        rebuilt = Journal(journal_path).replay(TemporalDatabase)
        assert rebuilt.temporal("faculty") == database.temporal("faculty")


class TestReplay:
    @pytest.mark.parametrize("db_class", [
        StaticDatabase, RollbackDatabase, HistoricalDatabase,
        TemporalDatabase,
    ])
    def test_replay_reproduces_paper_scenario(self, db_class, journal_path):
        database, _ = build_faculty(db_class)
        Journal(journal_path).bind(database)
        rebuilt = Journal(journal_path).replay(db_class)
        assert rebuilt.kind is database.kind
        assert rebuilt.snapshot("faculty") == database.snapshot("faculty")
        if database.supports_rollback:
            for when in ("12/10/82", "06/01/83"):
                assert rebuilt.rollback("faculty", when) == \
                    database.rollback("faculty", when)
        if database.supports_historical_queries:
            assert rebuilt.history("faculty") == database.history("faculty")

    def test_replay_preserves_commit_times(self, journal_path):
        database, _ = build_faculty(TemporalDatabase)
        Journal(journal_path).bind(database)
        rebuilt = Journal(journal_path).replay(TemporalDatabase)
        original_times = [record.commit_time for record in database.log]
        replayed_times = [record.commit_time for record in rebuilt.log]
        assert replayed_times == original_times

    def test_replay_scale_workload(self, journal_path):
        workload = FacultyWorkload(people=10, events_per_person=3, seed=4)
        database = TemporalDatabase(clock=SimulatedClock("01/01/79"))
        Journal(journal_path).bind(database)
        apply_workload(database, workload)
        rebuilt = Journal(journal_path).replay(TemporalDatabase)
        assert rebuilt.temporal("faculty") == database.temporal("faculty")

    def test_bad_commit_time_detected(self, journal_path):
        with open(journal_path, "w") as handle:
            handle.write(json.dumps({
                "sequence": 0, "commit_time": "not-a-time",
                "operations": []}) + "\n")
        with pytest.raises(JournalError, match="bad commit time"):
            Journal(journal_path).replay(TemporalDatabase)

    def test_event_flag_survives_replay(self, journal_path):
        from repro.relational import Domain, Schema
        clock = SimulatedClock("01/01/80")
        database = TemporalDatabase(clock=clock)
        Journal(journal_path).bind(database)
        database.define("pings", Schema.of(x=Domain.STRING), event=True)
        database.insert("pings", {"x": "hello"}, valid_at="01/02/80")
        rebuilt = Journal(journal_path).replay(TemporalDatabase)
        assert rebuilt.is_event_relation("pings")
        assert rebuilt.history("pings").rows[0].valid.is_instantaneous

    def test_corruption_error_names_line_and_offset(self, journal_path):
        # The error message must localize the damage: line number and
        # byte offset of the record that failed, so an operator can
        # inspect the file without bisecting it.
        database, _ = build_faculty(TemporalDatabase)
        Journal(journal_path).bind(database)
        with open(journal_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        expected_offset = len(lines[0]) + len(lines[1])
        lines[2] = b"r1 5 00000000 {\"x\": 1}\n"  # bad length and CRC
        with open(journal_path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(JournalError,
                           match=rf"line 3 \(byte offset {expected_offset}\)"):
            Journal(journal_path).read()

    def test_recover_mode_drops_only_a_trailing_tear(self, journal_path):
        database, _ = build_faculty(TemporalDatabase)
        Journal(journal_path).bind(database)
        intact = Journal(journal_path).read()
        with open(journal_path, "ab") as handle:
            handle.write(b"r1 400 0badf00d {\"torn")  # crashed append
        journal = Journal(journal_path)
        with pytest.raises(JournalError):
            journal.read()  # strict mode still refuses
        assert journal.read(recover=True) == intact
        dropped = journal.truncate_torn_tail()
        assert dropped > 0
        assert journal.read() == intact  # the file itself is repaired

    def test_continue_after_replay(self, journal_path):
        database, _ = build_faculty(TemporalDatabase)
        Journal(journal_path).bind(database)
        rebuilt = Journal(journal_path).replay(TemporalDatabase)
        # The replayed database accepts new, later transactions.
        rebuilt.manager.clock.source.set("06/01/85")
        when = rebuilt.insert("faculty", {"name": "New", "rank": "full"},
                              valid_from="06/01/85")
        assert when == Instant.parse("06/01/85")
