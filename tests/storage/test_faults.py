"""Fault injection: crash at every point of the matrix, then recover.

Each test drives the paper's faculty narrative into a durable database
whose writes go through a :class:`FaultyIO` that dies deterministically
at one crash point (docs/DURABILITY.md's matrix).  After the simulated
crash the directory is recovered with real I/O, the remaining
transactions are re-run, and the result must answer the paper's
Figure 2–9 queries identically to a database that never crashed.
"""

import os

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import CheckpointError
from repro.storage import (ALL_CRASH_POINTS, CrashPoint, DurabilityManager,
                           FaultyIO, Journal, SimulatedCrash, read_checkpoint)
from repro.time import SimulatedClock

from tests.storage.probes import (drive_faculty, faculty_steps, observations,
                                  paper_answers)

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]

#: Steps after which the driver checkpoints (0-based step indices).
CHECKPOINT_AFTER = (1, 4)


def crash_faculty(db_class, directory, io):
    """Drive the faculty narrative through *io* until it kills us.

    Checkpoints after steps 1 and 4, so both record-level and
    checkpoint-level crash points get their chance.  Returns True if the
    injected crash fired."""
    manager = DurabilityManager(directory, io=io)
    database, _ = manager.recover(db_class)
    clock = database.manager.clock.source
    try:
        for index, (when, action) in enumerate(faculty_steps(database)):
            clock.set(when)
            action()
            if index in CHECKPOINT_AFTER:
                manager.checkpoint()
    except SimulatedCrash:
        return True
    return False


def recover_and_finish(db_class, directory):
    """Recover with real I/O and run the rest of the narrative.

    The durable record count tells us exactly which steps survived —
    each step is one commit — so the driver resumes from there."""
    manager = DurabilityManager(directory)
    database, report = manager.recover(db_class)
    drive_faculty(database, start=report.records_total)
    return database, report


@pytest.fixture
def directory(tmp_path):
    return str(tmp_path / "dur")


class TestCrashMatrix:
    """Every kind × every crash point: recovery ≡ never crashed."""

    @pytest.mark.parametrize("db_class", ALL_KINDS)
    @pytest.mark.parametrize("point", ALL_CRASH_POINTS,
                             ids=[p.value for p in ALL_CRASH_POINTS])
    def test_recovery_answers_paper_queries(self, db_class, point,
                                            directory):
        at = 4 if point in (CrashPoint.TORN_RECORD,
                            CrashPoint.LOST_RECORD) else 2
        assert crash_faculty(db_class, directory, FaultyIO(point, at=at))
        recovered, _ = recover_and_finish(db_class, directory)

        reference = db_class(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(recovered) == observations(reference)
        assert paper_answers(recovered) == paper_answers(reference)
        assert [r.commit_time for r in reference.log][-len(list(
            recovered.log)):] == [r.commit_time for r in recovered.log]

    @pytest.mark.parametrize("at", [1, 3, 7])
    @pytest.mark.parametrize("point",
                             [CrashPoint.TORN_RECORD,
                              CrashPoint.LOST_RECORD],
                             ids=["torn-record", "lost-record"])
    def test_record_crash_at_every_append(self, point, at, directory):
        # Whatever append dies — the very first, a middle one, the last —
        # exactly the commits before it survive, and finishing the
        # narrative converges on the uncrashed answers.
        assert crash_faculty(TemporalDatabase, directory,
                             FaultyIO(point, at=at))
        manager = DurabilityManager(directory)
        _, report = manager.recover(TemporalDatabase)
        assert report.records_total == at - 1
        drive_faculty(manager.database, start=at - 1)

        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(manager.database) == observations(reference)


class TestCrashResidue:
    """The on-disk damage left behind is exactly what the matrix says."""

    def test_torn_record_leaves_detectable_tail(self, directory):
        assert crash_faculty(TemporalDatabase, directory,
                             FaultyIO(CrashPoint.TORN_RECORD, at=4))
        manager = DurabilityManager(directory)
        _, live_path = manager.segments()[-1]
        _, damage = Journal(live_path).scan()
        assert damage is not None  # the torn bytes are visible pre-repair
        _, report = manager.recover(TemporalDatabase)
        assert report.torn_bytes_truncated > 0

    def test_lost_record_leaves_clean_but_shorter_journal(self, directory):
        assert crash_faculty(TemporalDatabase, directory,
                             FaultyIO(CrashPoint.LOST_RECORD, at=4))
        manager = DurabilityManager(directory)
        _, live_path = manager.segments()[-1]
        _, damage = Journal(live_path).scan()
        assert damage is None  # nothing reached disk: no tear to repair
        _, report = manager.recover(TemporalDatabase)
        assert report.torn_bytes_truncated == 0
        assert report.records_total == 3

    def test_torn_checkpoint_fails_validation(self, directory):
        assert crash_faculty(TemporalDatabase, directory,
                             FaultyIO(CrashPoint.TORN_CHECKPOINT, at=2))
        manager = DurabilityManager(directory)
        newest = max(manager.checkpoints.indices())
        with pytest.raises(CheckpointError):
            read_checkpoint(manager.checkpoints.path_for(newest))
        _, report = manager.recover(TemporalDatabase)
        assert report.checkpoints_skipped == 1
        assert report.checkpoint_index == 2  # fell back to the first one

    def test_lost_checkpoint_leaves_ignored_tmp(self, directory):
        assert crash_faculty(TemporalDatabase, directory,
                             FaultyIO(CrashPoint.LOST_CHECKPOINT, at=2))
        strays = [name for name in os.listdir(directory)
                  if name.endswith(".tmp")]
        assert strays  # the rename never happened
        manager = DurabilityManager(directory)
        assert max(manager.checkpoints.indices()) == 2
        _, report = manager.recover(TemporalDatabase)
        assert report.checkpoints_skipped == 0
        assert report.checkpoint_index == 2


class TestInjector:
    def test_passthrough_after_firing(self, directory):
        io = FaultyIO(CrashPoint.LOST_RECORD, at=1)
        assert crash_faculty(TemporalDatabase, directory, io)
        assert io.fired
        # The machine "came back up": the same injector now writes for real.
        manager = DurabilityManager(directory, io=io)
        database, _ = manager.recover(TemporalDatabase)
        drive_faculty(database, stop=3)
        assert manager.record_count == 3

    def test_at_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultyIO(CrashPoint.TORN_RECORD, at=0)

    def test_counts_only_matching_writes(self, directory):
        # Checkpoint writes do not advance a record-crash countdown.
        io = FaultyIO(CrashPoint.TORN_RECORD, at=5)
        assert crash_faculty(TemporalDatabase, directory, io)
        _, report = DurabilityManager(directory).recover(TemporalDatabase)
        assert report.records_total == 4  # died on the fifth append


class TestTransportFaultMatrix:
    """The wire-fault matrix, alongside the disk-fault matrix above.

    Storage faults crash the process and are healed by recovery;
    transport faults (see :mod:`repro.replication.transport`) never
    crash anything — each kind surfaces as a typed *retryable* error so
    callers can wait out the repair.  Fencing and divergence are the two
    deliberate exceptions: retrying cannot fix a deposed primary or a
    corrupted replica.
    """

    def test_every_transport_fault_maps_to_a_retryable_error(self):
        from repro.errors import ReplicationError
        from repro.replication import (ALL_TRANSPORT_FAULTS, fault_error)

        for fault in ALL_TRANSPORT_FAULTS:
            error_class = fault_error(fault)
            error = error_class(f"injected {fault.value}")
            assert isinstance(error, ReplicationError)
            assert error.retryable is True

    def test_fault_matrix_is_exhaustive(self):
        from repro.replication import (ALL_TRANSPORT_FAULTS, FAULT_ERRORS,
                                       TransportFault)

        assert set(ALL_TRANSPORT_FAULTS) == set(TransportFault)
        assert set(FAULT_ERRORS) == set(TransportFault)

    def test_fencing_and_divergence_are_not_retryable(self):
        from repro.errors import DivergenceError, FencedError

        assert FencedError("deposed").retryable is False
        assert DivergenceError("corrupt").retryable is False

    def test_transport_faults_do_not_overlap_crash_points(self):
        # The two matrices are disjoint vocabularies: a wire fault is
        # never spelled like a disk crash point.
        from repro.replication import ALL_TRANSPORT_FAULTS

        wire = {fault.value for fault in ALL_TRANSPORT_FAULTS}
        disk = {point.value for point in ALL_CRASH_POINTS}
        assert not wire & disk
