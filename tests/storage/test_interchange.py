"""Unit tests for CSV interchange."""

import io

import pytest

from repro.core import HistoricalRelation, TemporalRelation
from repro.errors import StorageError
from repro.relational import Attribute, Domain, Relation, Schema
from repro.storage import (export_csv, export_historical_csv,
                           export_temporal_csv, import_csv,
                           import_historical_csv, import_temporal_csv)
from repro.time import Instant

from tests.conftest import build_faculty, faculty_schema
from repro.core import HistoricalDatabase, StaticDatabase, TemporalDatabase


class TestStaticRoundTrip:
    def test_roundtrip(self, static_faculty):
        database, _ = static_faculty
        relation = database.snapshot("faculty")
        buffer = io.StringIO()
        written = export_csv(relation, buffer)
        assert written == relation.cardinality
        buffer.seek(0)
        assert import_csv(relation.schema, buffer) == relation

    def test_file_path_target(self, tmp_path, static_faculty):
        database, _ = static_faculty
        relation = database.snapshot("faculty")
        path = str(tmp_path / "faculty.csv")
        export_csv(relation, path)
        assert import_csv(relation.schema, path) == relation

    def test_nulls_roundtrip(self):
        schema = Schema([Attribute("name", Domain.STRING),
                         Attribute("nick", Domain.STRING, nullable=True)])
        relation = Relation.from_rows(schema, [["a", None], ["b", "bee"]])
        buffer = io.StringIO()
        export_csv(relation, buffer)
        buffer.seek(0)
        assert import_csv(schema, buffer) == relation

    def test_dates_and_numbers_roundtrip(self):
        schema = Schema([Attribute("when", Domain.DATE),
                         Attribute("n", Domain.INTEGER),
                         Attribute("x", Domain.FLOAT)])
        relation = Relation.from_rows(
            schema, [[Instant.parse("12/15/82"), 42, 2.5]])
        buffer = io.StringIO()
        export_csv(relation, buffer)
        buffer.seek(0)
        assert import_csv(schema, buffer) == relation

    def test_header_mismatch_rejected(self):
        buffer = io.StringIO("wrong,header\n1,2\n")
        with pytest.raises(StorageError, match="header"):
            import_csv(faculty_schema(), buffer)

    def test_empty_file_rejected(self):
        with pytest.raises(StorageError, match="empty"):
            import_csv(faculty_schema(), io.StringIO(""))

    def test_ragged_line_rejected(self):
        buffer = io.StringIO("name,rank\nMerrie\n")
        with pytest.raises(StorageError, match="cells"):
            import_csv(faculty_schema(), buffer)


class TestHistoricalRoundTrip:
    def test_roundtrip(self, historical_faculty):
        database, _ = historical_faculty
        relation = database.history("faculty")
        buffer = io.StringIO()
        export_historical_csv(relation, buffer)
        buffer.seek(0)
        assert import_historical_csv(relation.schema, buffer) == relation

    def test_infinity_cells(self, historical_faculty):
        database, _ = historical_faculty
        buffer = io.StringIO()
        export_historical_csv(database.history("faculty"), buffer)
        assert "∞" in buffer.getvalue()

    def test_event_style(self):
        clock_schema = Schema.of(name=Domain.STRING)
        from repro.core.historical import HistoricalRow
        from repro.relational import Tuple
        from repro.time import Period
        relation = HistoricalRelation(clock_schema, [
            HistoricalRow(Tuple(clock_schema, {"name": "ping"}),
                          Period.at("12/11/82"))])
        buffer = io.StringIO()
        export_historical_csv(relation, buffer, event=True)
        assert "valid_at" in buffer.getvalue()
        buffer.seek(0)
        rebuilt = import_historical_csv(clock_schema, buffer, event=True)
        assert rebuilt == relation

    def test_reserved_column_clash_rejected(self):
        schema = Schema.of(valid_from=Domain.STRING)
        relation = HistoricalRelation(schema)
        with pytest.raises(StorageError, match="reserved"):
            export_historical_csv(relation, io.StringIO())


class TestTemporalRoundTrip:
    def test_roundtrip(self, temporal_faculty):
        database, _ = temporal_faculty
        relation = database.temporal("faculty")
        buffer = io.StringIO()
        written = export_temporal_csv(relation, buffer)
        assert written == 7  # Figure 8's rows
        buffer.seek(0)
        assert import_temporal_csv(relation.schema, buffer) == relation

    def test_rollbacks_survive_roundtrip(self, temporal_faculty):
        database, _ = temporal_faculty
        relation = database.temporal("faculty")
        buffer = io.StringIO()
        export_temporal_csv(relation, buffer)
        buffer.seek(0)
        rebuilt = import_temporal_csv(relation.schema, buffer)
        for probe in ("12/10/82", "12/20/82", "06/01/83"):
            assert rebuilt.rollback(probe) == relation.rollback(probe), probe
