"""Unit tests for JSON serialization of values, schemas, and databases."""

import json

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import StorageError
from repro.relational import Attribute, Domain, Schema
from repro.storage import (decode_value, dump_database, dumps_database,
                           encode_value, load_database, loads_database,
                           schema_from_dict, schema_to_dict)
from repro.time import Instant, NEG_INF, POS_INF, Period, SimulatedClock

from tests.conftest import build_faculty, faculty_schema


class TestValues:
    @pytest.mark.parametrize("value", [None, "x", 42, 4.5, True])
    def test_plain_values_pass_through(self, value):
        assert encode_value(value) == value
        assert decode_value(encode_value(value)) == value

    def test_instant_roundtrip(self):
        when = Instant.parse("12/15/82")
        assert decode_value(encode_value(when)) == when

    def test_infinities_roundtrip(self):
        assert decode_value(encode_value(POS_INF)) is POS_INF
        assert decode_value(encode_value(NEG_INF)) is NEG_INF

    def test_period_roundtrip(self):
        period = Period("12/01/82", "forever")
        assert decode_value(encode_value(period)) == period

    def test_granularity_preserved(self):
        from repro.time import Granularity
        when = Instant.parse("1982-12-15 08:30:00", Granularity.SECOND)
        assert decode_value(encode_value(when)) == when

    def test_unserializable_value_rejected(self):
        with pytest.raises(StorageError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(StorageError):
            decode_value({"$mystery": 1})

    def test_json_compatible(self):
        payload = encode_value(Period("12/01/82", "forever"))
        assert json.loads(json.dumps(payload)) == payload


class TestSchemas:
    def test_roundtrip_builtins(self):
        schema = Schema.of(key=["name"], name=Domain.STRING,
                           age=Domain.INTEGER)
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_roundtrip_enumeration(self):
        schema = faculty_schema()
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt == schema
        assert rebuilt.attribute("rank").domain.enum_values == (
            "assistant", "associate", "full")

    def test_roundtrip_user_defined_time(self):
        schema = Schema([Attribute("effective date",
                                   Domain.user_defined_time("effective date"))])
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt.attribute("effective date").domain.is_user_defined_time

    def test_roundtrip_nullable(self):
        schema = Schema([Attribute("x", Domain.STRING, nullable=True)])
        assert schema_from_dict(schema_to_dict(schema)).attribute("x").nullable


class TestDatabaseDump:
    @pytest.mark.parametrize("db_class,kwargs", [
        (StaticDatabase, {}),
        (RollbackDatabase, {}),
        (RollbackDatabase, {"representation": "states"}),
        (HistoricalDatabase, {}),
        (TemporalDatabase, {}),
    ])
    def test_roundtrip_preserves_all_queries(self, db_class, kwargs):
        database, _ = build_faculty(db_class, **kwargs)
        rebuilt = loads_database(dumps_database(database))
        assert rebuilt.kind is database.kind
        assert rebuilt.relation_names() == database.relation_names()
        assert rebuilt.schema("faculty") == database.schema("faculty")
        # Current snapshot always agrees.
        probe = Instant.parse("02/25/84")
        if database.supports_historical_queries:
            assert rebuilt.history("faculty") == database.history("faculty")
        if database.supports_rollback:
            for when in ("12/10/82", "06/01/83", "03/01/84"):
                assert rebuilt.rollback("faculty", when) == \
                    database.rollback("faculty", when), when

    def test_event_flag_survives(self):
        clock = SimulatedClock("01/01/80")
        database = HistoricalDatabase(clock=clock)
        database.define("promotion", Schema.of(name=Domain.STRING),
                        event=True)
        rebuilt = loads_database(dumps_database(database))
        assert rebuilt.is_event_relation("promotion")

    def test_clock_resumes_after_dump(self):
        database, clock = build_faculty(TemporalDatabase)
        rebuilt = loads_database(dumps_database(database))
        # A new commit must be strictly after the last dumped commit.
        when = rebuilt.insert("faculty", {"name": "New", "rank": "full"},
                              valid_from="06/01/84")
        assert when > Instant.parse("02/25/84")

    def test_version_checked(self):
        database, _ = build_faculty(StaticDatabase)
        data = dump_database(database)
        data["version"] = 99
        with pytest.raises(StorageError, match="version"):
            load_database(data)

    def test_unknown_kind_rejected(self):
        database, _ = build_faculty(StaticDatabase)
        data = dump_database(database)
        data["kind"] = "quantum"
        with pytest.raises(StorageError, match="kind"):
            load_database(data)

    def test_representation_preserved(self):
        database, _ = build_faculty(RollbackDatabase,
                                    representation="states")
        rebuilt = loads_database(dumps_database(database))
        assert rebuilt.representation == "states"

    def test_dump_is_valid_json(self):
        database, _ = build_faculty(TemporalDatabase)
        json.loads(dumps_database(database, indent=2))
