"""Unit tests for granularities and chronon encodings."""

import datetime as dt

import pytest

from repro.errors import GranularityError, InvalidInstantError
from repro.time.chronon import Granularity, require_same_granularity


class TestEncoding:
    def test_day_roundtrip(self):
        day = dt.date(1982, 12, 15)
        chronon = Granularity.DAY.from_date(day)
        assert Granularity.DAY.to_datetime(chronon).date() == day

    def test_day_is_toordinal(self):
        assert Granularity.DAY.from_date(dt.date(1, 1, 1)) == 1

    def test_second_roundtrip(self):
        when = dt.datetime(1982, 12, 15, 8, 30, 45)
        chronon = Granularity.SECOND.from_datetime(when)
        assert Granularity.SECOND.to_datetime(chronon) == when

    def test_minute_truncates_seconds(self):
        base = dt.datetime(1982, 12, 15, 8, 30, 0)
        with_seconds = dt.datetime(1982, 12, 15, 8, 30, 45)
        assert (Granularity.MINUTE.from_datetime(base)
                == Granularity.MINUTE.from_datetime(with_seconds))

    def test_hour_roundtrip(self):
        when = dt.datetime(2001, 7, 4, 13, 0, 0)
        chronon = Granularity.HOUR.from_datetime(when)
        assert Granularity.HOUR.to_datetime(chronon) == when

    def test_month_encoding(self):
        chronon = Granularity.MONTH.from_date(dt.date(1982, 12, 1))
        assert chronon == 1982 * 12 + 11
        assert Granularity.MONTH.to_datetime(chronon) == dt.datetime(1982, 12, 1)

    def test_month_truncates_day(self):
        assert (Granularity.MONTH.from_date(dt.date(1982, 12, 1))
                == Granularity.MONTH.from_date(dt.date(1982, 12, 31)))

    def test_year_encoding(self):
        assert Granularity.YEAR.from_date(dt.date(1982, 6, 15)) == 1982
        assert Granularity.YEAR.to_datetime(1982) == dt.datetime(1982, 1, 1)

    def test_successive_days_differ_by_one(self):
        a = Granularity.DAY.from_date(dt.date(1982, 12, 31))
        b = Granularity.DAY.from_date(dt.date(1983, 1, 1))
        assert b - a == 1

    def test_out_of_range_chronon(self):
        with pytest.raises(InvalidInstantError):
            Granularity.DAY.to_datetime(-5)


class TestFormatting:
    def test_day_format(self):
        chronon = Granularity.DAY.from_date(dt.date(1982, 12, 15))
        assert Granularity.DAY.format(chronon) == "1982-12-15"

    def test_second_format(self):
        chronon = Granularity.SECOND.from_datetime(dt.datetime(1982, 12, 15, 8, 30, 45))
        assert Granularity.SECOND.format(chronon) == "1982-12-15 08:30:45"

    def test_month_format(self):
        chronon = Granularity.MONTH.from_date(dt.date(1982, 12, 1))
        assert Granularity.MONTH.format(chronon) == "1982-12"

    def test_year_format(self):
        assert Granularity.YEAR.format(1982) == "1982"

    def test_minute_format(self):
        chronon = Granularity.MINUTE.from_datetime(dt.datetime(1982, 12, 15, 8, 30))
        assert Granularity.MINUTE.format(chronon) == "1982-12-15 08:30"

    def test_hour_format(self):
        chronon = Granularity.HOUR.from_datetime(dt.datetime(1982, 12, 15, 8, 0))
        assert Granularity.HOUR.format(chronon) == "1982-12-15 08:00"


class TestOrdering:
    def test_second_finer_than_day(self):
        assert Granularity.SECOND.finer_than(Granularity.DAY)

    def test_day_not_finer_than_itself(self):
        assert not Granularity.DAY.finer_than(Granularity.DAY)

    def test_year_coarsest(self):
        for gran in Granularity:
            assert not Granularity.YEAR.finer_than(gran)

    def test_require_same_granularity_passes(self):
        require_same_granularity(Granularity.DAY, Granularity.DAY, "test")

    def test_require_same_granularity_raises(self):
        with pytest.raises(GranularityError, match="compare"):
            require_same_granularity(Granularity.DAY, Granularity.SECOND, "compare")
