"""Property-based tests (hypothesis) for the time substrate.

These check the algebraic laws the rest of the system leans on:

- Allen's relations partition the space of period pairs (exactly one holds);
- coalescing is idempotent, order-insensitive, and preserves the chronon set;
- temporal-element algebra agrees with plain Python set algebra on chronons;
- instant arithmetic round-trips.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.time import (AllenRelation, Instant, Period, TemporalElement)
from repro.time.period import coalesce

# Keep chronons small so intersections/adjacency are common, not vanishing.
chronons = st.integers(min_value=0, max_value=40)


@st.composite
def periods(draw) -> Period:
    start = draw(chronons)
    length = draw(st.integers(min_value=1, max_value=15))
    return Period(Instant.from_chronon(start), Instant.from_chronon(start + length))


@st.composite
def elements(draw) -> TemporalElement:
    return TemporalElement(draw(st.lists(periods(), max_size=6)))


def chronon_set(element: TemporalElement) -> set:
    """The plain-Python model: the set of chronon integers covered."""
    covered = set()
    for period in element.periods:
        covered.update(range(period.start.chronon, period.end.chronon))
    return covered


def period_chronons(period: Period) -> set:
    return set(range(period.start.chronon, period.end.chronon))


class TestAllenPartition:
    @given(periods(), periods())
    def test_exactly_one_relation_holds(self, a, b):
        # allen() must be a total classification...
        relation = a.allen(b)
        assert isinstance(relation, AllenRelation)
        # ...and the inverse of the swapped classification.
        assert b.allen(a) is relation.inverse

    @given(periods(), periods())
    def test_relation_consistent_with_chronon_sets(self, a, b):
        sa, sb = period_chronons(a), period_chronons(b)
        relation = a.allen(b)
        if relation in (AllenRelation.BEFORE, AllenRelation.MEETS,
                        AllenRelation.MEETS_INV, AllenRelation.AFTER):
            assert not (sa & sb)
        else:
            assert sa & sb
        if relation is AllenRelation.EQUALS:
            assert sa == sb
        if relation is AllenRelation.DURING:
            assert sa < sb
        if relation is AllenRelation.DURING_INV:
            assert sb < sa

    @given(periods(), periods())
    def test_overlap_predicate_matches_sets(self, a, b):
        assert a.overlaps(b) == bool(period_chronons(a) & period_chronons(b))

    @given(periods(), periods())
    def test_precede_predicate_matches_sets(self, a, b):
        sa, sb = period_chronons(a), period_chronons(b)
        assert a.precedes(b) == (max(sa) < min(sb) if sa and sb else True)


class TestCoalesce:
    @given(st.lists(periods(), max_size=8))
    def test_idempotent(self, raw):
        once = coalesce(raw)
        assert coalesce(once) == once

    @given(st.lists(periods(), max_size=8))
    def test_order_insensitive(self, raw):
        assert coalesce(raw) == coalesce(list(reversed(raw)))

    @given(st.lists(periods(), max_size=8))
    def test_preserves_chronon_set(self, raw):
        merged = coalesce(raw)
        original = set().union(*(period_chronons(p) for p in raw)) if raw else set()
        assert chronon_set(TemporalElement(merged)) == original

    @given(st.lists(periods(), max_size=8))
    def test_result_is_canonical(self, raw):
        merged = coalesce(raw)
        for left, right in zip(merged, merged[1:]):
            assert left.end < right.start  # disjoint AND non-adjacent


class TestElementAlgebra:
    @given(elements(), elements())
    def test_union_models_set_union(self, a, b):
        assert chronon_set(a | b) == chronon_set(a) | chronon_set(b)

    @given(elements(), elements())
    def test_intersection_models_set_intersection(self, a, b):
        assert chronon_set(a & b) == chronon_set(a) & chronon_set(b)

    @given(elements(), elements())
    def test_difference_models_set_difference(self, a, b):
        assert chronon_set(a - b) == chronon_set(a) - chronon_set(b)

    @given(elements())
    def test_double_complement_identity(self, a):
        assert ~~a == a

    @given(elements(), elements())
    def test_de_morgan(self, a, b):
        assert ~(a | b) == (~a & ~b)

    @given(elements())
    def test_equality_is_set_equality(self, a):
        rebuilt = TemporalElement(list(a.periods))
        assert rebuilt == a

    @given(elements(), elements(), elements())
    def test_distributivity(self, a, b, c):
        assert (a & (b | c)) == ((a & b) | (a & c))


class TestInstantArithmetic:
    @given(chronons, st.integers(min_value=-30, max_value=30))
    def test_add_then_subtract_roundtrip(self, base, delta):
        start = Instant.from_chronon(base + 100)
        assert (start + delta) - delta == start

    @given(chronons, chronons)
    def test_difference_inverts_addition(self, a, b):
        ia, ib = Instant.from_chronon(a), Instant.from_chronon(b)
        assert ia + (ib - ia) == ib

    @given(chronons, chronons)
    def test_ordering_matches_integers(self, a, b):
        assert (Instant.from_chronon(a) < Instant.from_chronon(b)) == (a < b)
