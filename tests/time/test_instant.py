"""Unit tests for instants, including the paper's date literals and ∞."""

import datetime as dt

import pytest

from repro.errors import GranularityError, InvalidInstantError
from repro.time import Granularity, Instant, NEG_INF, POS_INF
from repro.time.instant import instant


class TestParsing:
    def test_paper_format(self):
        assert Instant.parse("12/15/82").to_date() == dt.date(1982, 12, 15)

    def test_paper_format_single_digit(self):
        assert Instant.parse("8/1/83").to_date() == dt.date(1983, 8, 1)

    def test_paper_format_four_digit_year(self):
        assert Instant.parse("12/15/1982").to_date() == dt.date(1982, 12, 15)

    def test_two_digit_year_pivot_past(self):
        # 77 is 1977 (the paper's examples).
        assert Instant.parse("09/01/77").to_date().year == 1977

    def test_two_digit_year_pivot_future(self):
        # 69 pivots to 2069.
        assert Instant.parse("01/01/69").to_date().year == 2069

    def test_iso_date(self):
        assert Instant.parse("1982-12-15").to_date() == dt.date(1982, 12, 15)

    def test_iso_datetime_at_second_granularity(self):
        parsed = Instant.parse("1982-12-15 08:30:45", Granularity.SECOND)
        assert parsed.to_datetime() == dt.datetime(1982, 12, 15, 8, 30, 45)

    def test_iso_datetime_without_seconds(self):
        parsed = Instant.parse("1982-12-15T08:30", Granularity.MINUTE)
        assert parsed.to_datetime() == dt.datetime(1982, 12, 15, 8, 30)

    @pytest.mark.parametrize("token", ["forever", "infinity", "∞", "INF", "+∞"])
    def test_positive_infinity_tokens(self, token):
        assert Instant.parse(token) is POS_INF

    @pytest.mark.parametrize("token", ["beginning", "-infinity", "-∞", "-inf"])
    def test_negative_infinity_tokens(self, token):
        assert Instant.parse(token) is NEG_INF

    def test_whitespace_tolerated(self):
        assert Instant.parse("  12/15/82  ") == Instant.parse("12/15/82")

    @pytest.mark.parametrize("bad", ["", "not-a-date", "13/45/82", "1982/12/15",
                                     "02/30/83", "1982-13-01"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(InvalidInstantError):
            Instant.parse(bad)


class TestCoercion:
    def test_coerce_instant_identity(self):
        original = Instant.parse("12/15/82")
        assert instant(original) is original

    def test_coerce_string(self):
        assert instant("12/15/82") == Instant.parse("12/15/82")

    def test_coerce_int_chronon(self):
        assert instant(723890).chronon == 723890

    def test_coerce_date(self):
        assert instant(dt.date(1982, 12, 15)) == Instant.parse("12/15/82")

    def test_coerce_datetime(self):
        assert instant(dt.datetime(1982, 12, 15, 10, 0)) == Instant.parse("12/15/82")

    def test_coerce_rejects_bool(self):
        with pytest.raises(InvalidInstantError):
            instant(True)

    def test_coerce_rejects_other_types(self):
        with pytest.raises(InvalidInstantError):
            instant(3.14)  # type: ignore[arg-type]


class TestOrdering:
    def test_total_order(self):
        early = Instant.parse("09/01/77")
        late = Instant.parse("12/15/82")
        assert early < late <= late < POS_INF
        assert NEG_INF < early

    def test_infinities_compare(self):
        assert NEG_INF < POS_INF
        assert not POS_INF < POS_INF
        assert POS_INF == POS_INF
        assert NEG_INF == NEG_INF
        assert POS_INF != NEG_INF

    def test_equal_instants(self):
        assert Instant.parse("12/15/82") == Instant.parse("1982-12-15")

    def test_cross_granularity_comparison_raises(self):
        day = Instant.parse("12/15/82")
        second = Instant.parse("1982-12-15 00:00:00", Granularity.SECOND)
        with pytest.raises(GranularityError):
            _ = day < second

    def test_cross_granularity_equality_is_false(self):
        day = Instant.from_chronon(5, Granularity.DAY)
        month = Instant.from_chronon(5, Granularity.MONTH)
        assert day != month

    def test_hashable(self):
        assert len({Instant.parse("12/15/82"), Instant.parse("1982-12-15"),
                    POS_INF, NEG_INF}) == 3

    def test_comparison_with_non_instant(self):
        assert Instant.parse("12/15/82") != "12/15/82"


class TestArithmetic:
    def test_add_chronons(self):
        assert Instant.parse("12/15/82") + 5 == Instant.parse("12/20/82")

    def test_subtract_chronons(self):
        assert Instant.parse("12/15/82") - 14 == Instant.parse("12/01/82")

    def test_difference(self):
        assert Instant.parse("12/15/82") - Instant.parse("12/01/82") == 14

    def test_infinity_absorbs_addition(self):
        assert POS_INF + 100 is POS_INF
        assert NEG_INF - 100 is NEG_INF

    def test_difference_with_infinity_raises(self):
        with pytest.raises(InvalidInstantError):
            _ = POS_INF - Instant.parse("12/15/82")

    def test_successor_predecessor(self):
        when = Instant.parse("12/15/82")
        assert when.successor().predecessor() == when
        assert POS_INF.successor() is POS_INF

    def test_chronon_of_infinity_raises(self):
        with pytest.raises(InvalidInstantError):
            _ = POS_INF.chronon


class TestFormatting:
    def test_isoformat(self):
        assert Instant.parse("12/15/82").isoformat() == "1982-12-15"

    def test_paper_format(self):
        assert Instant.parse("12/15/82").paper_format() == "12/15/82"

    def test_infinity_formats(self):
        assert POS_INF.isoformat() == "∞"
        assert NEG_INF.isoformat() == "-∞"
        assert POS_INF.paper_format() == "∞"

    def test_str_and_repr(self):
        when = Instant.parse("12/15/82")
        assert str(when) == "1982-12-15"
        assert "1982-12-15" in repr(when)
        assert repr(POS_INF) == "Instant(∞)"

    def test_flags(self):
        when = Instant.parse("12/15/82")
        assert when.is_finite and not when.is_pos_inf and not when.is_neg_inf
        assert POS_INF.is_pos_inf and not POS_INF.is_finite
        assert NEG_INF.is_neg_inf and not NEG_INF.is_finite
