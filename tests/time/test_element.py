"""Unit tests for temporal elements (finite unions of periods)."""

import pytest

from repro.time import Instant, Period, TemporalElement


def days(start: int, end: int) -> Period:
    return Period(Instant.from_chronon(start), Instant.from_chronon(end))


class TestConstruction:
    def test_empty(self):
        element = TemporalElement.empty()
        assert element.is_empty
        assert not element
        assert len(element) == 0

    def test_canonicalizes(self):
        element = TemporalElement([days(3, 5), days(0, 3), days(4, 8)])
        assert element.periods == (days(0, 8),)

    def test_of_mixes_periods_and_elements(self):
        inner = TemporalElement([days(0, 2)])
        element = TemporalElement.of(inner, days(5, 7))
        assert element.periods == (days(0, 2), days(5, 7))

    def test_always(self):
        assert TemporalElement.always().contains(Instant.from_chronon(12345))


class TestAccessors:
    def test_span(self):
        element = TemporalElement([days(0, 2), days(8, 10)])
        assert element.span() == days(0, 10)
        assert TemporalElement.empty().span() is None

    def test_duration_sums_pieces(self):
        element = TemporalElement([days(0, 2), days(8, 10)])
        assert element.duration() == 4

    def test_duration_unbounded_is_none(self):
        element = TemporalElement([Period("12/01/82", "forever")])
        assert element.duration() is None

    def test_membership(self):
        element = TemporalElement([days(0, 2), days(8, 10)])
        assert element.contains(Instant.from_chronon(1))
        assert not element.contains(Instant.from_chronon(5))
        assert Instant.from_chronon(9) in element

    def test_overlaps(self):
        element = TemporalElement([days(0, 2), days(8, 10)])
        assert element.overlaps(days(1, 5))
        assert not element.overlaps(days(3, 7))
        assert element.overlaps(TemporalElement([days(9, 12)]))


class TestSetAlgebra:
    def test_union(self):
        a = TemporalElement([days(0, 3)])
        b = TemporalElement([days(5, 8)])
        assert (a | b).periods == (days(0, 3), days(5, 8))

    def test_union_coalesces(self):
        a = TemporalElement([days(0, 3)])
        assert (a | days(3, 6)).periods == (days(0, 6),)

    def test_intersection(self):
        a = TemporalElement([days(0, 5), days(10, 15)])
        b = TemporalElement([days(3, 12)])
        assert (a & b).periods == (days(3, 5), days(10, 12))

    def test_intersection_empty(self):
        a = TemporalElement([days(0, 3)])
        assert (a & days(5, 8)).is_empty

    def test_difference(self):
        a = TemporalElement([days(0, 10)])
        b = TemporalElement([days(2, 4), days(6, 8)])
        assert (a - b).periods == (days(0, 2), days(4, 6), days(8, 10))

    def test_difference_everything(self):
        a = TemporalElement([days(0, 10)])
        assert (a - TemporalElement.always()).is_empty

    def test_complement_roundtrip(self):
        a = TemporalElement([days(0, 10)])
        assert ~~a == a

    def test_complement_disjoint_from_original(self):
        a = TemporalElement([days(0, 10), days(20, 30)])
        assert (a & ~a).is_empty
        assert (a | ~a) == TemporalElement.always()


class TestEquality:
    def test_equality_is_chronon_set_equality(self):
        assert (TemporalElement([days(0, 3), days(3, 6)])
                == TemporalElement([days(0, 6)]))

    def test_hashable(self):
        assert len({TemporalElement([days(0, 6)]),
                    TemporalElement([days(0, 3), days(3, 6)])}) == 1

    def test_iteration_order(self):
        element = TemporalElement([days(8, 10), days(0, 2)])
        assert list(element) == [days(0, 2), days(8, 10)]

    def test_str(self):
        assert str(TemporalElement.empty()) == "{}"
        element = TemporalElement([Period("01/01/80", "01/05/80"),
                                   Period("02/01/80", "02/05/80")])
        assert "," in str(element)
