"""Unit tests for clocks, especially the monotone transaction clock."""

import threading

import pytest

from repro.errors import ClockError
from repro.time import (Granularity, Instant, SimulatedClock, SystemClock,
                        TransactionClock)


class TestSystemClock:
    def test_reads_today(self):
        import datetime as dt
        clock = SystemClock(Granularity.DAY)
        assert clock.current().to_date() == dt.date.today()

    def test_granularity(self):
        assert SystemClock(Granularity.SECOND).granularity is Granularity.SECOND


class TestSimulatedClock:
    def test_starts_where_told(self):
        clock = SimulatedClock("01/01/80")
        assert clock.current() == Instant.parse("01/01/80")

    def test_set_forward(self):
        clock = SimulatedClock("01/01/80")
        clock.set("06/15/80")
        assert clock.current() == Instant.parse("06/15/80")

    def test_set_same_instant_is_allowed(self):
        clock = SimulatedClock("01/01/80")
        clock.set("01/01/80")
        assert clock.current() == Instant.parse("01/01/80")

    def test_set_backwards_raises(self):
        clock = SimulatedClock("06/15/80")
        with pytest.raises(ClockError, match="backwards"):
            clock.set("01/01/80")

    def test_set_infinity_raises(self):
        clock = SimulatedClock("01/01/80")
        with pytest.raises(ClockError):
            clock.set("forever")

    def test_advance(self):
        clock = SimulatedClock("01/01/80")
        clock.advance(14)
        assert clock.current() == Instant.parse("01/15/80")

    def test_advance_negative_raises(self):
        clock = SimulatedClock("01/01/80")
        with pytest.raises(ClockError):
            clock.advance(-1)

    def test_must_start_finite(self):
        with pytest.raises(ClockError):
            SimulatedClock("forever")


class TestTransactionClock:
    def test_strictly_monotone_on_stalled_source(self):
        txn_clock = TransactionClock(SimulatedClock("01/01/80"))
        readings = [txn_clock.tick() for _ in range(5)]
        assert all(a < b for a, b in zip(readings, readings[1:]))

    def test_follows_advancing_source(self):
        source = SimulatedClock("01/01/80")
        txn_clock = TransactionClock(source)
        first = txn_clock.tick()
        source.set("03/01/80")
        second = txn_clock.tick()
        assert second == Instant.parse("03/01/80")
        assert first < second

    def test_peek_does_not_consume(self):
        txn_clock = TransactionClock(SimulatedClock("01/01/80"))
        peeked = txn_clock.peek()
        assert txn_clock.tick() == peeked
        assert txn_clock.last == peeked

    def test_last_starts_none(self):
        assert TransactionClock(SimulatedClock("01/01/80")).last is None

    def test_current_exposes_raw_reading(self):
        source = SimulatedClock("01/01/80")
        txn_clock = TransactionClock(source)
        txn_clock.tick()
        txn_clock.tick()
        # tick() bumped past the stalled source, but current() is raw.
        assert txn_clock.current() == Instant.parse("01/01/80")

    def test_thread_safety_no_duplicates(self):
        txn_clock = TransactionClock(SimulatedClock("01/01/80"))
        readings = []
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                reading = txn_clock.tick()
                with lock:
                    readings.append(reading)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(readings) == 200
        assert len(set(readings)) == 200
