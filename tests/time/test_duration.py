"""Unit tests for durations."""

import pytest

from repro.errors import GranularityError
from repro.time import Duration, Granularity, Instant


class TestConstruction:
    def test_days(self):
        assert Duration.days(5).chronons == 5
        assert Duration.days(5).granularity is Granularity.DAY

    def test_between(self):
        gap = Duration.between(Instant.parse("12/01/82"), Instant.parse("12/15/82"))
        assert gap == Duration.days(14)

    def test_between_negative(self):
        gap = Duration.between(Instant.parse("12/15/82"), Instant.parse("12/01/82"))
        assert gap.chronons == -14

    def test_rejects_non_integer(self):
        with pytest.raises(GranularityError):
            Duration(1.5)  # type: ignore[arg-type]

    def test_rejects_bool(self):
        with pytest.raises(GranularityError):
            Duration(True)  # type: ignore[arg-type]


class TestArithmetic:
    def test_add_durations(self):
        assert Duration.days(3) + Duration.days(4) == Duration.days(7)

    def test_add_to_instant(self):
        assert Duration.days(14) + Instant.parse("12/01/82") == Instant.parse("12/15/82")
        assert Instant.parse("12/01/82") + Duration.days(14) == Instant.parse("12/15/82")

    def test_subtract(self):
        assert Duration.days(7) - Duration.days(3) == Duration.days(4)

    def test_negate(self):
        assert -Duration.days(3) == Duration.days(-3)

    def test_multiply(self):
        assert Duration.days(3) * 4 == Duration.days(12)
        assert 4 * Duration.days(3) == Duration.days(12)

    def test_cross_granularity_raises(self):
        with pytest.raises(GranularityError):
            Duration.days(1) + Duration(1, Granularity.SECOND)


class TestComparison:
    def test_ordering(self):
        assert Duration.days(3) < Duration.days(4) <= Duration.days(4)

    def test_hash(self):
        assert len({Duration.days(3), Duration.days(3), Duration.days(4)}) == 2

    def test_str(self):
        assert str(Duration.days(1)) == "1 day"
        assert str(Duration.days(5)) == "5 days"
