"""Unit tests for periods, Allen's relations and the TQuel predicates."""

import pytest

from repro.errors import InvalidPeriodError
from repro.time import AllenRelation, Instant, NEG_INF, POS_INF, Period
from repro.time.period import coalesce


def days(start: int, end: int) -> Period:
    """Shorthand: a period over raw day chronons."""
    return Period(Instant.from_chronon(start), Instant.from_chronon(end))


class TestConstruction:
    def test_from_literals(self):
        period = Period("12/01/82", "12/15/82")
        assert period.start == Instant.parse("12/01/82")
        assert period.end == Instant.parse("12/15/82")

    def test_open_ended(self):
        period = Period("12/01/82", "forever")
        assert period.end is POS_INF
        assert period.duration() is None

    def test_always(self):
        period = Period.always()
        assert period.start is NEG_INF and period.end is POS_INF

    def test_empty_rejected(self):
        with pytest.raises(InvalidPeriodError):
            Period("12/01/82", "12/01/82")

    def test_reversed_rejected(self):
        with pytest.raises(InvalidPeriodError):
            Period("12/15/82", "12/01/82")

    def test_at(self):
        period = Period.at("12/01/82")
        assert period.is_instantaneous
        assert period.contains("12/01/82")
        assert not period.contains("12/02/82")

    def test_from_inclusive(self):
        period = Period.from_inclusive("12/01/82", "12/15/82")
        assert period.contains("12/15/82")
        assert not period.contains("12/16/82")

    def test_from_inclusive_with_infinity(self):
        period = Period.from_inclusive("12/01/82", "forever")
        assert period.end is POS_INF

    def test_duration(self):
        assert days(10, 15).duration() == 5

    def test_last(self):
        assert days(10, 15).last == Instant.from_chronon(14)


class TestMembership:
    def test_half_open(self):
        period = Period("12/01/82", "12/15/82")
        assert period.contains("12/01/82")
        assert period.contains("12/14/82")
        assert not period.contains("12/15/82")

    def test_contains_period(self):
        assert days(0, 10).contains_period(days(2, 5))
        assert days(0, 10).contains_period(days(0, 10))
        assert not days(0, 10).contains_period(days(5, 11))

    def test_dunder_contains(self):
        assert Instant.from_chronon(3) in days(0, 10)
        assert days(2, 4) in days(0, 10)

    def test_chronons_iteration(self):
        assert [c.chronon for c in days(3, 6).chronons()] == [3, 4, 5]

    def test_chronons_unbounded_raises(self):
        with pytest.raises(InvalidPeriodError):
            list(Period.always().chronons())


class TestAllenRelations:
    # One canonical example of each of the thirteen relations.
    CASES = [
        (days(0, 2), days(3, 5), AllenRelation.BEFORE),
        (days(0, 3), days(3, 5), AllenRelation.MEETS),
        (days(0, 4), days(2, 6), AllenRelation.OVERLAPS),
        (days(0, 3), days(0, 6), AllenRelation.STARTS),
        (days(2, 4), days(0, 6), AllenRelation.DURING),
        (days(4, 6), days(0, 6), AllenRelation.FINISHES),
        (days(0, 6), days(0, 6), AllenRelation.EQUALS),
        (days(0, 6), days(4, 6), AllenRelation.FINISHES_INV),
        (days(0, 6), days(2, 4), AllenRelation.DURING_INV),
        (days(0, 6), days(0, 3), AllenRelation.STARTS_INV),
        (days(2, 6), days(0, 4), AllenRelation.OVERLAPS_INV),
        (days(3, 5), days(0, 3), AllenRelation.MEETS_INV),
        (days(3, 5), days(0, 2), AllenRelation.AFTER),
    ]

    @pytest.mark.parametrize("a, b, expected", CASES)
    def test_classification(self, a, b, expected):
        assert a.allen(b) is expected

    @pytest.mark.parametrize("a, b, expected", CASES)
    def test_inverse(self, a, b, expected):
        assert b.allen(a) is expected.inverse

    def test_all_thirteen_covered(self):
        assert {expected for _, _, expected in self.CASES} == set(AllenRelation)

    def test_with_infinite_endpoints(self):
        open_ended = Period("12/01/82", "forever")
        earlier = Period("09/01/77", "12/01/82")
        assert earlier.allen(open_ended) is AllenRelation.MEETS
        # Equal (infinite) ends with an earlier start: finished-by.
        assert Period.always().allen(open_ended) is AllenRelation.FINISHES_INV


class TestTQuelPredicates:
    def test_overlap(self):
        assert days(0, 4).overlaps(days(3, 6))
        assert not days(0, 3).overlaps(days(3, 6))  # meeting shares no chronon

    def test_precede_allows_meeting(self):
        assert days(0, 3).precedes(days(3, 6))
        assert days(0, 2).precedes(days(3, 6))
        assert not days(0, 4).precedes(days(3, 6))

    def test_start_of(self):
        assert days(3, 9).start_of() == days(3, 4)

    def test_end_of(self):
        assert days(3, 9).end_of() == days(8, 9)

    def test_start_of_unbounded_raises(self):
        with pytest.raises(InvalidPeriodError):
            Period.always().start_of()

    def test_end_of_unbounded_raises(self):
        with pytest.raises(InvalidPeriodError):
            Period("12/01/82", "forever").end_of()

    def test_extend(self):
        assert days(0, 3).extend(days(7, 9)) == days(0, 9)
        assert days(7, 9).extend(days(0, 3)) == days(0, 9)


class TestSetOperations:
    def test_intersect(self):
        assert days(0, 5).intersect(days(3, 8)) == days(3, 5)
        assert days(0, 3).intersect(days(3, 8)) is None

    def test_union_overlapping(self):
        assert days(0, 5).union(days(3, 8)) == days(0, 8)

    def test_union_meeting(self):
        assert days(0, 3).union(days(3, 8)) == days(0, 8)

    def test_union_disjoint_is_none(self):
        assert days(0, 2).union(days(5, 8)) is None

    def test_difference_middle(self):
        assert days(0, 10).difference(days(3, 6)) == [days(0, 3), days(6, 10)]

    def test_difference_left(self):
        assert days(0, 10).difference(days(0, 4)) == [days(4, 10)]

    def test_difference_covering(self):
        assert days(3, 6).difference(days(0, 10)) == []

    def test_difference_disjoint(self):
        assert days(0, 3).difference(days(5, 8)) == [days(0, 3)]

    def test_clamp(self):
        assert days(0, 10).clamp(days(5, 20)) == days(5, 10)


class TestCoalesce:
    def test_merges_overlapping_and_adjacent(self):
        merged = coalesce([days(5, 8), days(0, 3), days(3, 5), days(20, 25)])
        assert merged == [days(0, 8), days(20, 25)]

    def test_idempotent(self):
        merged = coalesce([days(0, 3), days(10, 12)])
        assert coalesce(merged) == merged

    def test_empty(self):
        assert coalesce([]) == []


class TestDunder:
    def test_equality_and_hash(self):
        assert days(0, 3) == days(0, 3)
        assert len({days(0, 3), days(0, 3), days(0, 4)}) == 2

    def test_ordering(self):
        assert sorted([days(5, 8), days(0, 3), days(0, 2)]) == [
            days(0, 2), days(0, 3), days(5, 8)]

    def test_str(self):
        assert str(Period("12/01/82", "forever")) == "[1982-12-01, ∞)"
