"""Unit tests for SLO health: objectives, error budgets, lazy judging."""

import pytest

from repro.obs.slo import (DEFAULT_POLICY, OP_CLASSES, NullSloTracker,
                           Objective, SloPolicy, SloTracker)


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="latency"):
            Objective(latency_s=0.0, budget=0.1)
        with pytest.raises(ValueError, match="budget"):
            Objective(latency_s=1.0, budget=1.0)
        with pytest.raises(ValueError, match="budget"):
            Objective(latency_s=1.0, budget=-0.1)

    def test_default_policy_covers_every_op_class(self):
        for op_class in OP_CLASSES:
            assert DEFAULT_POLICY.objective(op_class) is not None


class TestHealth:
    def policy(self, latency_s=0.1, budget=0.25):
        return SloPolicy({"read": Objective(latency_s, budget)})

    def test_within_budget_is_healthy(self):
        tracker = SloTracker()
        for latency in (0.01, 0.02, 0.03, 0.2):  # 1 of 4 misses = 25%
            tracker.record("read", latency)
        health = tracker.health(self.policy(budget=0.25))
        assert health["ok"] is True
        entry = health["classes"]["read"]
        assert entry["violations"] == 1
        assert entry["burn"] == pytest.approx(0.25)
        assert entry["ok"] is True

    def test_burn_beyond_budget_is_unhealthy(self):
        tracker = SloTracker()
        for latency in (0.2, 0.2, 0.01, 0.01):  # 50% miss vs 25% budget
            tracker.record("read", latency)
        health = tracker.health(self.policy(budget=0.25))
        assert health["ok"] is False
        assert health["classes"]["read"]["ok"] is False
        assert health["classes"]["read"]["burn"] == pytest.approx(0.5)

    def test_zero_sample_objective_is_healthy_and_omits_quantiles(self):
        health = SloTracker().health(self.policy())
        entry = health["classes"]["read"]
        assert health["ok"] is True
        assert entry["count"] == 0 and entry["violations"] == 0
        # No samples -> no latency stats; consumers must use .get().
        assert "p50" not in entry and "p95" not in entry and \
            "max" not in entry

    def test_class_without_objective_is_reported_but_never_unhealthy(self):
        tracker = SloTracker()
        tracker.record("bulk_load", 99.0)
        health = tracker.health(self.policy())
        entry = health["classes"]["bulk_load"]
        assert entry["objective_s"] is None
        assert entry["ok"] is True
        assert health["ok"] is True

    def test_window_slides_old_misses_forgiven(self):
        tracker = SloTracker(window=4)
        for _ in range(4):
            tracker.record("read", 9.0)  # all miss
        assert tracker.health(self.policy())["ok"] is False
        for _ in range(4):
            tracker.record("read", 0.01)  # pushes the misses out
        assert tracker.health(self.policy())["ok"] is True

    def test_same_window_rejudged_under_a_stricter_policy(self):
        tracker = SloTracker()
        for latency in (0.05, 0.06):
            tracker.record("read", latency)
        assert tracker.health(self.policy(latency_s=0.1))["ok"] is True
        assert tracker.health(self.policy(latency_s=0.055,
                                          budget=0.1))["ok"] is False

    def test_quantiles_reported_with_samples(self):
        tracker = SloTracker()
        for latency in (0.01, 0.02, 0.03):
            tracker.record("read", latency)
        entry = tracker.health(self.policy())["classes"]["read"]
        assert entry["p50"] == pytest.approx(0.02)
        assert entry["max"] == pytest.approx(0.03)

    def test_reset_and_accessors(self):
        tracker = SloTracker(window=8)
        tracker.record("read", 0.01)
        assert tracker.classes() == ["read"]
        assert tracker.samples("read") == [0.01]
        assert tracker.window == 8
        tracker.reset()
        assert tracker.classes() == []

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SloTracker(window=0)


class TestNullSloTracker:
    def test_records_nothing_and_stays_healthy(self):
        tracker = NullSloTracker()
        tracker.record("read", 99.0)
        assert tracker.classes() == []
        assert tracker.health()["ok"] is True
        assert tracker.enabled is False
