"""Unit tests for the exporters: OpenMetrics text and bench-diffing."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.export import bench_diff, to_openmetrics


class TestOpenMetrics:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.counter("commit.batches").inc(3)
        registry.gauge("journal.bytes").set(128)
        for value in (0.5, 1.5):
            registry.histogram("commit.seconds").observe(value)
        return registry.snapshot()

    def test_counters_render_as_total(self):
        text = to_openmetrics(self.snapshot())
        assert "# TYPE repro_commit_batches counter" in text
        assert "repro_commit_batches_total 3" in text

    def test_gauges_render_plain(self):
        text = to_openmetrics(self.snapshot())
        assert "# TYPE repro_journal_bytes gauge" in text
        assert "repro_journal_bytes 128" in text

    def test_histograms_render_as_summaries(self):
        text = to_openmetrics(self.snapshot())
        assert "# TYPE repro_commit_seconds summary" in text
        assert 'repro_commit_seconds{quantile="0.5"} 1.0' in text
        assert "repro_commit_seconds_count 2" in text
        assert "repro_commit_seconds_sum 2.0" in text

    def test_ends_with_eof_marker(self):
        assert to_openmetrics(self.snapshot()).endswith("# EOF\n")

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("shard.0.commits").inc()
        text = to_openmetrics(registry.snapshot())
        assert "repro_shard_0_commits_total 1" in text

    def test_custom_prefix(self):
        text = to_openmetrics(self.snapshot(), prefix="db")
        assert "db_commit_batches_total 3" in text

    def test_empty_snapshot_is_just_eof(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        assert to_openmetrics(empty) == "# EOF\n"


class TestBenchDiff:
    def test_no_change_is_ok(self):
        report = {"ingest": {"throughput_tps": 100.0}}
        result = bench_diff(report, report)
        assert result == {"compared": 1, "regressions": 0, "ok": True,
                          "tolerance": 0.5, "rows": result["rows"]}
        assert result["rows"][0]["change"] == 0.0

    def test_throughput_drop_is_a_regression(self):
        baseline = {"ingest": {"throughput_tps": 100.0}}
        fresh = {"ingest": {"throughput_tps": 40.0}}  # 60% worse
        result = bench_diff(baseline, fresh, tolerance=0.5)
        assert result["ok"] is False
        (row,) = result["rows"]
        assert row["metric"] == "ingest.throughput_tps"
        assert row["direction"] == "higher"
        assert row["change"] == pytest.approx(0.6)
        assert row["regression"] is True

    def test_latency_rise_is_a_regression(self):
        baseline = {"commit": {"per_commit_us": 10.0}}
        fresh = {"commit": {"per_commit_us": 30.0}}  # 200% worse
        result = bench_diff(baseline, fresh, tolerance=0.5)
        assert result["ok"] is False
        assert result["rows"][0]["direction"] == "lower"
        assert result["rows"][0]["change"] == pytest.approx(2.0)

    def test_improvement_is_negative_change_and_ok(self):
        baseline = {"commit": {"per_commit_us": 30.0}}
        fresh = {"commit": {"per_commit_us": 10.0}}
        result = bench_diff(baseline, fresh)
        assert result["ok"] is True
        assert result["rows"][0]["change"] < 0.0

    def test_tolerance_forgives_within_bound(self):
        baseline = {"x": {"speedup": 4.0}}
        fresh = {"x": {"speedup": 3.0}}  # 25% worse
        assert bench_diff(baseline, fresh, tolerance=0.5)["ok"] is True
        assert bench_diff(baseline, fresh, tolerance=0.1)["ok"] is False

    def test_non_directional_leaves_are_ignored(self):
        baseline = {"committed": 100, "wall_s": 1.0}
        fresh = {"committed": 1, "wall_s": 99.0}
        assert bench_diff(baseline, fresh)["compared"] == 0

    def test_metrics_missing_from_either_side_are_skipped(self):
        baseline = {"a": {"throughput_tps": 10.0}}
        fresh = {"b": {"throughput_tps": 10.0}}
        assert bench_diff(baseline, fresh)["compared"] == 0

    def test_zero_baseline_is_skipped(self):
        baseline = {"a": {"throughput_tps": 0.0}}
        fresh = {"a": {"throughput_tps": 5.0}}
        assert bench_diff(baseline, fresh)["compared"] == 0

    def test_rows_sorted_worst_first(self):
        baseline = {"a": {"throughput_tps": 100.0},
                    "b": {"per_commit_us": 10.0}}
        fresh = {"a": {"throughput_tps": 90.0},     # 10% worse
                 "b": {"per_commit_us": 25.0}}      # 150% worse
        rows = bench_diff(baseline, fresh)["rows"]
        assert [row["metric"] for row in rows] == \
            ["b.per_commit_us", "a.throughput_tps"]

    def test_nested_lists_are_walked(self):
        baseline = {"points": [{"throughput_tps": 10.0}]}
        fresh = {"points": [{"throughput_tps": 2.0}]}
        result = bench_diff(baseline, fresh)
        assert result["rows"][0]["metric"] == "points[0].throughput_tps"
        assert result["ok"] is False
