"""Integration: the instrumented engine layers, driven by the paper's data."""

import pytest

from repro import obs
from repro.core import StaticDatabase, TemporalDatabase
from repro.errors import TransactionStateError
from repro.tquel import Session

from tests.conftest import build_faculty


class TestCommitInstrumentation:
    def test_faculty_history_counts(self):
        with obs.recording() as inst:
            database, _ = build_faculty(TemporalDatabase)
        counters = inst.metrics.snapshot()["counters"]
        # define + six DML transactions.
        assert counters["commit.batches"] == 7
        assert counters["commit.operations"] == 7
        # Tom's correction, Merrie's promotion, Mike's departure each
        # close a row; the three inserts open one each, and each of the
        # two replaces plus the postactive delete opens a superseding
        # version — Figure 8's seven recorded rows.
        assert counters["commit.rows_closed"] == 3
        assert counters["commit.rows_opened"] == 7
        assert "commit.fallback_naive" not in counters
        summary = inst.metrics.snapshot()["histograms"]["commit.apply_seconds"]
        assert summary["count"] == 7
        assert summary["max"] > 0.0

    def test_commit_spans_recorded(self):
        with obs.recording() as inst:
            build_faculty(TemporalDatabase)
        aggregate = inst.tracer.aggregate()
        assert aggregate["commit.apply"]["count"] == 7

    def test_failed_commit_counted(self):
        from repro.txn.transaction import Operation
        with obs.recording() as inst:
            database, _ = build_faculty(TemporalDatabase)
            # A duplicate define sneaked past the front-door check fails
            # inside the applier and must be counted there.
            op = Operation("define", "faculty",
                           {"schema": database.schema("faculty"),
                            "constraints": (), "event": False})
            with pytest.raises(Exception):
                database.manager.run([op])
        counters = inst.metrics.snapshot()["counters"]
        assert counters["commit.failed"] == 1


class TestTransactionInstrumentation:
    def test_begin_commit_counts_and_active_gauge(self):
        with obs.recording() as inst:
            database, _ = build_faculty(StaticDatabase)
        snapshot = inst.metrics.snapshot()
        assert snapshot["counters"]["txn.begin"] == 7
        assert snapshot["counters"]["txn.commit"] == 7
        assert "txn.abort" not in snapshot["counters"]
        assert snapshot["gauges"]["txn.active"] == 0

    def test_abort_counts(self):
        with obs.recording() as inst:
            database, _ = build_faculty(StaticDatabase)
            txn = database.begin()
            assert inst.metrics.gauge("txn.active").value == 1
            txn.abort()
        snapshot = inst.metrics.snapshot()
        assert snapshot["counters"]["txn.abort"] == 1
        assert snapshot["gauges"]["txn.active"] == 0

    def test_failed_commit_is_an_abort(self):
        with obs.recording() as inst:
            database, _ = build_faculty(StaticDatabase)
            txn = database.begin()
            from repro.txn.transaction import Operation
            txn.add(Operation("define", "faculty",
                              {"schema": database.schema("faculty"),
                               "constraints": (), "event": False}))
            with pytest.raises(Exception):
                txn.commit()
        snapshot = inst.metrics.snapshot()
        assert snapshot["counters"]["txn.abort"] == 1
        assert snapshot["gauges"]["txn.active"] == 0


class TestIndexCacheInstrumentation:
    def test_registry_mirrors_plain_counters(self):
        """Regression vs. the PR 1 cache tests: both views must agree."""
        with obs.recording() as inst:
            database, clock = build_faculty(TemporalDatabase)
            database.rollback("faculty", "12/10/82")  # miss: builds
            database.rollback("faculty", "12/10/82")  # hit
            clock.set("06/01/85")
            database.insert("faculty", {"name": "New", "rank": "assistant"},
                            valid_from="06/01/85")
            database.rollback("faculty", "12/10/82")  # hit after patch
        cache = database.index_cache
        counters = inst.metrics.snapshot()["counters"]
        assert cache.hits >= 1
        assert counters["index.cache.hits"] == cache.hits
        assert counters["index.cache.misses"] == cache.misses
        assert counters["index.cache.patches"] == cache.incremental_updates
        assert cache.incremental_updates >= 1

    def test_tree_size_gauge_tracks_history(self):
        with obs.recording() as inst:
            database, _ = build_faculty(TemporalDatabase)
            database.rollback("faculty", "12/10/82")
        gauges = inst.metrics.snapshot()["gauges"]
        # Figure 8: five recorded versions of the faculty relation.
        assert gauges["index.tree.size.faculty.bitemporal"] == \
            len(database.temporal("faculty"))


class TestTQuelInstrumentation:
    def test_phase_spans_nest_under_statement(self):
        with obs.recording() as inst:
            database, _ = build_faculty(TemporalDatabase)
            session = Session(database)
            session.execute("range of f is faculty")
            session.execute('retrieve (f.rank) where f.name = "Merrie"')
        spans = inst.tracer.spans()
        statements = [s for s in spans if s.name == "tquel.statement"]
        assert len(statements) == 2
        retrieve = statements[-1]
        phases = {s.name for s in spans if s.parent_id == retrieve.span_id}
        assert phases == {"tquel.lex", "tquel.parse", "tquel.analyze",
                          "tquel.evaluate"}

    def test_candidate_and_emit_counters(self):
        with obs.recording() as inst:
            database, _ = build_faculty(TemporalDatabase)
            session = Session(database)
            session.execute("range of f is faculty")
            session.execute('retrieve (f.rank) where f.name = "Merrie"')
        counters = inst.metrics.snapshot()["counters"]
        assert counters["tquel.statements"] == 2
        assert counters["tquel.candidates_enumerated"] >= \
            counters["tquel.rows_emitted"] >= 1

    def test_explain_reports_phases_and_index_decision(self):
        database, _ = build_faculty(TemporalDatabase)
        session = Session(database)
        session.execute("range of f is faculty")
        plan = session.explain_plan(
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"')
        assert list(plan["phases"]) == ["lex", "parse", "analyze", "plan"]
        assert all(duration >= 0.0 for duration in plan["phases"].values())
        assert plan["variables"]["f"]["index"] == \
            "bitemporal index: transaction-time stab"
        text = session.explain(
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"')
        assert "access path: bitemporal index: transaction-time stab" in text
        assert "phases: lex" in text

    def test_explain_scan_when_index_disabled(self):
        database, _ = build_faculty(TemporalDatabase, index=False)
        session = Session(database)
        session.execute("range of f is faculty")
        plan = session.explain_plan('retrieve (f.rank) as of "12/10/82"')
        assert plan["variables"]["f"]["index"] == "scan (index disabled)"

    def test_explain_leaves_global_registry_untouched(self):
        with obs.recording() as inst:
            database, _ = build_faculty(TemporalDatabase)
            before = dict(inst.metrics.snapshot()["counters"])
            session = Session(database)
            session.execute("range of f is faculty")
            before["tquel.statements"] = \
                inst.metrics.counter("tquel.statements").value
            session.explain_plan('retrieve (f.rank)')
            after = inst.metrics.snapshot()["counters"]
        # explain runs under a private instrumentation: no new counters.
        assert after.get("tquel.statements") == before["tquel.statements"]


class TestStatsAPI:
    def test_db_stats_reads_current_instrumentation(self):
        with obs.recording():
            database, _ = build_faculty(TemporalDatabase)
            stats = database.stats()
            assert stats["instrumentation_enabled"] is True
            assert stats["metrics"]["counters"]["commit.batches"] == 7
            assert stats["spans"]["commit.apply"]["count"] == 7
        disabled = database.stats()
        assert disabled["instrumentation_enabled"] is False
        assert disabled["metrics"]["counters"] == {}

    def test_workload_driver_records(self):
        from repro.workload import FacultyWorkload, apply_workload
        from repro.time import SimulatedClock
        with obs.recording() as inst:
            database = TemporalDatabase(clock=SimulatedClock("01/01/79"))
            transactions = apply_workload(database,
                                          FacultyWorkload(people=4, seed=3))
        snapshot = inst.metrics.snapshot()
        assert snapshot["counters"]["workload.transactions"] == transactions
        assert snapshot["counters"]["workload.steps"] >= transactions
        assert inst.tracer.aggregate()["workload.apply"]["count"] == 1
