"""Source hygiene: the monotonic clock is confined to ``repro.obs``.

Mirrors the CI grep guard: every ``time.perf_counter`` call site inside
``src/repro`` must live in ``src/repro/obs/`` — everything else times
itself through a histogram timer or a tracer span, so enabling or
disabling observability never changes what the engine measures.
"""

import pathlib

import repro

SRC_REPRO = pathlib.Path(repro.__file__).parent


def test_perf_counter_only_inside_obs():
    offenders = []
    for path in sorted(SRC_REPRO.rglob("*.py")):
        relative = path.relative_to(SRC_REPRO)
        if relative.parts[0] == "obs":
            continue
        if "perf_counter" in path.read_text(encoding="utf-8"):
            offenders.append(str(relative))
    assert not offenders, (
        f"time.perf_counter used outside repro.obs: {offenders}")
