"""Unit tests for the tracer: nesting, ordering, the ring buffer, export."""

import io
import json

import pytest

from repro.obs import Tracer


class TestNesting:
    def test_child_records_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id != second.span_id

    def test_completion_order_children_before_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans()] == ["inner", "outer"]

    def test_top_level_after_nested_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second") as second:
            pass
        assert second.parent_id is None


class TestSpanContents:
    def test_attributes_at_open_and_mid_flight(self):
        tracer = Tracer()
        with tracer.span("work", kind="demo") as span:
            span.set(rows=3)
        assert span.attributes == {"kind": "demo", "rows": 3}

    def test_duration_is_monotonic_seconds(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            sum(range(1000))
        assert span.duration >= 0.0

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError"


class TestRingBuffer:
    def test_old_spans_fall_off(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]
        assert len(tracer) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.spans() == []


class TestAggregateAndExport:
    def test_aggregate_counts_and_totals(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        aggregate = tracer.aggregate()
        assert aggregate["repeated"]["count"] == 3
        assert aggregate["repeated"]["total_s"] >= \
            aggregate["repeated"]["max_s"]

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", kind="demo"):
            with tracer.span("inner"):
                pass
        buffer = io.StringIO()
        count = tracer.export_jsonl(buffer)
        assert count == 2
        rows = [json.loads(line) for line in
                buffer.getvalue().splitlines()]
        assert [row["name"] for row in rows] == ["inner", "outer"]
        by_name = {row["name"]: row for row in rows}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"kind": "demo"}

    def test_jsonl_to_path(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        target = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(target)) == 1
        assert json.loads(target.read_text().strip())["name"] == "s"
