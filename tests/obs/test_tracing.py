"""Unit tests for the tracer: nesting, ordering, the ring buffer, export."""

import io
import json
import threading

import pytest

from repro.obs import Tracer
from repro.obs import context as trace_context
from repro.obs.context import TraceContext, from_wire


class TestNesting:
    def test_child_records_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id != second.span_id

    def test_completion_order_children_before_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans()] == ["inner", "outer"]

    def test_top_level_after_nested_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second") as second:
            pass
        assert second.parent_id is None


class TestSpanContents:
    def test_attributes_at_open_and_mid_flight(self):
        tracer = Tracer()
        with tracer.span("work", kind="demo") as span:
            span.set(rows=3)
        assert span.attributes == {"kind": "demo", "rows": 3}

    def test_duration_is_monotonic_seconds(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            sum(range(1000))
        assert span.duration >= 0.0

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError"


class TestRingBuffer:
    def test_old_spans_fall_off(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]
        assert len(tracer) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.spans() == []


class TestEviction:
    def test_dropped_spans_are_counted(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert tracer.spans_dropped == 2
        assert len(tracer) == 3

    def test_no_drops_below_capacity(self):
        tracer = Tracer(capacity=8)
        with tracer.span("s"):
            pass
        assert tracer.spans_dropped == 0

    def test_reset_clears_the_drop_count(self):
        tracer = Tracer(capacity=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        tracer.reset()
        assert tracer.spans_dropped == 0


class TestPropagation:
    """The three parenting sources: explicit > stack > ambient context."""

    def test_trace_id_flows_to_children(self):
        tracer = Tracer()
        with tracer.span("root", trace_id="txn-1"):
            with tracer.span("child") as child:
                pass
        assert child.trace_id == "txn-1"

    def test_explicit_parent_beats_the_stack(self):
        tracer = Tracer()
        with tracer.span("elsewhere", trace_id="txn-a") as other:
            pass
        with tracer.span("open", trace_id="txn-b"):
            with tracer.span("adopted", parent=other) as adopted:
                pass
        assert adopted.parent_id == other.span_id
        assert adopted.trace_id == "txn-a"

    def test_ambient_context_parents_when_the_stack_is_empty(self):
        tracer = Tracer()
        with trace_context.attach(TraceContext("txn-9", 77)):
            with tracer.span("downstream") as span:
                pass
        assert span.parent_id == 77
        assert span.trace_id == "txn-9"

    def test_trace_id_override_starts_a_new_trace(self):
        tracer = Tracer()
        with tracer.span("outer", trace_id="txn-old"):
            with tracer.span("fresh", trace_id="txn-new") as fresh:
                pass
        assert fresh.trace_id == "txn-new"

    def test_span_context_is_a_handoff(self):
        tracer = Tracer()
        with tracer.span("root", trace_id="txn-5") as root:
            context = root.context
        assert context == TraceContext("txn-5", root.span_id)

    def test_cross_thread_handoff_over_the_wire(self):
        # The replication shape: the committing thread serializes its
        # span's context into the message; the replica's pump thread
        # rebuilds it and parents its apply span under the ship span.
        tracer = Tracer()
        with tracer.span("replication.ship", trace_id="txn-3") as ship:
            wire = ship.context.to_wire()

        def apply_side():
            with tracer.span("replication.apply",
                             parent=from_wire(wire)):
                pass

        thread = threading.Thread(target=apply_side)
        thread.start()
        thread.join()
        by_name = {span.name: span for span in tracer.spans()}
        applied = by_name["replication.apply"]
        assert applied.parent_id == ship.span_id
        assert applied.trace_id == "txn-3"

    def test_threads_do_not_share_open_span_stacks(self):
        tracer = Tracer()
        seen = {}

        def other_thread():
            with tracer.span("other") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main"):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["parent"] is None  # main's stack is invisible there


class TestAggregateAndExport:
    def test_aggregate_counts_and_totals(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        aggregate = tracer.aggregate()
        assert aggregate["repeated"]["count"] == 3
        assert aggregate["repeated"]["total_s"] >= \
            aggregate["repeated"]["max_s"]

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", kind="demo"):
            with tracer.span("inner"):
                pass
        buffer = io.StringIO()
        count = tracer.export_jsonl(buffer)
        assert count == 2
        rows = [json.loads(line) for line in
                buffer.getvalue().splitlines()]
        assert [row["name"] for row in rows] == ["inner", "outer"]
        by_name = {row["name"]: row for row in rows}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"kind": "demo"}

    def test_jsonl_to_path(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        target = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(target)) == 1
        assert json.loads(target.read_text().strip())["name"] == "s"
