"""The disabled layer really is free: shared singletons, zero allocation."""

import tracemalloc

from repro import obs
from repro.obs import NULL_REGISTRY, NULL_TRACER


class TestSingletons:
    def test_registry_returns_shared_instruments(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
        assert NULL_REGISTRY.histogram("a").time() is \
            NULL_REGISTRY.histogram("b").time()

    def test_tracer_returns_shared_span(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", key=1)

    def test_null_instruments_record_nothing(self):
        NULL_REGISTRY.counter("c").inc(10)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {"counters": {}, "gauges": {},
                                            "histograms": {}}
        with NULL_TRACER.span("s"):
            pass
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.aggregate() == {}
        assert len(NULL_TRACER) == 0

    def test_enabled_flags(self):
        assert NULL_REGISTRY.enabled is False
        assert obs.NULL.enabled is False


class TestZeroAllocation:
    def test_registry_calls_allocate_nothing(self):
        # Warm every code path first so lazy setup is out of the picture.
        NULL_REGISTRY.counter("warm").inc()
        NULL_REGISTRY.gauge("warm").add(1)
        with NULL_REGISTRY.histogram("warm").time():
            pass

        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(200):
                NULL_REGISTRY.counter("hot").inc()
                NULL_REGISTRY.gauge("hot").add(1)
                NULL_REGISTRY.histogram("hot").observe(0.5)
                with NULL_REGISTRY.histogram("hot").time():
                    pass
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        grew = [stat for stat in after.compare_to(before, "lineno")
                if stat.size_diff > 0
                and "tracemalloc" not in (stat.traceback[0].filename or "")]
        # Nothing from the loop above may have allocated; tracemalloc's
        # own bookkeeping is excluded.
        loop_allocs = [stat for stat in grew
                       if "test_noop" in stat.traceback[0].filename
                       or "obs" in stat.traceback[0].filename]
        assert not loop_allocs, loop_allocs


class TestDefaultState:
    def test_process_default_is_null(self):
        assert obs.current() is obs.NULL

    def test_disabled_stats_are_empty(self):
        stats = obs.stats()
        assert stats["instrumentation_enabled"] is False
        assert stats["metrics"] == {"counters": {}, "gauges": {},
                                    "histograms": {}}
        assert stats["spans"] == {}
        assert stats["spans_retained"] == 0

    def test_recording_restores_null_after(self):
        with obs.recording() as instrumentation:
            assert obs.current() is instrumentation
            assert instrumentation.enabled
        assert obs.current() is obs.NULL

    def test_enable_disable_round_trip(self):
        instrumentation = obs.enable()
        try:
            assert obs.current() is instrumentation
            # A second enable keeps the live recording.
            assert obs.enable() is instrumentation
        finally:
            assert obs.disable() is instrumentation
        assert obs.current() is obs.NULL
