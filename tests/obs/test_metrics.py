"""Unit tests for the metrics side: quantiles, instruments, the registry."""

import threading

import pytest

from repro.obs import MetricsRegistry, quantile
from repro.obs.metrics import DEFAULT_RESERVOIR, Histogram


class TestQuantile:
    def test_single_value(self):
        assert quantile([7.0], 0.0) == 7.0
        assert quantile([7.0], 0.5) == 7.0
        assert quantile([7.0], 1.0) == 7.0

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0

    def test_median_even_count_interpolates(self):
        # idx = 0.5 * 3 = 1.5 -> halfway between v[1]=2 and v[2]=3.
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_median_odd_count_is_exact(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_p95_interpolation(self):
        # 0..100: idx = 0.95 * 100 = 95 exactly.
        values = [float(i) for i in range(101)]
        assert quantile(values, 0.95) == 95.0
        # 5 values: idx = 0.95 * 4 = 3.8 -> 4 + 0.8 * (5 - 4) = 4.8.
        assert quantile([1.0, 2.0, 3.0, 4.0, 5.0], 0.95) == pytest.approx(4.8)

    def test_quarter_quantile(self):
        # idx = 0.25 * 3 = 0.75 -> 10 + 0.75 * (20 - 10) = 17.5.
        assert quantile([10.0, 20.0, 30.0, 40.0], 0.25) == 17.5

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            quantile([], 0.5)

    def test_out_of_range_fraction_raises(self):
        with pytest.raises(ValueError, match="quantile fraction"):
            quantile([1.0], 1.5)
        with pytest.raises(ValueError, match="quantile fraction"):
            quantile([1.0], -0.1)


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("c") is counter

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (3.0, 1.0, 2.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["total"] == pytest.approx(10.0)
        assert summary["p50"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_empty_histogram_summary_is_zeroed(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary == {"count": 0, "total": 0.0, "p50": 0.0,
                           "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_histogram_timer_observes_positive_duration(self):
        histogram = MetricsRegistry().histogram("h")
        with histogram.time():
            sum(range(100))
        assert histogram.count == 1
        assert histogram.values[0] >= 0.0


class TestThreadSafety:
    """Instruments are bumped from every session thread at once.

    ``value += amount`` is a read-modify-write; without the instrument
    lock, racing increments vanish.  These tests are the regression
    harness for that: 8 threads x 2500 bumps each must land exactly.
    """

    THREADS, BUMPS = 8, 2500

    def hammer(self, work):
        threads = [threading.Thread(target=work)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_racing_counter_increments_all_land(self):
        counter = MetricsRegistry().counter("c")
        self.hammer(lambda: [counter.inc() for _ in range(self.BUMPS)])
        assert counter.value == self.THREADS * self.BUMPS

    def test_racing_gauge_adds_all_land(self):
        gauge = MetricsRegistry().gauge("g")
        self.hammer(lambda: [gauge.add(1) for _ in range(self.BUMPS)])
        assert gauge.value == self.THREADS * self.BUMPS

    def test_racing_histogram_observations_all_counted(self):
        histogram = MetricsRegistry().histogram("h")
        self.hammer(lambda: [histogram.observe(1.0)
                             for _ in range(self.BUMPS)])
        assert histogram.count == self.THREADS * self.BUMPS
        assert histogram.summary()["total"] == \
            pytest.approx(self.THREADS * self.BUMPS)

    def test_racing_registry_lookups_return_one_instrument(self):
        registry = MetricsRegistry()
        handles = []
        lock = threading.Lock()

        def grab():
            handle = registry.counter("shared")
            with lock:
                handles.append(handle)

        self.hammer(grab)
        assert len(set(map(id, handles))) == 1


class TestReservoir:
    """Bounded histogram memory: exact below the cap, sampled above."""

    def test_below_cap_every_sample_is_retained(self):
        histogram = Histogram("h", reservoir=100)
        for index in range(100):
            histogram.observe(float(index))
        assert sorted(histogram.values) == [float(i) for i in range(100)]
        assert histogram.sampled is False

    def test_above_cap_memory_is_bounded(self):
        histogram = Histogram("h", reservoir=64)
        for index in range(1000):
            histogram.observe(float(index))
        assert len(histogram.values) == 64
        assert histogram.sampled is True

    def test_count_total_and_max_stay_exact_above_cap(self):
        histogram = Histogram("h", reservoir=32)
        for index in range(500):
            histogram.observe(float(index))
        summary = histogram.summary()
        assert summary["count"] == 500
        assert summary["total"] == pytest.approx(sum(range(500)))
        assert summary["max"] == 499.0

    def test_quantiles_above_cap_are_reasonable_estimates(self):
        # A uniform 0..9999 stream: the sampled median must land well
        # inside the middle of the distribution, not at an edge.
        histogram = Histogram("uniform", reservoir=512)
        for index in range(10_000):
            histogram.observe(float(index))
        p50 = histogram.summary()["p50"]
        assert 3500.0 < p50 < 6500.0

    def test_sampling_is_reproducible_per_name(self):
        def run(name):
            histogram = Histogram(name, reservoir=16)
            for index in range(200):
                histogram.observe(float(index))
            return histogram.values

        assert run("stable") == run("stable")

    def test_default_reservoir_applies(self):
        assert MetricsRegistry().histogram("h").reservoir \
            == DEFAULT_RESERVOIR

    def test_reservoir_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir=0)


class TestRegistry:
    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("size").set(9)
        registry.histogram("lat").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"] == {"a": 2, "b": 1}
        assert snapshot["gauges"] == {"size": 9}
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
