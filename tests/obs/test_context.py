"""Unit tests for the trace-context carrier: attach, handoff, wire form."""

import threading

from repro.obs import context as trace_context
from repro.obs.context import TraceContext, from_wire, new_txn_id


class TestTxnIds:
    def test_ids_are_unique_and_sequential_in_form(self):
        first, second = new_txn_id(), new_txn_id()
        assert first != second
        assert first.startswith("txn-") and second.startswith("txn-")

    def test_ids_are_unique_across_threads(self):
        ids, lock = [], threading.Lock()

        def take(n):
            for _ in range(n):
                value = new_txn_id()
                with lock:
                    ids.append(value)

        threads = [threading.Thread(target=take, args=(50,))
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(ids)) == len(ids) == 200


class TestAttach:
    def test_no_context_by_default(self):
        assert trace_context.current() is None
        assert trace_context.current_txn() is None

    def test_attach_makes_context_current(self):
        context = TraceContext("txn-a", 7)
        with trace_context.attach(context):
            assert trace_context.current() == context
            assert trace_context.current_txn() == "txn-a"
        assert trace_context.current() is None

    def test_attachments_nest_and_restore(self):
        outer, inner = TraceContext("txn-o", 1), TraceContext("txn-i", 2)
        with trace_context.attach(outer):
            with trace_context.attach(inner):
                assert trace_context.current_txn() == "txn-i"
            assert trace_context.current_txn() == "txn-o"

    def test_attachment_restored_on_exception(self):
        try:
            with trace_context.attach(TraceContext("txn-x", 1)):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert trace_context.current() is None

    def test_attachment_is_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = trace_context.current()

        with trace_context.attach(TraceContext("txn-a", 1)):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None


class TestWireForm:
    def test_round_trip(self):
        context = TraceContext("txn-9", 42)
        assert from_wire(context.to_wire()) == context

    def test_wire_dict_is_json_plain(self):
        assert TraceContext("txn-9", 42).to_wire() == {"txn": "txn-9",
                                                       "span": 42}

    def test_from_wire_none_and_empty_are_none(self):
        assert from_wire(None) is None
        assert from_wire({}) is None

    def test_equality_and_hash(self):
        assert TraceContext("t", 1) == TraceContext("t", 1)
        assert TraceContext("t", 1) != TraceContext("t", 2)
        assert hash(TraceContext("t", 1)) == hash(TraceContext("t", 1))
