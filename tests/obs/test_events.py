"""Unit tests for the structured event log: schema, ring, sink."""

import io
import json

import pytest

from repro.obs import context as trace_context
from repro.obs.context import TraceContext
from repro.obs.events import EVENT_KINDS, EventLog, NullEventLog


class TestSchema:
    def test_every_documented_kind_is_emittable(self):
        log = EventLog()
        for kind in EVENT_KINDS:
            log.emit(kind, txn="txn-1")
        assert len(log) == len(EVENT_KINDS)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventLog().emit("txn.wat")

    def test_attrs_ride_along(self):
        log = EventLog()
        log.emit("2pc.decide", txn="txn-3", gid="g-1", shards=2)
        (event,) = log.events()
        assert event.attrs == {"gid": "g-1", "shards": 2}

    def test_txn_defaults_from_attached_context(self):
        log = EventLog()
        with trace_context.attach(TraceContext("txn-7", 1)):
            log.emit("txn.commit")
        log.emit("txn.begin")  # outside any transaction
        first, second = log.events()
        assert first.txn == "txn-7"
        assert second.txn is None


class TestRing:
    def test_old_events_fall_off_and_are_counted(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("txn.begin", txn=f"txn-{index}")
        assert [event.txn for event in log.events()] == \
            ["txn-2", "txn-3", "txn-4"]
        assert log.dropped == 2
        assert log.recorded == 5  # seq keeps counting past eviction

    def test_seq_is_gapless_and_ordered(self):
        log = EventLog()
        for _ in range(4):
            log.emit("txn.attempt", txn="txn-1")
        assert [event.seq for event in log.events()] == [1, 2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_reset_drops_events_and_counters(self):
        log = EventLog(capacity=1)
        log.emit("txn.begin")
        log.emit("txn.begin")
        log.reset()
        assert len(log) == 0 and log.dropped == 0 and log.recorded == 0


class TestQueries:
    def test_for_txn_filters(self):
        log = EventLog()
        log.emit("txn.begin", txn="txn-1")
        log.emit("txn.begin", txn="txn-2")
        log.emit("txn.commit", txn="txn-1", token=5)
        mine = log.for_txn("txn-1")
        assert [event.kind for event in mine] == ["txn.begin", "txn.commit"]

    def test_aggregate_counts_by_kind_sorted(self):
        log = EventLog()
        log.emit("txn.commit", txn="t")
        log.emit("txn.begin", txn="t")
        log.emit("txn.begin", txn="t")
        assert log.aggregate() == {"txn.begin": 2, "txn.commit": 1}
        assert list(log.aggregate()) == ["txn.begin", "txn.commit"]


class TestExport:
    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit("journal.append", txn="txn-1", shard=0, records=1)
        buffer = io.StringIO()
        assert log.export_jsonl(buffer) == 1
        row = json.loads(buffer.getvalue())
        assert row["kind"] == "journal.append"
        assert row["txn"] == "txn-1"
        assert row["attrs"] == {"shard": 0, "records": 1}
        assert {"seq", "ts"} <= set(row)

    def test_jsonl_to_path(self, tmp_path):
        log = EventLog()
        log.emit("replication.ship", txn="txn-1", node="primary", seq=3)
        target = tmp_path / "events.jsonl"
        assert log.export_jsonl(str(target)) == 1
        assert json.loads(target.read_text())["kind"] == "replication.ship"


class TestNullEventLog:
    def test_emits_nothing_and_costs_nothing(self):
        log = NullEventLog()
        log.emit("txn.begin", txn="txn-1")
        assert log.events() == []
        assert log.export_jsonl(io.StringIO()) == 0
        assert log.enabled is False
