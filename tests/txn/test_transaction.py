"""Unit tests for transactions and operations."""

import pytest

from repro.errors import TransactionStateError
from repro.time import Instant
from repro.txn import Operation, Transaction, TxnStatus


def make_txn(commit_result=None, fail=False):
    def callback(txn):
        if fail:
            raise RuntimeError("applier exploded")
        return commit_result or Instant.parse("01/01/80")
    return Transaction(1, callback)


class TestOperation:
    def test_describe(self):
        op = Operation("insert", "faculty", {"values": {"name": "Tom"}})
        assert op.describe() == {"action": "insert", "relation": "faculty",
                                 "arguments": {"values": {"name": "Tom"}}}

    def test_equality(self):
        a = Operation("insert", "r", {"x": 1})
        b = Operation("insert", "r", {"x": 1})
        c = Operation("delete", "r", {"x": 1})
        assert a == b and a != c

    def test_arguments_copied(self):
        arguments = {"x": 1}
        op = Operation("insert", "r", arguments)
        arguments["x"] = 2
        assert op.arguments["x"] == 1


class TestLifecycle:
    def test_starts_active(self):
        txn = make_txn()
        assert txn.status is TxnStatus.ACTIVE and txn.is_active
        assert txn.commit_time is None

    def test_add_and_commit(self):
        txn = make_txn()
        txn.add(Operation("insert", "r", {}))
        when = txn.commit()
        assert txn.status is TxnStatus.COMMITTED
        assert txn.commit_time == when == Instant.parse("01/01/80")
        assert len(txn.operations) == 1

    def test_abort_discards(self):
        txn = make_txn()
        txn.add(Operation("insert", "r", {}))
        txn.abort()
        assert txn.status is TxnStatus.ABORTED
        assert txn.operations == ()

    def test_add_after_commit_raises(self):
        txn = make_txn()
        txn.commit()
        with pytest.raises(TransactionStateError, match="committed"):
            txn.add(Operation("insert", "r", {}))

    def test_double_commit_raises(self):
        txn = make_txn()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.commit()

    def test_commit_after_abort_raises(self):
        txn = make_txn()
        txn.abort()
        with pytest.raises(TransactionStateError):
            txn.commit()

    def test_failed_commit_marks_aborted(self):
        txn = make_txn(fail=True)
        with pytest.raises(RuntimeError):
            txn.commit()
        assert txn.status is TxnStatus.ABORTED


class TestContextManager:
    def test_commits_on_clean_exit(self):
        txn = make_txn()
        with txn:
            txn.add(Operation("insert", "r", {}))
        assert txn.status is TxnStatus.COMMITTED

    def test_aborts_on_exception(self):
        txn = make_txn()
        with pytest.raises(ValueError):
            with txn:
                raise ValueError("boom")
        assert txn.status is TxnStatus.ABORTED

    def test_explicit_commit_inside_block(self):
        txn = make_txn()
        with txn:
            txn.commit()
        assert txn.status is TxnStatus.COMMITTED
