"""The manager under concurrency: failure release, serialized run(),
and the validate seam the session layer builds on."""

import threading

import pytest

from repro.core import StaticDatabase
from repro.errors import ConflictError, ConstraintViolation, ReproError, \
    TransactionStateError
from repro.relational import Domain, Schema
from repro.time import SimulatedClock
from repro.txn.transaction import Operation


def fresh_db():
    database = StaticDatabase(clock=SimulatedClock("01/01/80"))
    database.define("r", Schema.of(key=["k"], k=Domain.STRING,
                                   v=Domain.INTEGER))
    return database


def insert_op(key, value=0):
    return Operation("insert", "r", {"values": {"k": key, "v": value}})


class TestFailureRelease:
    """A failed commit must never wedge the manager (the regression the
    concurrency layer depends on: retries begin new transactions)."""

    def test_applier_failure_releases_the_active_slot(self):
        database = fresh_db()
        database.insert("r", {"k": "a", "v": 0})
        with pytest.raises(ConstraintViolation):
            with database.begin() as txn:
                database.insert("r", {"k": "a", "v": 1}, txn=txn)
                # commit on exit applies and rejects the duplicate key
        replacement = database.manager.begin()  # must be accepted
        replacement.abort()
        assert database.manager.active is None
        assert len(database.log) == 2  # define + the seed insert only

    def test_on_commit_failure_releases_the_active_slot(self):
        database = fresh_db()
        database.manager.on_commit = lambda record: (_ for _ in ()).throw(
            RuntimeError("journal died"))
        with pytest.raises(RuntimeError):
            with database.begin() as txn:
                database.insert("r", {"k": "a", "v": 1}, txn=txn)
        database.manager.on_commit = None
        # The manager is not wedged: the next transaction begins and commits.
        with database.begin() as txn:
            database.insert("r", {"k": "b", "v": 2}, txn=txn)
        assert {row["k"] for row in database.snapshot("r")} == {"a", "b"}

    def test_failed_commit_marks_the_transaction_aborted(self):
        database = fresh_db()
        database.manager.on_commit = lambda record: (_ for _ in ()).throw(
            RuntimeError("journal died"))
        txn = database.begin()
        database.insert("r", {"k": "a", "v": 1}, txn=txn)
        with pytest.raises(RuntimeError):
            txn.commit()
        assert not txn.is_active
        with pytest.raises(TransactionStateError):
            txn.commit()  # dead is dead


class TestSingleWriter:
    def test_second_begin_names_the_holding_transaction(self):
        database = fresh_db()
        holder = database.begin()
        with pytest.raises(TransactionStateError) as excinfo:
            database.begin()
        assert f"transaction {holder.txn_id} " in str(excinfo.value)
        assert "single-writer" in str(excinfo.value)
        holder.abort()

    def test_racing_run_calls_serialize_into_n_monotone_commits(self):
        database = fresh_db()
        threads_n, per_thread = 8, 20
        failures = []

        def worker(index):
            try:
                for j in range(per_thread):
                    database.manager.run(
                        [insert_op(f"w{index}-{j}")])
            except ReproError as error:  # pragma: no cover - diagnostic
                failures.append(error)

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert failures == []
        assert len(database.log) == 1 + threads_n * per_thread
        times = [record.commit_time for record in database.log]
        assert all(a < b for a, b in zip(times, times[1:]))
        assert len(database.snapshot("r")) == threads_n * per_thread


class TestValidateSeam:
    def test_validate_runs_before_begin_and_can_reject(self):
        database = fresh_db()
        events = []

        def validate():
            events.append(("active", database.manager.active))
            raise ConflictError("rejected")

        with pytest.raises(ConflictError):
            database.manager.run([insert_op("a")], validate=validate)
        assert events == [("active", None)]  # ran before any begin
        assert len(database.log) == 1  # nothing ticked, nothing applied

    def test_validate_passing_lets_the_commit_through(self):
        database = fresh_db()
        commit_time = database.manager.run([insert_op("a")],
                                           validate=lambda: None)
        assert list(database.log)[-1].commit_time == commit_time

    def test_validate_is_atomic_with_the_commit_it_guards(self):
        """No other run() caller may commit between a session's validation
        and its apply — the heart of first-committer-wins."""
        database = fresh_db()
        in_validate = threading.Event()
        release = threading.Event()
        log_len_inside = []

        def stalling_validate():
            in_validate.set()
            release.wait(timeout=10.0)
            log_len_inside.append(len(database.log))

        def stalled_runner():
            database.manager.run([insert_op("stalled")],
                                 validate=stalling_validate)

        thread = threading.Thread(target=stalled_runner, daemon=True)
        thread.start()
        assert in_validate.wait(timeout=10.0)
        # A competing run() must block until the stalled one finishes.
        competitor = threading.Thread(
            target=lambda: database.manager.run([insert_op("competitor")]),
            daemon=True)
        competitor.start()
        competitor.join(timeout=0.2)
        assert competitor.is_alive()  # still waiting on the run lock
        release.set()
        thread.join(timeout=10.0)
        competitor.join(timeout=10.0)
        assert log_len_inside == [1]  # the competitor had not committed
        assert {row["k"] for row in database.snapshot("r")} == {
            "stalled", "competitor"}

    def test_explicit_commit_serializes_with_run_validation(self):
        """Regression: an explicit Transaction.commit must take the same
        serialization lock as run(), or it can land between a session's
        validation and its apply — a lost update the first-committer-wins
        check never sees."""
        database = fresh_db()
        in_validate = threading.Event()
        release = threading.Event()
        order = []

        def stalling_validate():
            order.append("validate-enter")
            in_validate.set()
            release.wait(timeout=10.0)
            order.append("validate-exit")

        def stalled_runner():
            try:
                database.manager.run([insert_op("stalled")],
                                     validate=stalling_validate)
            except TransactionStateError:
                # The explicit transaction below may own the
                # single-writer slot when this run() reaches begin().
                pass

        runner = threading.Thread(target=stalled_runner, daemon=True)
        runner.start()
        assert in_validate.wait(timeout=10.0)
        txn = database.begin()  # no txn is active during validate
        database.insert("r", {"k": "explicit", "v": 1}, txn=txn)
        committed = threading.Event()

        def explicit_commit():
            txn.commit()
            order.append("explicit-commit")
            committed.set()

        committer = threading.Thread(target=explicit_commit, daemon=True)
        committer.start()
        # The explicit commit must wait out the validate critical section.
        assert not committed.wait(timeout=0.2)
        release.set()
        assert committed.wait(timeout=10.0)
        runner.join(timeout=10.0)
        committer.join(timeout=10.0)
        assert order == ["validate-enter", "validate-exit",
                         "explicit-commit"]
        assert any(row["k"] == "explicit"
                   for row in database.snapshot("r"))

    def test_certify_serializes_reads_with_commits(self):
        database = fresh_db()
        in_certify = threading.Event()
        release = threading.Event()

        def holder():
            def blocker():
                in_certify.set()
                release.wait(timeout=10.0)
            database.manager.certify(blocker)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert in_certify.wait(timeout=10.0)
        competitor = threading.Thread(
            target=lambda: database.manager.run([insert_op("late")]),
            daemon=True)
        competitor.start()
        competitor.join(timeout=0.2)
        assert competitor.is_alive()  # commits wait for the certifier
        release.set()
        thread.join(timeout=10.0)
        competitor.join(timeout=10.0)
        assert any(row["k"] == "late" for row in database.snapshot("r"))

    def test_certify_rejection_propagates_without_a_commit(self):
        database = fresh_db()

        def reject():
            raise ConflictError("stale read set")

        with pytest.raises(ConflictError):
            database.manager.certify(reject)
        assert len(database.log) == 1  # no tick, no record
