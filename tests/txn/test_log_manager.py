"""Unit tests for the commit log and the transaction manager."""

import pytest

from repro.errors import JournalError, TransactionStateError
from repro.time import Instant, SimulatedClock
from repro.txn import CommitLog, Operation, TransactionManager


def instant(chronon: int) -> Instant:
    return Instant.from_chronon(chronon + 700000)


class TestCommitLog:
    def test_append_and_read(self):
        log = CommitLog()
        record = log.append(instant(1), [Operation("insert", "r", {})])
        assert record.sequence == 0
        assert len(log) == 1
        assert log.last() is record

    def test_sequence_numbers_increase(self):
        log = CommitLog()
        first = log.append(instant(1), [])
        second = log.append(instant(2), [])
        assert (first.sequence, second.sequence) == (0, 1)

    def test_commit_times_must_advance(self):
        log = CommitLog()
        log.append(instant(5), [])
        with pytest.raises(JournalError, match="advance"):
            log.append(instant(5), [])
        with pytest.raises(JournalError):
            log.append(instant(4), [])

    def test_as_of_prefix(self):
        log = CommitLog()
        for chronon in (1, 3, 5):
            log.append(instant(chronon), [])
        assert len(log.as_of(instant(4))) == 2
        assert len(log.as_of(instant(0))) == 0
        assert len(log.as_of(instant(9))) == 3

    def test_empty(self):
        log = CommitLog()
        assert log.last() is None
        assert list(log) == []

    def test_describe(self):
        log = CommitLog()
        record = log.append(instant(1), [Operation("insert", "r", {"x": 1})])
        described = record.describe()
        assert described["sequence"] == 0
        assert described["operations"][0]["action"] == "insert"


class TestTransactionManager:
    def make(self):
        applied = []

        def applier(operations, commit_time):
            applied.append((tuple(operations), commit_time))

        manager = TransactionManager(applier, SimulatedClock("01/01/80"))
        return manager, applied

    def test_run_applies_and_logs(self):
        manager, applied = self.make()
        when = manager.run([Operation("insert", "r", {})])
        assert len(applied) == 1
        assert applied[0][1] == when
        assert len(manager.log) == 1

    def test_commit_times_strictly_increase(self):
        manager, _ = self.make()
        times = [manager.run([]) for _ in range(5)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_single_writer(self):
        manager, _ = self.make()
        txn = manager.begin()
        with pytest.raises(TransactionStateError, match="single-writer"):
            manager.begin()
        txn.abort()
        manager.begin()  # allowed again

    def test_aborted_transaction_leaves_no_trace(self):
        manager, applied = self.make()
        txn = manager.begin()
        txn.add(Operation("insert", "r", {}))
        txn.abort()
        assert applied == []
        assert len(manager.log) == 0

    def test_failed_apply_not_logged(self):
        def applier(operations, commit_time):
            raise RuntimeError("boom")

        manager = TransactionManager(applier, SimulatedClock("01/01/80"))
        txn = manager.begin()
        with pytest.raises(RuntimeError):
            txn.commit()
        assert len(manager.log) == 0
        # A new transaction can start.
        manager.begin()

    def test_on_commit_hook(self):
        manager, _ = self.make()
        seen = []
        manager.on_commit = seen.append
        manager.run([Operation("insert", "r", {})])
        assert len(seen) == 1
        assert seen[0].operations[0].action == "insert"

    def test_now_reads_underlying_clock(self):
        manager, _ = self.make()
        assert manager.now() == Instant.parse("01/01/80")

    def test_concurrent_run_serializes(self):
        import threading
        applied = []
        lock = threading.Lock()

        def applier(operations, commit_time):
            with lock:
                applied.append(commit_time)

        manager = TransactionManager(applier, SimulatedClock("01/01/80"))

        def worker():
            for _ in range(25):
                manager.run([Operation("insert", "r", {})])

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(applied) == 100
        assert len(manager.log) == 100
        times = [record.commit_time for record in manager.log]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_explicit_begin_still_single_writer_under_run(self):
        manager, _ = self.make()
        txn = manager.begin()
        with pytest.raises(TransactionStateError):
            manager.begin()
        txn.commit()

    def test_active_property(self):
        manager, _ = self.make()
        assert manager.active is None
        txn = manager.begin()
        assert manager.active is txn
        txn.commit()
        assert manager.active is None
