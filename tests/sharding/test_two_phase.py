"""Crash the cross-shard commit protocol at every append boundary.

A cross-shard transfer journals, in order: one ``prepare`` record per
involved shard (``shard-NN/2pc.seg``), one ``decision`` record
(``decisions.seg`` — the commit point), then one journal record per
involved shard (``shard-NN/journal-*.seg``).  The matrix below kills the
process at each of those appends — lost and torn — and checks that
recovery always lands in an atomic state: the transfer happened
everywhere or nowhere, the recovered total is conserved, and recovering
again changes nothing.
"""

import pytest

from repro.core import StaticDatabase
from repro.relational import Domain, Schema
from repro.sharding import ShardedDurabilityManager, sharded_digest
from repro.storage.faults import CrashPoint, FaultyIO, SimulatedCrash
from repro.storage.io import REAL_IO, StorageIO

SHARDS = 4


class _CountingIO(StorageIO):
    """Pass-through IO that counts appends (to size the crash sweep)."""

    def __init__(self):
        self.appends = 0

    def append(self, path, data, fsync=False):
        self.appends += 1
        REAL_IO.append(path, data, fsync=fsync)

    def write_atomic(self, path, data, fsync=False):
        REAL_IO.write_atomic(path, data, fsync=fsync)


class _CrashOnPath(StorageIO):
    """Die on the *at*-th append whose path contains *substring*."""

    def __init__(self, substring, at=1):
        self._substring = substring
        self._remaining = at
        self.fired = False

    def append(self, path, data, fsync=False):
        if not self.fired and self._substring in path:
            self._remaining -= 1
            if self._remaining <= 0:
                self.fired = True
                raise SimulatedCrash(f"crashed appending to {path}")
        REAL_IO.append(path, data, fsync=fsync)

    def write_atomic(self, path, data, fsync=False):
        REAL_IO.write_atomic(path, data, fsync=fsync)


def seed_store(directory, io=None):
    """A durable 4-shard store holding two rows on different shards."""
    manager = ShardedDurabilityManager(str(directory), shards=SHARDS,
                                       io=io if io is not None else REAL_IO)
    store, _ = manager.recover(StaticDatabase)
    if "accounts" not in store:
        store.define("accounts", Schema.of(key=["k"], k=Domain.STRING,
                                           v=Domain.INTEGER))
        for i in range(8):
            store.insert("accounts", {"k": f"k{i}", "v": 100})
    return manager, store


def pick_cross_shard_pair(store):
    placed = {}
    for i in range(8):
        key = f"k{i}"
        placed.setdefault(store.shard_of_key("accounts", {"k": key}), key)
    sids = sorted(placed)[:2]
    return placed[sids[0]], placed[sids[1]]


def transfer(store, key_a, key_b, amount=10):
    with store.begin() as txn:
        row_a = next(r for r in store.snapshot("accounts")
                     if r["k"] == key_a)
        row_b = next(r for r in store.snapshot("accounts")
                     if r["k"] == key_b)
        store.replace("accounts", {"k": key_a},
                      {"v": row_a["v"] + amount}, txn=txn)
        store.replace("accounts", {"k": key_b},
                      {"v": row_b["v"] - amount}, txn=txn)


def balances(store, key_a, key_b):
    rows = {r["k"]: r["v"] for r in store.snapshot("accounts")}
    return rows[key_a], rows[key_b]


def count_transfer_appends(tmp_path):
    """How many appends one cross-shard transfer performs."""
    counter = _CountingIO()
    seed_store(tmp_path / "count")
    manager = ShardedDurabilityManager(str(tmp_path / "count"), io=counter)
    store, _ = manager.recover(StaticDatabase)
    key_a, key_b = pick_cross_shard_pair(store)
    before = counter.appends
    transfer(store, key_a, key_b)
    return counter.appends - before


class TestCrashMatrix:
    """Every append of the protocol, lost and torn."""

    @pytest.mark.parametrize("crash", [CrashPoint.LOST_RECORD,
                                       CrashPoint.TORN_RECORD],
                             ids=lambda c: c.value)
    def test_transfer_is_atomic_at_every_crash_point(self, tmp_path, crash):
        total = count_transfer_appends(tmp_path)
        # 2 prepares + 1 decision + 2 shard journal records
        assert total == 5
        for at in range(1, total + 1):
            directory = tmp_path / f"{crash.value}-{at}"
            seed_store(directory)
            io = FaultyIO(crash, at=at)
            manager = ShardedDurabilityManager(str(directory), io=io)
            store, _ = manager.recover(StaticDatabase)
            key_a, key_b = pick_cross_shard_pair(store)
            with pytest.raises(SimulatedCrash):
                transfer(store, key_a, key_b)

            fresh = ShardedDurabilityManager(str(directory))
            recovered, report = fresh.recover(StaticDatabase)
            a, b = balances(recovered, key_a, key_b)
            assert (a, b) in ((100, 100), (110, 90)), \
                f"torn transfer at append {at}: ({a}, {b})"
            assert a + b == 200

            # decided ⇒ applied: the decision is the third append, and a
            # lost or torn decision is *no* decision.  Exact expectations
            # per boundary (the seed's broadcast ``define`` left its own
            # decided records behind, which recovery must skip, not
            # re-abort or re-apply):
            if at <= 3:  # died preparing or deciding: rolled back
                assert (a, b) == (100, 100)
                assert report.in_doubt_aborted == at - 1
                assert report.reapplied == 0
            else:  # died applying: recovery finishes the commit
                assert (a, b) == (110, 90)
                assert report.in_doubt_aborted == 0
                assert report.reapplied == 6 - at

            # recovery is idempotent
            again = ShardedDurabilityManager(str(directory))
            twice, report2 = again.recover(StaticDatabase)
            assert sharded_digest(twice) == sharded_digest(recovered)
            assert report2.reapplied == 0
            assert balances(twice, key_a, key_b) == (a, b)


class TestPhaseBoundaries:
    """Targeted kills at the named protocol boundaries."""

    def test_coordinator_dies_between_prepare_and_decision(self, tmp_path):
        """Satellite 3: durable prepares, no decision — recovery rolls
        the in-doubt transaction back on every shard."""
        seed_store(tmp_path)
        io = _CrashOnPath("decisions.seg")
        manager = ShardedDurabilityManager(str(tmp_path), io=io)
        store, _ = manager.recover(StaticDatabase)
        key_a, key_b = pick_cross_shard_pair(store)
        with pytest.raises(SimulatedCrash):
            transfer(store, key_a, key_b)
        assert io.fired

        fresh = ShardedDurabilityManager(str(tmp_path))
        recovered, report = fresh.recover(StaticDatabase)
        assert report.in_doubt_aborted == 2  # one prepare per shard
        assert report.reapplied == 0
        assert balances(recovered, key_a, key_b) == (100, 100)

    def test_coordinator_dies_between_decision_and_apply(self, tmp_path):
        """Decision durable, neither shard applied — recovery finishes
        the commit on both shards from the prepare records."""
        seed_store(tmp_path)
        io = _CrashOnPath("journal-")
        manager = ShardedDurabilityManager(str(tmp_path), io=io)
        store, _ = manager.recover(StaticDatabase)
        key_a, key_b = pick_cross_shard_pair(store)
        with pytest.raises(SimulatedCrash):
            transfer(store, key_a, key_b)

        fresh = ShardedDurabilityManager(str(tmp_path))
        recovered, report = fresh.recover(StaticDatabase)
        assert report.reapplied == 2
        assert report.in_doubt_aborted == 0
        assert balances(recovered, key_a, key_b) == (110, 90)

    def test_coordinator_dies_mid_apply(self, tmp_path):
        """One shard's commit record durable, the other's lost —
        recovery re-applies exactly the missing half, never the
        journaled one (the ``count > base`` rule)."""
        seed_store(tmp_path)
        io = _CrashOnPath("journal-", at=2)
        manager = ShardedDurabilityManager(str(tmp_path), io=io)
        store, _ = manager.recover(StaticDatabase)
        key_a, key_b = pick_cross_shard_pair(store)
        with pytest.raises(SimulatedCrash):
            transfer(store, key_a, key_b)

        fresh = ShardedDurabilityManager(str(tmp_path))
        recovered, report = fresh.recover(StaticDatabase)
        assert report.reapplied == 1
        assert balances(recovered, key_a, key_b) == (110, 90)

    def test_checkpoint_then_crash_keeps_decided_state(self, tmp_path):
        """A checkpoint compacts the 2PC logs; later crashes recover
        from the checkpoint without resurrecting old transactions."""
        manager, store = seed_store(tmp_path)
        key_a, key_b = pick_cross_shard_pair(store)
        transfer(store, key_a, key_b)
        manager.checkpoint()
        stats = manager.shard_stats()
        assert stats["decision_log_bytes"] == 0

        fresh = ShardedDurabilityManager(str(tmp_path))
        recovered, report = fresh.recover(StaticDatabase)
        assert report.decisions == 0
        assert report.reapplied == 0
        assert balances(recovered, key_a, key_b) == (110, 90)
