"""The sharded durability directory: manifest, round trips, stats."""

import json
import os

import pytest

from repro.core import StaticDatabase, TemporalDatabase
from repro.errors import ShardConfigError
from repro.relational import Domain, Schema
from repro.sharding import ShardedDurabilityManager, sharded_digest


def build(directory, shards=4, kind=StaticDatabase, rows=12):
    manager = ShardedDurabilityManager(str(directory), shards=shards)
    store, report = manager.recover(kind)
    store.define("counters",
                 Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER))
    historical = store.supports_historical_queries
    for i in range(rows):
        if historical:
            store.insert("counters", {"k": f"k{i}", "v": i},
                         valid_from="01/01/80")
        else:
            store.insert("counters", {"k": f"k{i}", "v": i})
    return manager, store


class TestRoundTrip:
    @pytest.mark.parametrize("kind", [StaticDatabase, TemporalDatabase],
                             ids=lambda c: c.__name__)
    def test_recover_rebuilds_the_exact_state(self, tmp_path, kind):
        _, store = build(tmp_path, kind=kind)
        before = sharded_digest(store)
        fresh = ShardedDurabilityManager(str(tmp_path))
        recovered, report = fresh.recover(kind)
        assert sharded_digest(recovered) == before
        assert report.shards == 4
        assert len(report.per_shard) == 4
        assert sum(r.records_replayed for r in report.per_shard) > 0

    def test_checkpoint_then_recover_skips_the_journal(self, tmp_path):
        manager, store = build(tmp_path)
        before = sharded_digest(store)
        manager.checkpoint()
        fresh = ShardedDurabilityManager(str(tmp_path))
        recovered, report = fresh.recover(StaticDatabase)
        assert sharded_digest(recovered) == before
        assert all(r.records_replayed == 0 for r in report.per_shard)

    def test_empty_directory_adopts_requested_shape(self, tmp_path):
        manager = ShardedDurabilityManager(str(tmp_path), shards=6)
        store, _ = manager.recover(StaticDatabase)
        assert store.shards == 6
        with open(os.path.join(str(tmp_path), "shards.json")) as handle:
            manifest = json.load(handle)
        assert manifest["shards"] == 6


class TestManifest:
    def test_wrong_shard_count_is_rejected(self, tmp_path):
        build(tmp_path, shards=4)
        with pytest.raises(ShardConfigError):
            ShardedDurabilityManager(str(tmp_path), shards=8)

    def test_none_adopts_the_recorded_shape(self, tmp_path):
        build(tmp_path, shards=3)
        manager = ShardedDurabilityManager(str(tmp_path))
        assert manager.shards == 3

    def test_foreign_scheme_is_rejected(self, tmp_path):
        build(tmp_path)
        path = os.path.join(str(tmp_path), "shards.json")
        with open(path, "w") as handle:
            json.dump({"shards": 4, "scheme": "rendezvous"}, handle)
        with pytest.raises(ShardConfigError):
            ShardedDurabilityManager(str(tmp_path))

    def test_zero_shards_is_rejected(self, tmp_path):
        with pytest.raises(ShardConfigError):
            ShardedDurabilityManager(str(tmp_path), shards=0)


class TestStats:
    def test_shard_stats_reports_every_shard(self, tmp_path):
        manager, store = build(tmp_path, rows=32)
        stats = manager.shard_stats()
        assert stats["shards"] == 4
        assert len(stats["per_shard"]) == 4
        assert sum(s["records"] for s in stats["per_shard"]) > 0
        for entry in stats["per_shard"]:
            assert entry["journal_bytes"] == manager.journal_bytes(
                entry["shard"])
            assert entry["journal_bytes"] > 0

    def test_shard_stats_sets_the_gauges(self, tmp_path):
        from repro import obs
        manager, _ = build(tmp_path)
        with obs.recording() as instrumentation:
            manager.shard_stats()
            gauges = instrumentation.metrics.snapshot()["gauges"]
        for sid in range(4):
            assert f"shard.{sid}.journal_bytes" in gauges
            assert f"shard.{sid}.records" in gauges

    def test_report_describe_totals(self, tmp_path):
        build(tmp_path)
        fresh = ShardedDurabilityManager(str(tmp_path))
        _, report = fresh.recover(StaticDatabase)
        described = report.describe()
        assert described["shards"] == 4
        assert described["records_total"] == sum(
            r.records_total for r in report.per_shard)
        assert described["records_replayed"] == sum(
            r.records_replayed for r in report.per_shard)
        assert len(described["per_shard"]) == 4
