"""Per-shard footprints: the false sharing the shard layer removes."""

import pytest

from repro.core import StaticDatabase, TemporalDatabase
from repro.errors import ConflictError, ShardConfigError
from repro.relational import Domain, Schema
from repro.sharding import ShardedDatabase
from repro.time import SimulatedClock

BASE = "01/01/80"


@pytest.fixture
def store():
    db = ShardedDatabase(StaticDatabase, shards=4,
                         clock=SimulatedClock(BASE))
    db.define("counters",
              Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER))
    for i in range(16):
        db.insert("counters", {"k": f"k{i}", "v": 0})
    return db


def keys_by_shard(store):
    """One resident key per shard id."""
    placed = {}
    for i in range(16):
        key = f"k{i}"
        placed.setdefault(store.shard_of_key("counters", {"k": key}), key)
    assert len(placed) == store.shards
    return placed


class TestFootprints:
    def test_keyed_write_touches_one_shard(self, store):
        layer = store.sessions()
        with layer.begin() as session:
            session.replace("counters", {"k": "k0"}, {"v": 1})
            assert session.footprint_shards() == [
                store.shard_of_key("counters", {"k": "k0"})]

    def test_get_touches_only_the_owning_shard(self, store):
        layer = store.sessions()
        session = layer.begin()
        rows = session.get("counters", {"k": "k3"})
        assert [row["v"] for row in rows] == [0]
        assert session.footprint_shards() == [
            store.shard_of_key("counters", {"k": "k3"})]
        session.abort()

    def test_get_requires_the_full_key(self, store):
        layer = store.sessions()
        session = layer.begin()
        with pytest.raises(ShardConfigError):
            session.get("counters", {"v": 0})
        session.abort()

    def test_whole_relation_read_touches_every_shard(self, store):
        layer = store.sessions()
        session = layer.begin()
        session.read("counters")
        assert session.footprint_shards() == list(range(store.shards))
        session.abort()

    def test_unroutable_delete_broadcasts(self, store):
        layer = store.sessions()
        with layer.begin() as session:
            session.delete("counters", {"v": 0})
            assert session.footprint_shards() == list(range(store.shards))
        assert store.snapshot("counters").cardinality == 0


class TestConflicts:
    def test_different_shards_do_not_conflict(self, store):
        placed = keys_by_shard(store)
        layer = store.sessions()
        first, second = layer.begin(), layer.begin()
        first.replace("counters", {"k": placed[0]}, {"v": 1})
        second.replace("counters", {"k": placed[1]}, {"v": 2})
        first.commit()
        second.commit()  # no ConflictError: disjoint pipelines
        rows = {r["k"]: r["v"] for r in store.snapshot("counters")}
        assert rows[placed[0]] == 1 and rows[placed[1]] == 2

    def test_same_shard_still_conflicts(self, store):
        layer = store.sessions()
        first, second = layer.begin(), layer.begin()
        first.replace("counters", {"k": "k5"}, {"v": 1})
        second.replace("counters", {"k": "k5"}, {"v": 2})
        first.commit()
        with pytest.raises(ConflictError):
            second.commit()

    def test_conflict_names_the_stale_shard(self, store):
        sid = store.shard_of_key("counters", {"k": "k5"})
        layer = store.sessions()
        first, second = layer.begin(), layer.begin()
        first.replace("counters", {"k": "k5"}, {"v": 1})
        second.replace("counters", {"k": "k5"}, {"v": 2})
        first.commit()
        with pytest.raises(ConflictError) as caught:
            second.commit()
        assert list(caught.value.relations) == [f"counters@{sid}"]

    def test_whole_relation_reader_conflicts_with_any_write(self, store):
        layer = store.sessions()
        reader, writer = layer.begin(), layer.begin()
        reader.read("counters")
        writer.replace("counters", {"k": "k1"}, {"v": 9})
        writer.commit()
        reader.replace("counters", {"k": "k2"}, {"v": 1})
        with pytest.raises(ConflictError):
            reader.commit()


class TestCommitTokens:
    def test_commit_token_is_the_vector(self, store):
        layer = store.sessions()
        with layer.begin() as session:
            session.replace("counters", {"k": "k0"}, {"v": 1})
        assert session.commit_token == store.log.vector()
        assert len(session.commit_token) == store.shards

    def test_read_only_session_certifies_without_committing(self, store):
        layer = store.sessions()
        before = store.log.vector()
        session = layer.begin()
        session.get("counters", {"k": "k0"})
        assert session.commit() is None
        assert store.log.vector() == before
        assert session.commit_token == before

    def test_cross_shard_session_commits_atomically(self, store):
        placed = keys_by_shard(store)
        layer = store.sessions()
        with layer.begin() as session:
            session.replace("counters", {"k": placed[0]}, {"v": 10})
            session.replace("counters", {"k": placed[3]}, {"v": 30})
        after = store.log.vector()
        rows = {r["k"]: r["v"] for r in store.snapshot("counters")}
        assert rows[placed[0]] == 10 and rows[placed[3]] == 30
        assert session.commit_time is not None
        # both involved shards logged the batch
        assert after[0] >= 1 and after[3] >= 1


class TestLayerRun:
    def test_run_retries_same_shard_contention(self, store):
        layer = store.sessions()

        def bump(session):
            rows = session.get("counters", {"k": "k7"})
            session.replace("counters", {"k": "k7"},
                            {"v": rows[0]["v"] + 1})

        for _ in range(5):
            layer.run(bump)
        rows = {r["k"]: r["v"] for r in store.snapshot("counters")}
        assert rows["k7"] == 5

    def test_temporal_kind_sessions_work(self):
        db = ShardedDatabase(TemporalDatabase, shards=3,
                             clock=SimulatedClock(BASE))
        db.define("counters",
                  Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER))
        layer = db.sessions()
        with layer.begin() as session:
            session.insert("counters", {"k": "a", "v": 1}, valid_from=BASE)
        assert len(db.history("counters")) == 1
