"""The sharded store behaves like one logical database of its kind."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import (DuplicateRelationError, ShardConfigError,
                          UnknownRelationError)
from repro.relational import Domain, Schema
from repro.sharding import ShardedDatabase, sharded_digest
from repro.time import SimulatedClock

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]
BASE = "01/01/80"


def counters_schema():
    return Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER)


def fresh(kind=StaticDatabase, shards=4):
    return ShardedDatabase(kind, shards=shards,
                           clock=SimulatedClock(BASE))


def load(store, n=20):
    store.define("counters", counters_schema())
    historical = store.kind.supports_historical_queries
    with store.begin() as txn:
        for i in range(n):
            if historical:
                store.insert("counters", {"k": f"k{i}", "v": i},
                             valid_from=BASE, txn=txn)
            else:
                store.insert("counters", {"k": f"k{i}", "v": i}, txn=txn)


class TestShape:
    def test_rows_spread_over_every_shard(self):
        store = fresh()
        load(store, 40)
        spread = store.spread("counters")
        assert sum(spread) == 40
        assert all(part > 0 for part in spread)

    def test_each_row_lives_on_its_hashed_shard(self):
        store = fresh()
        load(store, 20)
        for i in range(20):
            sid = store.shard_of_key("counters", {"k": f"k{i}"})
            rows = store.shard_databases[sid].snapshot("counters")
            assert any(row["k"] == f"k{i}" for row in rows)

    def test_from_shards_rejects_mixed_kinds(self):
        clock = SimulatedClock(BASE)
        with pytest.raises(ShardConfigError):
            ShardedDatabase.from_shards([StaticDatabase(clock=clock),
                                         TemporalDatabase(clock=clock)])

    def test_from_shards_rejects_empty(self):
        with pytest.raises(ShardConfigError):
            ShardedDatabase.from_shards([])

    def test_shard_of_key_requires_full_key(self):
        store = fresh()
        load(store, 2)
        with pytest.raises(ShardConfigError):
            store.shard_of_key("counters", {"v": 1})


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda cls: cls.__name__)
class TestEquivalence:
    """The same operations produce the same logical state, any shard count."""

    def drive(self, kind, shards):
        clock = SimulatedClock(BASE)
        if shards == 0:  # the unsharded reference
            db = kind(clock=clock)
        else:
            db = ShardedDatabase(kind, shards=shards, clock=clock)
        db.define("counters", counters_schema())
        kwargs = {"valid_from": BASE} if db.supports_historical_queries else {}
        for i in range(12):
            clock.set(Ticks.at(10 + i))
            db.insert("counters", {"k": f"k{i}", "v": i}, **kwargs)
        clock.set(Ticks.at(40))
        db.replace("counters", {"k": "k3"}, {"v": 333})
        clock.set(Ticks.at(41))
        db.delete("counters", {"k": "k7"})
        return db

    def test_snapshot_matches_unsharded(self, kind):
        reference = self.drive(kind, 0)
        for shards in (1, 3, 4):
            store = self.drive(kind, shards)
            assert (sorted(tuple(sorted(r.items()))
                           for r in store.snapshot("counters"))
                    == sorted(tuple(sorted(r.items()))
                              for r in reference.snapshot("counters")))

    def test_equal_stores_hash_equal(self, kind):
        first = self.drive(kind, 4)
        second = self.drive(kind, 4)
        assert sharded_digest(first) == sharded_digest(second)


class Ticks:
    """01/01/80 plus a fixed chronon offset (readable clock steps)."""

    @staticmethod
    def at(steps):
        from repro.time import Instant
        return Instant.parse(BASE) + steps


class TestCatalog:
    def test_ddl_broadcasts_to_every_shard(self):
        store = fresh()
        store.define("counters", counters_schema())
        for db in store.shard_databases:
            assert "counters" in db
        store.drop("counters")
        for db in store.shard_databases:
            assert "counters" not in db

    def test_duplicate_define_is_rejected(self):
        store = fresh()
        store.define("counters", counters_schema())
        with pytest.raises(DuplicateRelationError):
            store.define("counters", counters_schema())

    def test_unknown_relation_raises(self):
        store = fresh()
        with pytest.raises(UnknownRelationError):
            store.snapshot("nope")
        with pytest.raises(UnknownRelationError):
            store.drop("nope")


class TestCommits:
    def test_single_shard_commit_moves_one_shard_log(self):
        store = fresh()
        load(store, 8)
        before = store.log.vector()
        store.replace("counters", {"k": "k1"}, {"v": 100})
        after = store.log.vector()
        moved = [b != a for b, a in zip(before, after)]
        assert sum(moved) == 1
        sid = store.shard_of_key("counters", {"k": "k1"})
        assert moved[sid]

    def test_cross_shard_transaction_is_atomic_in_state(self):
        store = fresh()
        load(store, 8)
        a, b = "k0", "k1"
        assert (store.shard_of_key("counters", {"k": a})
                != store.shard_of_key("counters", {"k": b}))
        with store.begin() as txn:
            store.replace("counters", {"k": a}, {"v": 1000}, txn=txn)
            store.replace("counters", {"k": b}, {"v": 2000}, txn=txn)
        rows = {row["k"]: row["v"] for row in store.snapshot("counters")}
        assert rows[a] == 1000 and rows[b] == 2000

    def test_merged_log_orders_by_commit_time(self):
        store = fresh()
        load(store, 10)
        times = [record.commit_time for record in store.log]
        assert times == sorted(times)
        assert len(store.log) == sum(store.log.vector())

    def test_empty_transaction_still_commits(self):
        store = fresh()
        before = store.log.vector()
        with store.begin():
            pass
        assert sum(store.log.vector()) == sum(before) + 1


class TestQueries:
    def test_rollback_sees_past_states(self):
        store = fresh(RollbackDatabase, shards=3)
        load(store, 6)
        past = store.now()
        store.replace("counters", {"k": "k2"}, {"v": 999})
        rows = {r["k"]: r["v"] for r in store.rollback("counters", past)}
        assert rows["k2"] == 2
        now_rows = {r["k"]: r["v"] for r in store.snapshot("counters")}
        assert now_rows["k2"] == 999

    def test_history_and_timeslice_merge_shards(self):
        store = fresh(TemporalDatabase, shards=3)
        load(store, 6)
        assert len(store.history("counters")) == 6
        slice_rows = store.timeslice("counters", BASE)
        assert len(slice_rows) == 6

    def test_historical_queries_require_the_kind(self):
        store = fresh(StaticDatabase)
        load(store, 2)
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            store.history("counters")

    def test_delete_where_routes_matches(self):
        store = fresh(StaticDatabase)
        load(store, 10)
        store.delete_where("counters", lambda row: row["v"] >= 5)
        assert len(store.snapshot("counters")) == 5
