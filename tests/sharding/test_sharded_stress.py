"""The sharded stress harness audits clean and chaotic runs."""

import dataclasses

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.storage.faults import CrashPoint
from repro.workload import run_sharded

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]


class TestCleanRuns:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda c: c.__name__)
    def test_every_kind_passes_the_audit(self, kind):
        report = run_sharded(kind=kind, shards=3, sessions=3,
                             transactions=15, keys_per_session=6, seed=3)
        assert report.ok, dataclasses.asdict(report)
        assert report.committed == report.attempted
        assert report.lost_updates == 0
        assert report.sum_delta == 0

    def test_cross_shard_transfers_happen_and_conserve_the_sum(self):
        report = run_sharded(shards=4, sessions=4, transactions=40,
                             keys_per_session=8, cross_ratio=0.5, seed=1)
        assert report.ok
        assert report.cross_shard_commits > 0
        assert report.sum_delta == 0

    def test_aligned_placement_pins_workers_to_shards(self):
        report = run_sharded(shards=4, sessions=4, transactions=20,
                             keys_per_session=4, cross_ratio=0.0,
                             placement="aligned", seed=2)
        assert report.ok
        assert report.placement == "aligned"
        assert report.conflicts == 0  # disjoint shards: no false sharing

    def test_report_describe_round_trips(self):
        report = run_sharded(shards=2, sessions=2, transactions=10,
                             keys_per_session=4, seed=4)
        described = report.describe()
        assert described["ok"] is True
        assert described["shards"] == 2
        assert described["tps"] > 0
        assert described["latency_p95_s"] >= described["latency_p50_s"] >= 0


class TestChaosRuns:
    @pytest.mark.parametrize("crash", [CrashPoint.LOST_RECORD,
                                       CrashPoint.TORN_RECORD],
                             ids=lambda c: c.value)
    def test_crash_mid_run_loses_no_acknowledged_update(self, tmp_path,
                                                        crash):
        report = run_sharded(shards=3, sessions=3, transactions=30,
                             keys_per_session=6, cross_ratio=0.3, seed=5,
                             faults=crash, fault_at=40,
                             directory=str(tmp_path))
        assert report.crash_injected
        assert report.lost_updates == 0
        assert report.ok, dataclasses.asdict(report)
        assert report.recovery_is_durable_prefix is not False

    def test_durable_clean_run_survives_recovery(self, tmp_path):
        report = run_sharded(shards=2, sessions=2, transactions=10,
                             keys_per_session=4, seed=6,
                             directory=str(tmp_path))
        assert report.ok
        assert report.crashed == 0
