"""Stable hash partitioning: routing rules and restart survival."""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ShardRoutingError
from repro.sharding import SCHEME, Partitioner, stable_hash
from repro.time import Instant, Period
from repro.txn.transaction import Operation

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


class TestStableHash:
    def test_equal_inputs_hash_equal(self):
        assert stable_hash(["alice", 7]) == stable_hash(["alice", 7])

    def test_different_inputs_hash_differently_somewhere(self):
        values = {stable_hash([f"k{i}"]) for i in range(64)}
        assert len(values) > 32  # crc32 actually spreads

    def test_temporal_values_hash_after_canonical_encoding(self):
        instant = Instant.parse("01/01/80")
        assert stable_hash([instant]) == stable_hash([instant])
        period = Period(instant, Instant.parse("01/01/81"))
        assert stable_hash([period]) == stable_hash([period])

    def test_hash_survives_interpreter_restart(self):
        """The satellite regression: shard mapping must not depend on
        ``PYTHONHASHSEED`` — a salted hash would scatter every key on
        the next process's recovery."""
        keys = [f"w{w}k{i}" for w in range(4) for i in range(8)]
        script = (
            "import json, sys\n"
            "from repro.sharding import Partitioner, stable_hash\n"
            "p = Partitioner(4)\n"
            "keys = json.loads(sys.argv[1])\n"
            "print(json.dumps({\n"
            "  'hashes': [stable_hash([k]) for k in keys],\n"
            "  'shards': [p.shard_of_key([k]) for k in keys],\n"
            "}))\n"
        )

        def run(seed):
            env = dict(os.environ)
            env["PYTHONPATH"] = REPO_SRC
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", script, json.dumps(keys)],
                env=env, stdout=subprocess.PIPE, check=True)
            return json.loads(proc.stdout)

        here = {"hashes": [stable_hash([k]) for k in keys],
                "shards": [Partitioner(4).shard_of_key([k]) for k in keys]}
        assert run("0") == here
        assert run("12345") == here


class TestPartitioner:
    def test_single_shard_short_circuits(self):
        assert Partitioner(1).shard_of_key(["anything"]) == 0

    def test_at_least_one_shard(self):
        with pytest.raises(ValueError):
            Partitioner(0)

    def test_shard_of_values_requires_full_key(self):
        p = Partitioner(4)
        assert p.shard_of_values(("a", "b"), {"a": 1}) is None
        full = p.shard_of_values(("a", "b"), {"a": 1, "b": 2})
        assert full == p.shard_of_key([1, 2])

    def test_keyless_relations_pin_to_shard_zero(self):
        p = Partitioner(4)
        assert p.shard_of_values((), {"x": 1}) == 0
        op = Operation("delete", "r", {"match": None})
        assert p.shard_of_operation((), op) == 0

    def test_ddl_broadcasts(self):
        p = Partitioner(4)
        assert p.shard_of_operation(("k",),
                                    Operation("define", "r", {})) is None
        assert p.shard_of_operation(("k",),
                                    Operation("drop", "r", {})) is None

    def test_insert_routes_by_values(self):
        p = Partitioner(4)
        op = Operation("insert", "r", {"values": {"k": "x", "v": 1}})
        assert p.shard_of_operation(("k",), op) == p.shard_of_key(["x"])

    def test_partial_key_delete_broadcasts(self):
        p = Partitioner(4)
        op = Operation("delete", "r", {"match": {"v": 1}})
        assert p.shard_of_operation(("k",), op) is None

    def test_key_rewriting_replace_is_rejected(self):
        p = Partitioner(4)
        op = Operation("replace", "r",
                       {"match": {"k": "x"}, "updates": {"k": "y"}})
        with pytest.raises(ShardRoutingError):
            p.shard_of_operation(("k",), op)

    def test_identity_key_update_is_allowed(self):
        p = Partitioner(4)
        op = Operation("replace", "r",
                       {"match": {"k": "x"}, "updates": {"k": "x", "v": 2}})
        assert p.shard_of_operation(("k",), op) == p.shard_of_key(["x"])

    def test_describe_names_the_scheme(self):
        assert Partitioner(4).describe() == {"shards": 4, "scheme": SCHEME}
