"""Per-shard replication streams and vector-token read gating."""

import pytest

from repro.core import StaticDatabase
from repro.errors import ReplicaLagging
from repro.relational import Domain, Schema
from repro.replication import InProcessTransport
from repro.sharding import (ShardedDatabase, ShardedPrimary, ShardedReplica,
                            combined_digest, sharded_digest)
from repro.time import SimulatedClock

BASE = "01/01/80"
SHARDS = 4


def make_pair():
    transport = InProcessTransport()
    store = ShardedDatabase(StaticDatabase, shards=SHARDS,
                            clock=SimulatedClock(BASE))
    primary = ShardedPrimary("primary", store, transport)
    replica = ShardedReplica("replica", StaticDatabase, transport,
                             "primary", shards=SHARDS)
    primary.add_replica(replica)
    return store, primary, replica, transport


def converge(primary, replica, rounds=500):
    for _ in range(rounds):
        if replica.applied_vector() >= primary.current_vector():
            return
        primary.pump()
        replica.pump()
    raise AssertionError(
        f"no convergence: primary {primary.current_vector()}, "
        f"replica {replica.applied_vector()}")


def load(store, n=12):
    store.define("counters",
                 Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER))
    for i in range(n):
        store.insert("counters", {"k": f"k{i}", "v": i})


class TestStreams:
    def test_every_shard_ships_and_replica_converges(self):
        store, primary, replica, _ = make_pair()
        load(store)
        converge(primary, replica)
        assert len(replica.read("counters")) == 12
        assert replica.digest() == combined_digest(store.shard_databases)

    def test_streams_advance_independently(self):
        store, primary, replica, _ = make_pair()
        load(store)
        converge(primary, replica)
        sid = store.shard_of_key("counters", {"k": "k0"})
        store.replace("counters", {"k": "k0"}, {"v": 99})
        # only the owning shard's stream has anything new to ship
        vector = primary.current_vector()
        applied = replica.applied_vector()
        behind = [i for i in range(SHARDS) if vector[i] > applied[i]]
        assert behind == [sid]

    def test_catchup_cold_join(self):
        store, primary, replica, transport = make_pair()
        load(store)
        primary.pump()
        late = ShardedReplica("late", StaticDatabase, transport,
                              "primary", shards=SHARDS)
        primary.add_replica(late)
        late.request_catchup()
        converge(primary, late)
        assert late.digest() == replica_digest_of(store)

    def test_divergence_check_passes_on_clean_streams(self):
        store, primary, replica, _ = make_pair()
        load(store)
        converge(primary, replica)
        for _ in range(3):
            primary.heartbeat()
            replica.pump()
        replica.check()  # no DivergenceError


def replica_digest_of(store):
    return combined_digest(store.shard_databases)


class TestVectorTokens:
    def test_read_your_writes_gates_per_shard(self):
        store, primary, replica, _ = make_pair()
        load(store)
        converge(primary, replica)
        layer = store.sessions()
        with layer.begin() as session:
            session.replace("counters", {"k": "k1"}, {"v": 100})
        token = session.commit_token
        assert len(token) == SHARDS
        with pytest.raises(ReplicaLagging):
            replica.read("counters", token=token)
        converge(primary, replica)
        rows = {r["k"]: r["v"] for r in replica.read("counters",
                                                     token=token)}
        assert rows["k1"] == 100

    def test_untouched_shards_do_not_block_the_read(self):
        store, primary, replica, _ = make_pair()
        load(store)
        converge(primary, replica)
        layer = store.sessions()
        with layer.begin() as session:
            session.replace("counters", {"k": "k2"}, {"v": 7})
        # a token at the replica's applied vector reads without waiting
        rows = replica.read("counters", token=replica.applied_vector())
        assert len(rows) == 12

    def test_sharded_digest_matches_across_equal_stores(self):
        store, primary, replica, _ = make_pair()
        load(store)
        converge(primary, replica)
        replica_store = ShardedDatabase.from_shards(
            [r.database for r in replica.replicas])
        assert sharded_digest(replica_store) == sharded_digest(store)
