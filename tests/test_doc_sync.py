"""The doc-sync tool: generated doc blocks must track the live code."""

import importlib.util
import os
import sys

import pytest

TOOL = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "tools", "doc_sync.py")


@pytest.fixture(scope="module")
def doc_sync():
    # Importing the tool pins repro.core.columnar._np = None (so its
    # transcripts are machine-independent); restore the real kernels
    # afterwards so this module cannot skew the numpy-parametrized
    # suites running in the same process.
    from repro.core import columnar
    saved = columnar._np
    spec = importlib.util.spec_from_file_location("doc_sync", TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("doc_sync", module)
    spec.loader.exec_module(module)
    yield module
    columnar._np = saved


def test_generators_are_deterministic(doc_sync):
    for name, generator in doc_sync.GENERATORS.items():
        assert generator() == generator(), name


def test_stale_block_is_regenerated(doc_sync):
    text = ("intro\n"
            "<!-- doc-sync:begin planning-costs -->\n"
            "OUT OF DATE\n"
            "<!-- doc-sync:end -->\n"
            "outro\n")
    synced = doc_sync.sync_text(text, "docs/example.md")
    assert "OUT OF DATE" not in synced
    assert "| `C_SETUP` |" in synced
    assert synced.startswith("intro\n<!-- doc-sync:begin planning-costs -->")
    assert synced.endswith("<!-- doc-sync:end -->\noutro\n")
    # Re-syncing the synced text is a fixed point.
    assert doc_sync.sync_text(synced, "docs/example.md") == synced


def test_text_without_markers_passes_through(doc_sync):
    assert doc_sync.sync_text("plain prose\n", "docs/x.md") == "plain prose\n"


def test_unknown_generator_is_an_error(doc_sync):
    text = ("<!-- doc-sync:begin no-such-generator -->\n"
            "body\n"
            "<!-- doc-sync:end -->\n")
    with pytest.raises(SystemExit, match="unknown doc-sync generator"):
        doc_sync.sync_text(text, "docs/x.md")


def test_begin_without_end_is_an_error(doc_sync):
    text = "<!-- doc-sync:begin planning-costs -->\nnever closed\n"
    with pytest.raises(SystemExit, match="without an\\s+end marker"):
        doc_sync.sync_text(text, "docs/x.md")


def test_committed_docs_are_fresh(doc_sync, capsys):
    # The same assertion CI makes: --check on the real docs/ tree.
    assert doc_sync.run(write=False) == 0
    assert "all generated blocks are fresh" in capsys.readouterr().out


def test_transcripts_are_pinned_to_fallback_kernels(doc_sync):
    # doc_sync pins _np = None so transcripts match on machines without
    # numpy (CI); the columnar cost in the worked example depends on it.
    from repro.core import columnar
    assert columnar._np is None
    assert "columnar=46.4" in doc_sync.GENERATORS["planning-explain-asof"]()
