"""Shared fixtures: the paper's faculty scenario, reusable across suites.

``build_faculty(cls, **kwargs)`` drives the exact transaction narrative of
the paper's Section 4 into a database of any kind:

========  ==========================================================
08/25/77  Merrie recorded as associate, valid from 09/01/77 (postactive)
12/01/82  Tom recorded as full, valid from 12/05/82 (postactive)
12/07/82  correction: Tom is actually an associate
12/15/82  Merrie's promotion to full, valid from 12/01/82 (retroactive)
01/10/83  Mike recorded as assistant, valid from 01/01/83
02/25/84  Mike leaves effective 03/01/84 (postactive deletion)
========  ==========================================================
"""

from typing import Tuple

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.relational import Domain, Schema
from repro.time import SimulatedClock

RANK = Domain.enumeration("rank", "assistant", "associate", "full")


def faculty_schema() -> Schema:
    return Schema.of(key=["name"], name=Domain.STRING, rank=RANK)


def build_faculty(db_class, **db_kwargs):
    """The paper's faculty history in a database of *db_class*.

    Returns ``(database, clock)``; the clock ends at 02/25/84.
    """
    clock = SimulatedClock("01/01/77")
    database = db_class(clock=clock, **db_kwargs)
    database.define("faculty", faculty_schema())
    historical = database.kind.supports_historical_queries

    def args(**valid):
        return valid if historical else {}

    clock.set("08/25/77")
    database.insert("faculty", {"name": "Merrie", "rank": "associate"},
                    **args(valid_from="09/01/77"))
    clock.set("12/01/82")
    database.insert("faculty", {"name": "Tom", "rank": "full"},
                    **args(valid_from="12/05/82"))
    clock.set("12/07/82")
    database.replace("faculty", {"name": "Tom"}, {"rank": "associate"},
                     **args(valid_from="12/05/82"))
    clock.set("12/15/82")
    database.replace("faculty", {"name": "Merrie"}, {"rank": "full"},
                     **args(valid_from="12/01/82"))
    clock.set("01/10/83")
    database.insert("faculty", {"name": "Mike", "rank": "assistant"},
                    **args(valid_from="01/01/83"))
    clock.set("02/25/84")
    database.delete("faculty", {"name": "Mike"},
                    **args(valid_from="03/01/84"))
    return database, clock


@pytest.fixture
def static_faculty():
    return build_faculty(StaticDatabase)


@pytest.fixture
def rollback_faculty():
    return build_faculty(RollbackDatabase)


@pytest.fixture
def rollback_faculty_states():
    return build_faculty(RollbackDatabase, representation="states")


@pytest.fixture
def historical_faculty():
    return build_faculty(HistoricalDatabase)


@pytest.fixture
def temporal_faculty():
    return build_faculty(TemporalDatabase)
