"""Unit tests for the tquel command-line shell."""

import io

import pytest

from repro.cli import build_parser, main, make_session, repl, run_source
from repro.core import DatabaseKind
from repro.storage import Journal


SCRIPT = """
create faculty (name = string, rank = string) key (name)
append to faculty (name = "Merrie", rank = "full") valid from "12/01/82"
range of f is faculty
retrieve (f.rank) where f.name = "Merrie"
"""


class TestArguments:
    def test_default_kind_is_temporal(self):
        args = build_parser().parse_args([])
        assert args.kind == "temporal"

    def test_kind_choices(self):
        for kind in ("static", "rollback", "historical", "temporal"):
            assert build_parser().parse_args(["--kind", kind]).kind == kind

    def test_bad_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--kind", "quantum"])

    def test_make_session_kinds(self):
        args = build_parser().parse_args(
            ["--kind", "historical", "--simulated-clock", "01/01/80"])
        session = make_session(args)
        assert session.database.kind is DatabaseKind.HISTORICAL


class TestRunSource:
    def test_script_runs_and_prints(self, capsys):
        args = build_parser().parse_args(
            ["--simulated-clock", "01/01/80"])
        session = make_session(args)
        code = run_source(session, SCRIPT)
        assert code == 0
        assert "full" in capsys.readouterr().out

    def test_error_returns_nonzero(self, capsys):
        args = build_parser().parse_args(["--simulated-clock", "01/01/80"])
        session = make_session(args)
        code = run_source(session, "retrieve (f.rank)")
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_main_with_command(self, capsys):
        code = main(["--simulated-clock", "01/01/80", "-c",
                     "create r (x = string)"])
        assert code == 0

    def test_main_with_file(self, tmp_path, capsys):
        script = tmp_path / "s.tq"
        script.write_text(SCRIPT)
        code = main(["--simulated-clock", "01/01/80", "-f", str(script)])
        assert code == 0
        assert "full" in capsys.readouterr().out

    def test_taxonomy_error_surfaces(self, capsys):
        code = main(["--kind", "static", "--simulated-clock", "01/01/80",
                     "-c", 'create r (x = string); range of v is r;'
                           ' retrieve (v.x) as of "01/01/80"'])
        assert code == 1
        assert "transaction time" in capsys.readouterr().err


class TestJournalFlags:
    def test_journal_and_replay(self, tmp_path, capsys):
        journal = str(tmp_path / "db.journal")
        assert main(["--simulated-clock", "01/01/80",
                     "--journal", journal, "-c", SCRIPT]) == 0
        # Replay into a new process/session.
        assert main(["--replay", journal, "-c",
                     "range of f is faculty; "
                     'retrieve (f.name) where f.rank = "full"']) == 0
        assert "Merrie" in capsys.readouterr().out


class TestRepl:
    def run_repl(self, lines, kind="temporal"):
        args = build_parser().parse_args(
            ["--kind", kind, "--simulated-clock", "01/01/80"])
        session = make_session(args)
        stdin = io.StringIO("\n".join(lines) + "\n")
        out = io.StringIO()
        code = repl(session, stdin=stdin, out=out)
        return code, out.getvalue()

    def test_quit(self):
        code, output = self.run_repl([".quit"])
        assert code == 0
        assert "tquel shell" in output

    def test_statement_and_result(self):
        code, output = self.run_repl([
            "create faculty (name = string, rank = string)",
            'append to faculty (name = "M", rank = "full") '
            'valid from "01/01/80"',
            "range of f is faculty",
            "retrieve (f.rank)",
            ".quit",
        ])
        assert "full" in output

    def test_dot_kind(self):
        _, output = self.run_repl([".kind", ".quit"])
        assert "temporal database" in output
        assert "rollback: yes" in output

    def test_dot_relations_and_figure(self):
        _, output = self.run_repl([
            "create faculty (name = string, rank = string)",
            'append to faculty (name = "M", rank = "full") '
            'valid from "01/01/80"',
            ".relations",
            ".figure faculty",
            ".quit",
        ])
        assert "faculty" in output
        assert "transaction (start)" in output

    def test_dot_log_and_clock(self):
        _, output = self.run_repl([
            "create r (x = string)",
            ".log",
            ".clock 06/01/80",
            ".quit",
        ])
        assert "define r" in output
        assert "clock at 1980-06-01" in output

    def test_dot_save(self, tmp_path):
        target = str(tmp_path / "dump.json")
        _, output = self.run_repl([
            "create r (x = string)",
            f".save {target}",
            ".quit",
        ])
        assert "saved" in output
        import json
        with open(target) as handle:
            assert json.load(handle)["kind"] == "temporal"

    def test_error_recovers(self):
        _, output = self.run_repl([
            "retrieve (f.rank)",  # error: no range variable
            "create r (x = string)",
            ".quit",
        ])
        assert "error" in output

    def test_unknown_dot_command(self):
        _, output = self.run_repl([".wat", ".quit"])
        assert "unknown command" in output

    def test_eof_exits(self):
        code, _ = self.run_repl([])
        assert code == 0

    def test_dot_migrate_upgrade(self):
        _, output = self.run_repl([
            "create stock (item = string)",
            'append to stock (item = "widget")',
            ".migrate temporal",
            ".kind",
            ".quit",
        ], kind="static")
        assert "migrated to a temporal database" in output
        assert "rollback: yes" in output

    def test_dot_migrate_lossy_needs_force(self):
        _, output = self.run_repl([
            ".migrate static",
            ".migrate static force",
            ".kind",
            ".quit",
        ], kind="temporal")
        assert "allow_loss" in output  # first attempt refused
        assert "migrated to a static database" in output

    def test_dot_explain(self):
        _, output = self.run_repl([
            "create stock (item = string)",
            'append to stock (item = "widget") valid from "01/01/80"',
            "range of s is stock",
            '.explain retrieve (s.item) where s.item = "widget"',
            ".quit",
        ])
        assert "candidates" in output
        assert "pushed" in output

    def test_dot_explain_error(self):
        _, output = self.run_repl([".explain retrieve (x.y)", ".quit"])
        assert "error" in output

    def test_dot_migrate_usage(self):
        _, output = self.run_repl([".migrate quantum", ".quit"])
        assert "usage: .migrate" in output

    def test_range_bindings_survive_migration(self):
        _, output = self.run_repl([
            "create stock (item = string)",
            'append to stock (item = "widget") valid from "01/01/80"',
            "range of s is stock",
            ".migrate historical force",
            "retrieve (s.item)",
            ".quit",
        ], kind="temporal")
        assert "widget" in output


class TestReproCLI:
    """The ``repro`` observability console script."""

    def test_stats_demo_shows_instrumented_layers(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["stats"]) == 0
        output = capsys.readouterr().out
        assert "commit.batches" in output
        assert "index.cache.hits" in output
        assert "commit.apply" in output  # nonzero commit spans
        assert "commit.apply_seconds" in output

    def test_stats_json(self, capsys):
        import json
        from repro.cli import repro_main
        assert repro_main(["stats", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["instrumentation_enabled"] is True
        assert snapshot["metrics"]["counters"]["commit.batches"] > 0
        assert snapshot["metrics"]["counters"]["index.cache.hits"] > 0
        assert snapshot["spans"]["commit.apply"]["count"] > 0

    def test_stats_on_a_script(self, capsys, tmp_path):
        from repro.cli import repro_main
        script = tmp_path / "script.tq"
        script.write_text(SCRIPT)
        assert repro_main(["stats", "-f", str(script)]) == 0
        assert "tquel.statements" in capsys.readouterr().out

    def test_stats_script_error(self, capsys, tmp_path):
        from repro.cli import repro_main
        script = tmp_path / "script.tq"
        script.write_text("retrieve (f.rank)")  # unbound variable
        assert repro_main(["stats", "-f", str(script)]) == 1
        assert "error" in capsys.readouterr().err

    def test_trace_emits_json_lines(self, capsys):
        import json
        from repro.cli import repro_main
        assert repro_main(["trace", "--limit", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        rows = [json.loads(line) for line in lines]
        assert all({"name", "span_id", "parent_id", "duration_s"}
                   <= set(row) for row in rows)

    def test_trace_to_file(self, capsys, tmp_path):
        import json
        from repro.cli import repro_main
        target = tmp_path / "spans.jsonl"
        assert repro_main(["trace", "--out", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        rows = [json.loads(line)
                for line in target.read_text().strip().splitlines()]
        assert any(row["name"] == "commit.apply" for row in rows)

    def test_subcommand_required(self):
        import pytest as _pytest
        from repro.cli import repro_main
        with _pytest.raises(SystemExit):
            repro_main([])

    def test_dot_stats_command(self):
        _, output = TestRepl().run_repl([".stats", ".quit"])
        assert "instrumentation: off" in output


class TestDurabilityVerbs:
    """The ``repro checkpoint`` / ``repro recover`` verbs."""

    def populate(self, directory, steps=None):
        from repro.core import TemporalDatabase
        from repro.storage import DurabilityManager
        from tests.storage.probes import drive_faculty
        manager = DurabilityManager(directory)
        database, _ = manager.recover(TemporalDatabase)
        drive_faculty(database, stop=steps)
        return manager

    def test_recover_reports_full_replay(self, capsys, tmp_path):
        from repro.cli import repro_main
        directory = str(tmp_path / "dur")
        self.populate(directory)
        assert repro_main(["recover", "--dir", directory]) == 0
        output = capsys.readouterr().out
        assert "full journal replay" in output
        assert "records replayed:   7 of 7" in output
        assert "relation: faculty" in output

    def test_checkpoint_then_recover_uses_it(self, capsys, tmp_path):
        from repro.cli import repro_main
        directory = str(tmp_path / "dur")
        self.populate(directory)
        assert repro_main(["checkpoint", "--dir", directory]) == 0
        assert "commit index 7" in capsys.readouterr().out
        assert repro_main(["recover", "--dir", directory]) == 0
        output = capsys.readouterr().out
        assert "checkpoint at commit index 7" in output
        assert "records replayed:   0 of 7" in output

    def test_recover_kind_comes_from_checkpoint(self, capsys, tmp_path):
        import json
        from repro.cli import repro_main
        from repro.core import RollbackDatabase
        from repro.storage import DurabilityManager
        from tests.storage.probes import drive_faculty
        directory = str(tmp_path / "dur")
        manager = DurabilityManager(directory)
        database, _ = manager.recover(RollbackDatabase)
        drive_faculty(database, stop=3)
        manager.checkpoint()
        # --kind says temporal, but the checkpoint knows better.
        assert repro_main(["recover", "--dir", directory,
                           "--kind", "temporal", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "static rollback"
        assert report["full_replay"] is False

    def test_recover_full_flag_ignores_checkpoints(self, capsys, tmp_path):
        import json
        from repro.cli import repro_main
        directory = str(tmp_path / "dur")
        manager = self.populate(directory)
        manager.checkpoint()
        assert repro_main(["recover", "--dir", directory, "--full",
                           "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["full_replay"] is True
        assert report["records_replayed"] == 7

    def test_checkpoint_runs_script_first(self, capsys, tmp_path):
        from repro.cli import repro_main
        directory = str(tmp_path / "dur")
        script = tmp_path / "setup.tq"
        script.write_text(SCRIPT)
        assert repro_main(["checkpoint", "--dir", directory,
                           "-f", str(script)]) == 0
        assert "commit index 2" in capsys.readouterr().out  # create + append
        assert repro_main(["recover", "--dir", directory]) == 0
        assert "relation: faculty" in capsys.readouterr().out

    def test_recover_reports_torn_tail_repair(self, capsys, tmp_path):
        from repro.cli import repro_main
        directory = str(tmp_path / "dur")
        manager = self.populate(directory)
        _, live_path = manager.segments()[-1]
        with open(live_path, "ab") as handle:
            handle.write(b"r1 500 00000000 {\"torn")
        assert repro_main(["recover", "--dir", directory]) == 0
        assert "torn tail repaired" in capsys.readouterr().out

    def test_recover_error_surfaces(self, capsys, tmp_path):
        from repro.cli import repro_main
        directory = str(tmp_path / "dur")
        manager = self.populate(directory)
        _, live_path = manager.segments()[-1]
        with open(live_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[1] = b"r1 4 00000000 {\"x\": 2}\n"
        with open(live_path, "wb") as handle:
            handle.writelines(lines)
        assert repro_main(["recover", "--dir", directory]) == 1
        assert "corrupt journal record" in capsys.readouterr().err


class TestStressVerb:
    """The ``repro stress`` verb: run the harness, audit, report."""

    def test_stress_prints_the_audit(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["stress", "--sessions", "2", "--ops", "10",
                           "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "committed:          20 of 20 attempted" in output
        assert "lost updates:       0" in output
        assert "strictly increasing" in output
        assert "audit: ok" in output

    def test_stress_json_report(self, capsys):
        import json
        from repro.cli import repro_main
        assert repro_main(["stress", "--sessions", "2", "--ops", "5",
                           "--kind", "static", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["committed"] == 10
        assert report["lost_updates"] == 0
        assert report["serial_equivalent"] is True

    def test_stress_chaos_mode_audits_recovery(self, capsys, tmp_path):
        from repro.cli import repro_main
        assert repro_main(["stress", "--kind", "static", "--faults",
                           "lost-record", "--fault-at", "10",
                           "--sessions", "2", "--ops", "20",
                           "--dir", str(tmp_path / "dur")]) == 0
        output = capsys.readouterr().out
        assert "durable prefix intact: True" in output
        assert "audit: ok" in output

    def test_stress_chaos_defaults_to_a_temporary_directory(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["stress", "--kind", "static", "--faults",
                           "torn-record", "--fault-at", "5",
                           "--sessions", "2", "--ops", "10"]) == 0
        assert "audit: ok" in capsys.readouterr().out

    def test_stress_rejects_checkpoint_crash_points(self):
        from repro.cli import repro_main
        with pytest.raises(SystemExit):
            repro_main(["stress", "--faults", "torn-checkpoint"])

    def test_stress_admission_knobs_shed_load(self, capsys):
        import json
        from repro.cli import repro_main
        repro_main(["stress", "--sessions", "4", "--ops", "10",
                    "--max-active", "1", "--max-queue", "0", "--json"])
        report = json.loads(capsys.readouterr().out)
        # With one slot and no queue some work is shed, none is lost.
        assert report["lost_updates"] == 0
        assert report["committed"] + report["shed"] <= report["attempted"]


class TestReplicationVerbs:
    """``repro digest`` / ``repro promote`` / ``repro replicate``."""

    @pytest.fixture
    def durable_dir(self, tmp_path):
        from repro.core import TemporalDatabase
        from repro.storage import DurabilityManager
        from tests.storage.probes import drive_faculty

        directory = str(tmp_path / "dur")
        manager = DurabilityManager(directory)
        database, _ = manager.recover(TemporalDatabase)
        drive_faculty(database, stop=5)
        manager.checkpoint()
        drive_faculty(database, start=5)
        return directory

    def test_digest_round_trips_checkpoint_and_full_replay(self, capsys,
                                                           durable_dir):
        from repro.cli import repro_main
        assert repro_main(["digest", "--dir", durable_dir]) == 0
        fast = capsys.readouterr().out.strip()
        assert repro_main(["digest", "--dir", durable_dir, "--full"]) == 0
        slow = capsys.readouterr().out.strip()
        # Checkpoint + tail and full replay agree on the canonical state.
        assert fast == slow
        assert len(fast) == 64  # a bare sha256 hex digest

    def test_digest_json_reports_the_recovery_path(self, capsys,
                                                   durable_dir):
        import json
        from repro.cli import repro_main
        assert repro_main(["digest", "--dir", durable_dir, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["records"] == 7
        assert report["full_replay"] is False
        assert report["kind"] == "temporal"

    def test_promote_bumps_the_epoch_durably(self, capsys, durable_dir):
        import json
        from repro.cli import repro_main
        assert repro_main(["promote", "--dir", durable_dir]) == 0
        output = capsys.readouterr().out
        assert "epoch:   1" in output
        # A second promotion reads the persisted epoch back.
        assert repro_main(["promote", "--dir", durable_dir,
                           "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["epoch"] == 2
        assert report["records"] == 7

    def test_replicate_prints_the_audit(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["replicate", "--writers", "2", "--ops", "6",
                           "--replicas", "2", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "committed:          12 of 12 attempted" in output
        assert "lost durable:       0" in output
        assert "converged" in output
        assert "audit: ok" in output

    def test_replicate_json_with_failover(self, capsys):
        import json
        from repro.cli import repro_main
        assert repro_main(["replicate", "--writers", "2", "--ops", "8",
                           "--replicas", "2", "--seed", "5",
                           "--failover-at", "10", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["failover_performed"] is True
        assert report["final_epoch"] == 1
        assert report["lost_durable_commits"] == 0


class TestShardStressVerb:
    """The ``repro shard-stress`` verb over the sharded store."""

    def test_shard_stress_prints_the_audit(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["shard-stress", "--shards", "3", "--sessions",
                           "3", "--ops", "10", "--keys", "6",
                           "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "committed:          30 of 30 attempted" in output
        assert "shard 0:" in output and "shard 2:" in output
        assert "lost updates:       0" in output
        assert "audit: ok" in output

    def test_shard_stress_json_report(self, capsys):
        import json
        from repro.cli import repro_main
        assert repro_main(["shard-stress", "--shards", "2", "--sessions",
                           "2", "--ops", "5", "--keys", "4", "--cross",
                           "0.5", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["committed"] == 10
        assert report["sum_delta"] == 0
        assert len(report["per_shard"]) == 2

    def test_shard_stress_chaos_audits_recovery(self, capsys, tmp_path):
        from repro.cli import repro_main
        assert repro_main(["shard-stress", "--shards", "3", "--sessions",
                           "2", "--ops", "20", "--keys", "6", "--cross",
                           "0.3", "--faults", "lost-record",
                           "--fault-at", "25",
                           "--dir", str(tmp_path / "dur")]) == 0
        output = capsys.readouterr().out
        assert "durable prefix:     True" in output
        assert "audit: ok" in output

    def test_shard_stress_chaos_uses_a_temporary_directory(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["shard-stress", "--shards", "2", "--sessions",
                           "2", "--ops", "20", "--keys", "4", "--faults",
                           "torn-record", "--fault-at", "25"]) == 0
        assert "audit: ok" in capsys.readouterr().out

    def test_stats_shards_surfaces_per_shard_metrics(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["stats", "--shards", "3"]) == 0
        output = capsys.readouterr().out
        assert "shard.0.commits" in output
        assert "shard.2.records" in output
        assert "shard.0.journal_bytes" in output
        assert "sharding.cross_commits" in output


class TestObservabilityVerbs:
    """``repro health`` / ``repro bench-diff`` / offline ``repro trace``."""

    def test_health_ok_under_loose_objectives(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["health", "--ops", "5"]) == 0
        output = capsys.readouterr().out
        assert "health: ok" in output
        for op_class in ("read", "single_shard_write", "cross_shard_write"):
            assert op_class in output

    def test_health_json_reports_every_class(self, capsys):
        import json
        from repro.cli import repro_main
        assert repro_main(["health", "--ops", "5", "--json"]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["ok"] is True
        for op_class in ("read", "single_shard_write", "cross_shard_write"):
            assert health["classes"][op_class]["count"] == 5

    def test_health_burned_budget_exits_nonzero(self, capsys):
        from repro.cli import repro_main
        # A 1-nanosecond objective: every transaction misses it.
        assert repro_main(["health", "--ops", "5", "--read-ms", "0.000001",
                           "--write-ms", "0.000001",
                           "--cross-ms", "0.000001"]) == 1
        assert "BUDGET BURNED" in capsys.readouterr().out

    def test_stats_openmetrics_exposition(self, capsys):
        from repro.cli import repro_main
        assert repro_main(["stats", "--openmetrics"]) == 0
        output = capsys.readouterr().out
        assert "# TYPE repro_commit_batches counter" in output
        assert "repro_commit_batches_total" in output
        assert output.endswith("# EOF\n")

    def write_report(self, tmp_path, name, tps):
        import json
        path = tmp_path / name
        path.write_text(json.dumps({"ingest": {"throughput_tps": tps}}))
        return str(path)

    def test_bench_diff_ok_exits_zero(self, capsys, tmp_path):
        from repro.cli import repro_main
        baseline = self.write_report(tmp_path, "base.json", 100.0)
        fresh = self.write_report(tmp_path, "fresh.json", 95.0)
        assert repro_main(["bench-diff", "--baseline", baseline,
                           "--fresh", fresh]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_bench_diff_regression_exits_nonzero(self, capsys, tmp_path):
        from repro.cli import repro_main
        baseline = self.write_report(tmp_path, "base.json", 100.0)
        fresh = self.write_report(tmp_path, "fresh.json", 10.0)
        assert repro_main(["bench-diff", "--baseline", baseline,
                           "--fresh", fresh]) == 1
        output = capsys.readouterr().out
        assert "REGRESSED" in output
        assert "ingest.throughput_tps" in output

    def test_bench_diff_json(self, capsys, tmp_path):
        import json
        from repro.cli import repro_main
        baseline = self.write_report(tmp_path, "base.json", 100.0)
        fresh = self.write_report(tmp_path, "fresh.json", 10.0)
        assert repro_main(["bench-diff", "--baseline", baseline,
                           "--fresh", fresh, "--json"]) == 1
        result = json.loads(capsys.readouterr().out)
        assert result["ok"] is False
        assert result["rows"][0]["metric"] == "ingest.throughput_tps"


class TestTraceTreeVerb:
    """``repro trace --txn`` reconstructing lineage from exported JSONL."""

    def write_jsonl(self, path, rows):
        import json
        path.write_text("".join(json.dumps(row) + "\n" for row in rows))
        return str(path)

    def spans(self, tmp_path):
        return self.write_jsonl(tmp_path / "spans.jsonl", [
            {"name": "concurrency.run", "span_id": 1, "parent_id": None,
             "trace_id": "txn-1", "started_at": 0.0, "duration_s": 0.01,
             "attributes": {}},
            {"name": "sharding.cross_commit", "span_id": 2, "parent_id": 1,
             "trace_id": "txn-1", "started_at": 0.002,
             "duration_s": 0.005, "attributes": {"shards": 2}},
            {"name": "replication.ship", "span_id": 3, "parent_id": 2,
             "trace_id": "txn-1", "started_at": 0.004,
             "duration_s": 0.001, "attributes": {}},
            {"name": "other.txn", "span_id": 9, "parent_id": None,
             "trace_id": "txn-2", "started_at": 0.0, "duration_s": 0.01,
             "attributes": {}},
        ])

    def test_renders_one_tree_with_events(self, capsys, tmp_path):
        from repro.cli import repro_main
        spans = self.spans(tmp_path)
        events = self.write_jsonl(tmp_path / "events.jsonl", [
            {"seq": 1, "ts": 0.0, "kind": "txn.begin", "txn": "txn-1",
             "attrs": {}},
            {"seq": 2, "ts": 0.01, "kind": "txn.commit", "txn": "txn-1",
             "attrs": {"token": 4}},
            {"seq": 3, "ts": 0.02, "kind": "txn.begin", "txn": "txn-2",
             "attrs": {}},
        ])
        assert repro_main(["trace", "--txn", "txn-1", "--input", spans,
                           "--events-input", events]) == 0
        output = capsys.readouterr().out
        assert "trace txn-1: 3 span(s), 1 root(s)" in output
        assert "- concurrency.run" in output
        assert "sharding.cross_commit" in output  # indented child
        assert "[shards=2]" in output
        assert "events (2):" in output
        assert "txn.commit  token=4" in output
        assert "txn-2" not in output  # the other transaction is filtered

    def test_unknown_txn_exits_nonzero(self, capsys, tmp_path):
        from repro.cli import repro_main
        assert repro_main(["trace", "--txn", "txn-404", "--input",
                           self.spans(tmp_path)]) == 1
        assert "no spans recorded" in capsys.readouterr().out

    def test_orphaned_parent_is_reported_not_hidden(self, capsys,
                                                    tmp_path):
        from repro.cli import repro_main
        spans = self.write_jsonl(tmp_path / "spans.jsonl", [
            {"name": "concurrency.run", "span_id": 5, "parent_id": None,
             "trace_id": "txn-1", "started_at": 0.0, "duration_s": 0.01,
             "attributes": {}},
            # Its parent fell off the ring: span 99 is not in the file.
            {"name": "journal.append", "span_id": 6, "parent_id": 99,
             "trace_id": "txn-1", "started_at": 0.001,
             "duration_s": 0.001, "attributes": {}},
        ])
        assert repro_main(["trace", "--txn", "txn-1",
                           "--input", spans]) == 0
        assert "2 root(s), 1 orphaned" in capsys.readouterr().out

    def test_shard_stress_replicas_flow_into_the_report(self, capsys,
                                                        tmp_path):
        import json
        from repro.cli import repro_main
        trace_out = str(tmp_path / "spans.jsonl")
        assert repro_main(["shard-stress", "--shards", "2", "--sessions",
                           "2", "--ops", "10", "--keys", "4", "--cross",
                           "0.5", "--replicas", "1", "--dir",
                           str(tmp_path / "store"), "--trace-out",
                           trace_out, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["replicas"] == 1
        assert report["replica_converged"] is True
        assert report["replica_digest_match"] is True
        assert report["sample_cross_txn"]
        assert report["trace_path"] == trace_out
        # The export really is consumable by the offline tree renderer.
        assert repro_main(["trace", "--txn", report["sample_cross_txn"],
                           "--input", trace_out]) == 0
        assert "1 root(s)" in capsys.readouterr().out
