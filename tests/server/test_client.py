"""The client's retry, failover, deadline and read-your-writes posture.

Each test wires a :class:`~repro.client.ReproClient` to an in-process
:class:`~repro.server.ReproServer` through a connector that hands out
MemoryPipe pairs — the same substrate the loadgen uses — so the whole
request loop (pooling, preamble replay, typed-error triage, endpoint
rotation) runs for real.
"""

import asyncio

import pytest

from repro.client import ReproClient
from repro.concurrency.retry import RetryPolicy
from repro.core import TemporalDatabase
from repro.errors import DeadlineExceeded, Overloaded, TransportError
from repro.server import ReproServer, ServerConfig, open_pipe

CREATE = "create counters (k = string, v = string) key (k)"


def run(coroutine):
    return asyncio.run(coroutine)


def define_counters(database):
    from repro.relational.domain import Domain
    from repro.relational.schema import Schema
    database.define("counters",
                    Schema.of(key=["k"], k=Domain.STRING,
                              v=Domain.STRING))


def make_connector(servers):
    """Endpoint-name -> MemoryPipe connector over live servers."""
    async def connector(endpoint):
        server = servers.get(endpoint)
        if server is None or server.draining:
            raise ConnectionRefusedError(f"{endpoint} is down")
        client_end, server_end = open_pipe(name=endpoint)
        asyncio.ensure_future(
            server.handle_connection(server_end, server_end))
        return client_end, client_end
    return connector


def make_client(servers, endpoints, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=4,
                                           base_delay=0.005,
                                           max_delay=0.05, seed=7))
    return ReproClient(endpoints, connector=make_connector(servers),
                       **kwargs)


class TestRetry:
    def test_overloaded_is_typed_retried_then_surfaced(self):
        async def scenario():
            server = ReproServer(TemporalDatabase(),
                                 ServerConfig(max_active=1, max_queue=0))
            client = make_client({"a": server}, ["a"],
                                 retry=RetryPolicy(max_attempts=2,
                                                   base_delay=0.001,
                                                   seed=3))
            await client.query(CREATE, budget_ms=5000.0)
            slot = server.layer("default").admission.admit()
            try:
                with pytest.raises(Overloaded) as caught:
                    await client.query(
                        'append to counters (k = "a", v = "1") '
                        'valid from "12/05/82"', budget_ms=5000.0)
                # The server's back-pressure hint crossed the wire.
                assert caught.value.retryable
                assert caught.value.retry_after > 0
                assert client.stats["retries"] == 1
                assert client.stats["typed_errors"] == 2
            finally:
                slot.release()
            # The slot freed: the same client (and pooled connection)
            # succeeds without reconnecting.
            connects_before = client.stats["connects"]
            result = await client.query(
                'append to counters (k = "a", v = "1") '
                'valid from "12/05/82"', budget_ms=5000.0)
            assert result.commit_time is not None
            assert client.stats["connects"] == connects_before
            await client.close()
            server.shutdown()
        run(scenario())

    def test_seeded_backoff_schedule_is_reproducible(self):
        first = [RetryPolicy(seed=11).delay(i) for i in range(5)]
        second = [RetryPolicy(seed=11).delay(i) for i in range(5)]
        other = [RetryPolicy(seed=12).delay(i) for i in range(5)]
        assert first == second
        assert first != other


class TestFailover:
    def test_dead_endpoint_rotates_to_the_live_one(self):
        async def scenario():
            server = ReproServer(TemporalDatabase(), ServerConfig())
            # Endpoint "a" refuses connections; "b" serves.
            client = make_client({"a": None, "b": server}, ["a", "b"])
            result = await client.query(CREATE, budget_ms=5000.0)
            assert result.commit_time is not None
            assert client.stats["failovers"] >= 1
            assert client.preferred_endpoint == "b"
            # Subsequent requests go straight to the live endpoint.
            failovers = client.stats["failovers"]
            await client.query(
                'append to counters (k = "f", v = "1") '
                'valid from "12/05/82"', budget_ms=5000.0)
            assert client.stats["failovers"] == failovers
            await client.close()
            server.shutdown()
        run(scenario())


class TestDeadlines:
    def test_silent_server_raises_deadline_exceeded(self):
        async def scenario():
            async def dead_air(endpoint):
                client_end, _server_end = open_pipe()
                return client_end, client_end  # nobody is listening

            client = ReproClient(["void"], connector=dead_air,
                                 retry=RetryPolicy(max_attempts=3,
                                                   base_delay=0.001,
                                                   seed=1))
            with pytest.raises(DeadlineExceeded):
                await client.query("retrieve (c.k)", budget_ms=100.0)
            assert client.stats["timeouts"] >= 1
            await client.close()
        run(scenario())


class TestReadYourWrites:
    def test_tokens_fold_and_gate_ryw_reads(self):
        async def scenario():
            server = ReproServer(TemporalDatabase(), ServerConfig())
            define_counters(server.database)
            client = make_client({"a": server}, ["a"],
                                 preamble=["range of c is counters"])
            write = await client.query(
                'append to counters (k = "w", v = "1") '
                'valid from "12/05/82"', budget_ms=5000.0)
            assert write.token == len(server.database.log)
            assert client.last_token == write.token
            assert write.token in client.acked_tokens
            # A ryw read sends the folded token; with no replicas the
            # primary serves it, and the read's token is not an ack.
            read = await client.query('retrieve (c.k, c.v)',
                                      budget_ms=5000.0,
                                      consistency="ryw")
            assert read.served_by == "primary"
            assert {row["values"]["k"] for row in read.rows} == {"w"}
            assert client.acked_tokens == [write.token]
            await client.close()
            server.shutdown()
        run(scenario())


class TestPooling:
    def test_preamble_is_replayed_on_every_fresh_connection(self):
        async def scenario():
            server = ReproServer(TemporalDatabase(), ServerConfig())
            define_counters(server.database)
            client = make_client({"a": server}, ["a"],
                                 preamble=["range of c is counters"])
            await client.query('append to counters (k = "p", v = "1") '
                               'valid from "12/05/82"',
                               budget_ms=5000.0)
            # The range binding came from the preamble, not this query.
            first = await client.query("retrieve (c.k)",
                                       budget_ms=5000.0)
            assert first.row_count == 1
            # Drop every pooled connection; the next query must build a
            # fresh one and replay the preamble, or the binding is gone.
            connects = client.stats["connects"]
            await client.close()
            second = await client.query("retrieve (c.k)",
                                        budget_ms=5000.0)
            assert second.row_count == 1
            assert client.stats["connects"] == connects + 1
            await client.close()
            server.shutdown()
        run(scenario())

    def test_truncated_response_is_caught_by_the_done_census(self):
        # A dropped rows chunk with a surviving done frame must not
        # pass as a (shorter) result — the done frame's row_count is
        # the census the client checks the reassembled stream against.
        async def scenario():
            from repro.server import protocol
            client_end, server_end = open_pipe()
            client = ReproClient(["a"], retry=RetryPolicy(max_attempts=1),
                                 connector=None)
            conn = type("C", (), {"endpoint": "a", "reader": client_end,
                                  "writer": client_end, "next_id": 1,
                                  "broken": False,
                                  "close": lambda self: None})()
            # One chunk of one row arrives; the done frame promises two.
            server_end.write(protocol.rows_reply(
                1, 0, [{"values": {"k": "a"}}], columns=["k"]))
            server_end.write(protocol.done_reply(1, row_count=2,
                                                 chunks=2))
            with pytest.raises(TransportError) as caught:
                await client._collect(conn, 1, None, 0)
            assert caught.value.retryable
            assert "truncated in transit" in str(caught.value)
        run(scenario())

    def test_wire_damage_reports_as_retryable_transport_error(self):
        # An id-less protocol error from the server can only mean the
        # *request frame* was damaged in transit — the client never
        # sends malformed frames — so it must surface retryable.
        async def scenario():
            from repro.server import protocol
            server = ReproServer(TemporalDatabase(), ServerConfig())
            client_end, server_end = open_pipe()
            asyncio.ensure_future(
                server.handle_connection(server_end, server_end))
            client = ReproClient(["a"], retry=RetryPolicy(max_attempts=1),
                                 connector=None)
            conn = type("C", (), {"endpoint": "a", "reader": client_end,
                                  "writer": client_end, "next_id": 1,
                                  "broken": False,
                                  "close": lambda self: None})()
            client_end.write(b"mangled frame on the wire\n")
            with pytest.raises(TransportError) as caught:
                await client._collect(conn, 1, None, 0)
            assert caught.value.retryable
            assert "damaged in transit" in str(caught.value)
            server.shutdown()
        run(scenario())
