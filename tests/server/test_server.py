"""The serving layer's robustness contract, exercised over MemoryPipes.

Every scenario here drives a real :class:`~repro.server.ReproServer`
through :meth:`~repro.server.ReproServer.handle_connection` — the same
code path TCP takes — over in-process pipes, so deadline suppression,
admission shed, pipeline bounds, slow-client aborts and graceful drain
are all observable to the byte.
"""

import asyncio

import pytest

from repro import obs
from repro.core import TemporalDatabase
from repro.server import ReproServer, ServerConfig, open_pipe, protocol

CREATE = "create counters (k = string, v = string) key (k)"
RANGE = "range of c is counters"


def run(coroutine):
    return asyncio.run(coroutine)


class Harness:
    """One server plus as many pipe connections as a test wants."""

    def __init__(self, config=None, replicas=()):
        self.database = TemporalDatabase()
        self.server = ReproServer(self.database, config,
                                  replicas=replicas)

    def connect(self, capacity=None):
        kwargs = {} if capacity is None else {"capacity": capacity}
        client, server_end = open_pipe(**kwargs)
        asyncio.ensure_future(
            self.server.handle_connection(server_end, server_end))
        return client


async def read_frame(pipe, timeout=2.0):
    line = await asyncio.wait_for(pipe.readline(), timeout)
    assert line, "connection closed while a frame was expected"
    return protocol.decode_message(line)


async def roundtrip(pipe, request_id, source, **kwargs):
    """Send one query; collect frames through its terminal frame."""
    pipe.write(protocol.query_request(request_id, source, **kwargs))
    frames = []
    while True:
        message = await read_frame(pipe)
        frames.append(message)
        if message["type"] in ("done", "error"):
            return frames


async def seed(pipe, statements):
    for index, statement in enumerate(statements):
        frames = await roundtrip(pipe, 1000 + index, statement)
        assert frames[-1]["type"] == "done", frames[-1]


class TestStreaming:
    def test_ping_answers_pong_with_the_same_id(self):
        async def scenario():
            harness = Harness()
            pipe = harness.connect()
            pipe.write(protocol.ping_request(42))
            message = await read_frame(pipe)
            assert message == {"type": "pong", "id": 42}
            harness.server.shutdown()
        run(scenario())

    def test_results_stream_in_bounded_chunks(self):
        async def scenario():
            harness = Harness(ServerConfig(chunk_rows=2))
            pipe = harness.connect()
            await seed(pipe, [CREATE] + [
                f'append to counters (k = "k{i}", v = "{i}") '
                f'valid from "12/05/82"' for i in range(5)] + [RANGE])
            frames = await roundtrip(pipe, 7, "retrieve (c.k, c.v)")
            rows_frames = [f for f in frames if f["type"] == "rows"]
            done = frames[-1]
            assert done["type"] == "done"
            assert done["id"] == 7
            assert done["row_count"] == 5
            assert done["chunks"] == 3
            assert [len(f["rows"]) for f in rows_frames] == [2, 2, 1]
            # Columns ride the first chunk only.
            assert rows_frames[0]["columns"] == ["k", "v"]
            assert all("columns" not in f for f in rows_frames[1:])
            assert harness.server.stats["rows_sent"] == 5
            harness.server.shutdown()
        run(scenario())

    def test_dml_reply_carries_the_commit_time(self):
        async def scenario():
            harness = Harness()
            pipe = harness.connect()
            await seed(pipe, [CREATE])
            frames = await roundtrip(
                pipe, 2, 'append to counters (k = "a", v = "1") '
                         'valid from "12/05/82"')
            done = frames[-1]
            assert done["type"] == "done"
            assert done["commit_time"] is not None
            assert done["token"] == len(harness.database.log)
            harness.server.shutdown()
        run(scenario())


class TestDeadlines:
    def test_expired_request_gets_silence_not_a_late_reply(self):
        async def scenario():
            harness = Harness()
            pipe = harness.connect()
            await seed(pipe, [CREATE, RANGE])
            # A microsecond budget expires before any reply can form.
            pipe.write(protocol.query_request(9, "retrieve (c.k)",
                                              budget_ms=0.001))
            for _ in range(400):
                if harness.server.stats["late_suppressed"]:
                    break
                await asyncio.sleep(0.005)
            assert harness.server.stats["late_suppressed"] >= 1
            # The connection survives, and the next frame is the pong —
            # no frame for request 9 ever arrived.
            pipe.write(protocol.ping_request(10))
            message = await read_frame(pipe)
            assert message == {"type": "pong", "id": 10}
            harness.server.shutdown()
        run(scenario())


class TestAdmission:
    def test_tenant_shed_is_typed_scoped_and_hinted(self):
        async def scenario():
            with obs.recording() as instrumentation:
                harness = Harness(ServerConfig(max_active=1, max_queue=0))
                pipe = harness.connect()
                await seed(pipe, [CREATE])
                # Occupy tenant t1's only slot out-of-band.
                slot = harness.server.layer("t1").admission.admit()
                try:
                    frames = await roundtrip(
                        pipe, 3, 'append to counters (k = "x", v = "1") '
                                 'valid from "12/05/82"', tenant="t1")
                    error = protocol.decode_error(frames[-1]["error"])
                    from repro.errors import Overloaded
                    assert isinstance(error, Overloaded)
                    assert error.retryable
                    assert error.retry_after > 0
                    # A different tenant has its own controller and is
                    # not collateral damage.
                    frames = await roundtrip(
                        pipe, 4, 'append to counters (k = "y", v = "1") '
                                 'valid from "12/05/82"', tenant="t2")
                    assert frames[-1]["type"] == "done"
                finally:
                    slot.release()
                assert harness.server.stats["shed"] == 1
                harness.server.shutdown()
                counters = instrumentation.metrics.snapshot()["counters"]
                # The layer retries a shed admission before giving up,
                # so the scoped counter sees every internal attempt.
                assert counters.get("admission.tenant.t1.shed", 0) >= 1
                assert "admission.tenant.t2.shed" not in counters
        run(scenario())


class TestPipelining:
    def test_pipeline_overflow_sheds_then_recovers(self):
        async def scenario():
            harness = Harness(ServerConfig(max_active=1, max_queue=4,
                                           max_pipeline=1))
            pipe = harness.connect()
            # Request 1 queues behind a held admission slot, pinning the
            # connection's single pipeline slot.
            admission = harness.server.layer("default").admission
            slot = admission.admit()
            pipe.write(protocol.query_request(1, CREATE))
            for _ in range(200):
                if admission.queued == 1:
                    break
                await asyncio.sleep(0.005)
            assert admission.queued == 1, "request 1 never blocked"
            # Request 2 finds the pipeline full: immediate typed shed.
            pipe.write(protocol.ping_request(99))  # pings bypass tasks
            assert (await read_frame(pipe))["type"] == "pong"
            pipe.write(protocol.query_request(2, CREATE))
            message = await read_frame(pipe)
            assert message["type"] == "error"
            assert message["id"] == 2
            error = protocol.decode_error(message["error"])
            from repro.errors import Overloaded
            assert isinstance(error, Overloaded)
            assert harness.server.stats["pipeline_shed"] == 1
            # Releasing the slot lets request 1 finish normally.
            slot.release()
            message = await read_frame(pipe)
            assert message["type"] == "done"
            assert message["id"] == 1
            harness.server.shutdown()
        run(scenario())


class TestSlowClients:
    def test_idle_connection_gets_a_goodbye_then_eof(self):
        async def scenario():
            harness = Harness(ServerConfig(idle_timeout=0.05))
            pipe = harness.connect()
            message = await read_frame(pipe)
            assert message["type"] == "goodbye"
            assert "idle" in message["reason"]
            assert await pipe.readline() == b""
            assert harness.server.stats["idle_closes"] == 1
            harness.server.shutdown()
        run(scenario())

    def test_client_that_stops_reading_is_aborted(self):
        async def scenario():
            harness = Harness(ServerConfig(write_stall_timeout=0.05))
            pipe = harness.connect(capacity=256)
            big = "x" * 600
            await seed(pipe, [
                CREATE,
                f'append to counters (k = "big", v = "{big}") '
                f'valid from "12/05/82"', RANGE])
            # Ask for the big row and never read the reply: the frame
            # overflows our 256-byte receive buffer and the server's
            # drain stalls past its timeout.
            pipe.write(protocol.query_request(5, "retrieve (c.k, c.v)"))
            for _ in range(200):
                if harness.server.stats["slow_client_aborts"]:
                    break
                await asyncio.sleep(0.005)
            assert harness.server.stats["slow_client_aborts"] == 1
            harness.server.shutdown()
        run(scenario())


class TestDrain:
    def test_drain_rejects_aborts_typed_and_says_goodbye(self):
        async def scenario():
            from repro.errors import DrainingError
            harness = Harness(ServerConfig(max_active=1, max_queue=4))
            pipe = harness.connect()
            await seed(pipe, [CREATE])
            admission = harness.server.layer("default").admission
            slot = admission.admit()
            try:
                # Request 1 is in flight (queued for admission) when the
                # drain begins.
                pipe.write(protocol.query_request(
                    1, 'append to counters (k = "d", v = "1") '
                       'valid from "12/05/82"'))
                for _ in range(200):
                    if admission.queued == 1:
                        break
                    await asyncio.sleep(0.005)
                assert admission.queued == 1, "request 1 never blocked"
                drain_task = asyncio.ensure_future(
                    harness.server.drain(grace=0.2))
                await asyncio.sleep(0.02)
                assert harness.server.draining
                # A request arriving mid-drain is turned away, typed.
                pipe.write(protocol.query_request(2, "retrieve (c.k)"))
                tally = await drain_task
                assert tally["aborted"] >= 1
                frames = []
                while True:
                    line = await asyncio.wait_for(pipe.readline(), 2.0)
                    if not line:
                        break
                    frames.append(protocol.decode_message(line))
                by_id = {f.get("id"): f for f in frames
                         if f["type"] == "error"}
                for request_id in (1, 2):
                    error = protocol.decode_error(
                        by_id[request_id]["error"])
                    assert isinstance(error, DrainingError), request_id
                    assert error.retryable
                assert frames[-1]["type"] == "goodbye"
                # A brand-new connection is refused politely too.
                late = harness.connect()
                message = await read_frame(late)
                assert message["type"] == "goodbye"
                assert "draining" in message["reason"]
            finally:
                slot.release()
            harness.server.shutdown()
        run(scenario())


class TestConnectionFuzz:
    GARBAGE = [
        b"complete junk, no frame at all\n",
        b"\xff\xfe\x00 not utf-8 \xba\xad\n",
        b"s1 12 deadbeef {\"type\": \"q\"}\n",
        b"s1 999 00000000 {}\n",
    ]

    def test_garbage_interleaved_with_real_work(self):
        async def scenario():
            from repro.errors import ProtocolError
            harness = Harness()
            pipe = harness.connect()
            await seed(pipe, [CREATE, RANGE])
            # Interleave mangled lines with a real pipeline; each piece
            # of garbage earns a typed error with a null id, every real
            # request is answered, and the connection never dies.
            pipe.write(protocol.ping_request(1))
            pipe.write(self.GARBAGE[0])
            pipe.write(protocol.query_request(2, "retrieve (c.k)"))
            pipe.write(self.GARBAGE[1])
            pipe.write(self.GARBAGE[2])
            pipe.write(protocol.ping_request(3))
            pipe.write(self.GARBAGE[3])
            frames = []
            # 1 pong + 4 typed errors + 1 pong + rows/done for id 2.
            while len([f for f in frames if f["type"] != "rows"]) < 7:
                frames.append(await read_frame(pipe))
            errors = [f for f in frames if f["type"] == "error"]
            assert len(errors) == 4
            for message in errors:
                assert message["id"] is None
                assert isinstance(protocol.decode_error(message["error"]),
                                  ProtocolError)
            assert {f["id"] for f in frames if f["type"] == "pong"} \
                == {1, 3}
            assert any(f["type"] == "done" and f["id"] == 2
                       for f in frames)
            assert harness.server.stats["protocol_errors"] == 4
            # Still alive after all that.
            pipe.write(protocol.ping_request(4))
            assert (await read_frame(pipe))["id"] == 4
            harness.server.shutdown()
        run(scenario())


class TestReplicaRouting:
    async def _replicated_harness(self):
        from repro.replication import FaultyTransport, Primary, Replica
        database = TemporalDatabase()
        transport = FaultyTransport(seed=1)
        primary = Primary("primary", database, transport)
        node = Replica("replica-0", TemporalDatabase, transport,
                       "primary")
        primary.add_replica(node.node_id)
        node.request_catchup()
        server = ReproServer(database, ServerConfig(),
                             replicas=[node])
        return server, primary, node

    async def _catch_up(self, primary, node, target):
        for _ in range(300):
            primary.pump()
            primary.heartbeat()
            node.pump()
            health = node.health()
            if health["applied_seq"] >= target \
                    and not health["degraded"]:
                return
            await asyncio.sleep(0.002)
        raise AssertionError(f"replica stuck at {node.health()}")

    def test_replica_serves_reads_when_caught_up(self):
        async def scenario():
            server, primary, node = await self._replicated_harness()
            client, server_end = open_pipe()
            asyncio.ensure_future(
                server.handle_connection(server_end, server_end))
            await seed(client, [CREATE,
                                'append to counters (k = "r", v = "1") '
                                'valid from "12/05/82"', RANGE])
            await self._catch_up(primary, node,
                                 len(server.database.log))
            frames = await roundtrip(client, 8, "retrieve (c.k, c.v)",
                                     consistency="replica")
            done = frames[-1]
            assert done["served_by"] == "replica:replica-0"
            assert server.stats["replica_reads"] == 1
            rows = [f for f in frames if f["type"] == "rows"]
            assert rows and rows[0]["rows"]
            server.shutdown()
        run(scenario())

    def test_lagging_replica_falls_back_to_the_primary(self):
        async def scenario():
            server, primary, node = await self._replicated_harness()
            client, server_end = open_pipe()
            asyncio.ensure_future(
                server.handle_connection(server_end, server_end))
            await seed(client, [CREATE,
                                'append to counters (k = "s", v = "1") '
                                'valid from "12/05/82"', RANGE])
            # A read-your-writes token from the future: no replica can
            # satisfy it, so the primary serves — degraded routing, not
            # a wrong or failed answer.
            token = len(server.database.log) + 10
            frames = await roundtrip(client, 9, "retrieve (c.k, c.v)",
                                     consistency="ryw", token=token)
            done = frames[-1]
            assert done["type"] == "done"
            assert done["served_by"] == "primary"
            assert server.stats["primary_fallbacks"] == 1
            server.shutdown()
        run(scenario())
