"""The fault-injectable pipe: backpressure you can measure, chaos you
can replay.

The MemoryPipe is the serving layer's test substrate, so its own
contract must be airtight: bounded buffers that actually block
writers, line-granular faults decided by a seeded RNG (same seed →
same schedule), and closes that look like real dead sockets.
"""

import asyncio

import pytest

from repro.server import ChaosConfig, open_pipe
from repro.server.chaos import DEFAULT_CAPACITY, MemoryPipe


def run(coroutine):
    return asyncio.run(coroutine)


class TestPipeBasics:
    def test_round_trip_both_directions(self):
        async def scenario():
            client, server = open_pipe()
            client.write(b"hello\n")
            assert await server.readline() == b"hello\n"
            server.write(b"world\n")
            assert await client.readline() == b"world\n"
        run(scenario())

    def test_close_is_eof_for_the_peer(self):
        async def scenario():
            client, server = open_pipe()
            client.write(b"last words\n")
            client.close()
            assert await server.readline() == b"last words\n"
            assert await server.readline() == b""
            assert server.at_eof()
            with pytest.raises(ConnectionResetError):
                server.write(b"to the dead\n")
        run(scenario())

    def test_partial_line_then_completion(self):
        async def scenario():
            client, server = open_pipe()
            client.write(b"half")
            reader = asyncio.ensure_future(server.readline())
            await asyncio.sleep(0.01)
            assert not reader.done()
            client.write(b"whole\n")
            assert await reader == b"halfwhole\n"
        run(scenario())

    def test_unterminated_torrent_hits_the_line_limit(self):
        async def scenario():
            client, server = open_pipe(limit=64)
            client.write(b"x" * 100)
            with pytest.raises(ValueError, match="no terminator"):
                await server.readline()
        run(scenario())


class TestBackpressure:
    def test_drain_blocks_until_the_reader_reads(self):
        async def scenario():
            client, server = open_pipe(capacity=32)
            client.write(b"a" * 40 + b"\n")  # over capacity: high water
            drain = asyncio.ensure_future(client.drain())
            await asyncio.sleep(0.01)
            assert not drain.done(), "drain returned against a full peer"
            assert await server.readline()  # the reader catches up
            await asyncio.wait_for(drain, 1.0)
        run(scenario())

    def test_drain_returns_immediately_against_a_healthy_reader(self):
        async def scenario():
            client, server = open_pipe()
            client.write(b"small\n")
            await asyncio.wait_for(client.drain(), 0.1)
        run(scenario())

    def test_peer_close_releases_a_blocked_writer(self):
        async def scenario():
            client, server = open_pipe(capacity=16)
            client.write(b"b" * 32 + b"\n")
            drain = asyncio.ensure_future(client.drain())
            await asyncio.sleep(0.01)
            server.close()  # a dead reader must not wedge the writer
            with pytest.raises(ConnectionResetError):
                await asyncio.wait_for(drain, 1.0)
        run(scenario())


class TestChaosInjection:
    def _deliveries(self, seed, lines, **faults):
        async def scenario():
            chaos = ChaosConfig(seed=seed, delay_s=0.002, **faults)
            client, server = open_pipe(chaos=chaos)
            for line in lines:
                try:
                    client.write(line)
                except ConnectionResetError:
                    break
            await asyncio.sleep(0.05)  # let delayed/split halves land
            received = bytearray()
            client.close()
            while True:
                try:
                    chunk = await asyncio.wait_for(server.readline(), 0.1)
                except (asyncio.TimeoutError, ValueError):
                    break
                if not chunk:
                    break
                received.extend(chunk)
            return bytes(received)
        return run(scenario())

    def test_same_seed_same_schedule(self):
        lines = [f"line-{i}\n".encode() for i in range(30)]
        faults = dict(drop=0.2, delay=0.2, split=0.2, corrupt=0.2)
        first = self._deliveries(99, lines, **faults)
        second = self._deliveries(99, lines, **faults)
        assert first == second

    def test_different_seed_different_schedule(self):
        lines = [f"line-{i}\n".encode() for i in range(30)]
        faults = dict(drop=0.3, corrupt=0.3)
        assert (self._deliveries(1, lines, **faults)
                != self._deliveries(2, lines, **faults))

    def test_drop_loses_lines(self):
        lines = [f"line-{i}\n".encode() for i in range(20)]
        received = self._deliveries(7, lines, drop=0.5)
        assert 0 < len(received) < sum(len(line) for line in lines)

    def test_corruption_is_caught_by_the_frame_crc(self):
        from repro.errors import ProtocolError
        from repro.server import protocol

        async def scenario():
            chaos = ChaosConfig(seed=3, corrupt=1.0)
            client, server = open_pipe(chaos=chaos)
            client.write(protocol.ping_request(1))
            line = await asyncio.wait_for(server.readline(), 1.0)
            with pytest.raises(ProtocolError):
                protocol.decode_message(line)
        run(scenario())

    def test_disconnect_kills_both_directions_mid_line(self):
        async def scenario():
            chaos = ChaosConfig(seed=5, disconnect=1.0)
            client, server = open_pipe(chaos=chaos)
            client.write(b"doomed line\n")
            assert client.is_closing()
            # Whatever prefix landed, the stream then ends.
            data = await server.readline()
            assert not data.endswith(b"doomed line\n")
            assert await server.readline() == b""
        run(scenario())

    def test_split_still_delivers_every_byte(self):
        lines = [f"payload-number-{i:04d}\n".encode() for i in range(20)]
        received = self._deliveries(11, lines, split=1.0)
        assert received == b"".join(lines)

    def test_zero_fault_config_is_a_clean_wire(self):
        lines = [f"line-{i}\n".encode() for i in range(10)]
        assert self._deliveries(0, lines) == b"".join(lines)

    def test_probabilities_are_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop=1.5)

    def test_default_capacity_is_sane(self):
        assert DEFAULT_CAPACITY >= 64 * 1024
        assert isinstance(open_pipe()[0], MemoryPipe)
