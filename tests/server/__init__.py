"""Serving-layer test suite (wire protocol, server, client, chaos)."""
