"""The wire format: framing, typed error round-trips, and fuzz.

The protocol promises two things the rest of the serving layer builds
on: *every* :class:`~repro.errors.ReproError` subclass survives the
wire as the same class with the same triage bit, and *no* byte
sequence a peer can send produces anything other than a typed
:class:`~repro.errors.ProtocolError` — no hangs, no stack traces, no
half-parsed frames.
"""

import random

import pytest

import repro.errors as errors_module
from repro.core import TemporalDatabase
from repro.errors import (ConflictError, Overloaded, ProtocolError,
                          RemoteError, ReplicaLagging, ReproError,
                          TQuelSyntaxError)
from repro.server import protocol
from repro.tquel import Session


def _all_error_classes():
    """Every concrete ReproError subclass in the live tree."""
    seen = []
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return seen


class TestErrorRoundTrip:
    def test_every_subclass_round_trips_to_the_same_type(self):
        for cls in _all_error_classes():
            error = cls("synthetic failure for the wire")
            decoded = protocol.decode_error(protocol.encode_error(error))
            assert type(decoded) is cls, cls.__name__
            assert decoded.retryable == error.retryable, cls.__name__

    def test_triage_bit_survives_for_every_subclass(self):
        retryable = {cls.__name__ for cls in _all_error_classes()
                     if cls("x").retryable}
        # The triage set is load-bearing: these are the errors a client
        # may retry.  A new retryable error type extends this set
        # deliberately, not by accident.
        assert "ConflictError" in retryable
        assert "Overloaded" in retryable
        assert "DrainingError" in retryable
        assert "TransportError" in retryable
        assert "ReplicaLagging" in retryable
        assert "ProtocolError" not in retryable
        assert "DeadlineExceeded" not in retryable

    def test_overloaded_details_travel(self):
        error = Overloaded("queue full", retry_after=0.25, queued=16,
                           active=8)
        decoded = protocol.decode_error(protocol.encode_error(error))
        assert isinstance(decoded, Overloaded)
        assert decoded.retry_after == 0.25
        assert decoded.queued == 16
        assert decoded.active == 8

    def test_conflict_relations_travel_as_tuple(self):
        error = ConflictError("lost validation",
                              relations=("faculty", "salary"))
        decoded = protocol.decode_error(protocol.encode_error(error))
        assert isinstance(decoded, ConflictError)
        assert decoded.relations == ("faculty", "salary")

    def test_replica_lagging_positions_travel(self):
        error = ReplicaLagging("behind", token=42, applied=17)
        decoded = protocol.decode_error(protocol.encode_error(error))
        assert decoded.token == 42
        assert decoded.applied == 17

    def test_unknown_error_name_degrades_to_remote_error(self):
        decoded = protocol.decode_error(
            {"name": "FutureQuantumError", "message": "novel failure",
             "retryable": True})
        assert isinstance(decoded, RemoteError)
        assert decoded.retryable is True
        assert decoded.type_name == "FutureQuantumError"
        assert "novel failure" in str(decoded)

    def test_wire_triage_disagreement_is_honored_for_known_types(self):
        data = protocol.encode_error(ConflictError("x"))
        data["retryable"] = False  # a stricter server said: do not retry
        decoded = protocol.decode_error(data)
        assert isinstance(decoded, ConflictError)
        assert decoded.retryable is False

    def test_tquel_location_is_not_double_suffixed(self):
        error = TQuelSyntaxError("unexpected token", line=3, column=7)
        decoded = protocol.decode_error(protocol.encode_error(error))
        assert isinstance(decoded, TQuelSyntaxError)
        assert str(decoded).count("line 3") == 1


class TestMessageFraming:
    def test_round_trip(self):
        line = protocol.encode_message({"type": "ping", "id": 1})
        assert line.endswith(b"\n")
        assert protocol.decode_message(line) == {"type": "ping", "id": 1}

    def test_request_builders_validate(self):
        message = protocol.parse_request(protocol.query_request(
            7, "retrieve (f.rank)", budget_ms=250.0, tenant="t1",
            consistency="ryw", token=3))
        assert message["id"] == 7
        assert message["budget_ms"] == 250.0
        assert message["token"] == 3

    @pytest.mark.parametrize("line", [
        b"",
        b"\n",
        b"garbage that is not a frame\n",
        b"\xff\xfe\x00 not utf-8 \xba\xad\n",
        b"s1 12 deadbeef {\"type\": \"q\"}\n",     # CRC mismatch
        b"s1 999 00000000 {}\n",                   # torn: length lies
        b"s2 2 6da88c34 {}\n",                     # wrong tag
    ])
    def test_malformed_lines_raise_typed_protocol_errors(self, line):
        with pytest.raises(ProtocolError):
            protocol.decode_message(line)

    def test_oversized_declared_length_is_refused_before_buffering(self):
        huge = protocol.MAX_FRAME_BYTES + 1
        line = f"s1 {huge} deadbeef x".encode()
        with pytest.raises(ProtocolError, match="ceiling"):
            protocol.decode_message(line + b"\n")

    def test_truncated_frames_at_every_cut_point(self):
        whole = protocol.query_request(1, "retrieve (f.rank)")
        for cut in range(1, len(whole) - 1, 7):
            with pytest.raises(ProtocolError):
                protocol.decode_message(whole[:cut] + b"\n")

    def test_seeded_garbage_never_escapes_the_type(self):
        rng = random.Random(1234)
        for _ in range(200):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 120)))
            try:
                protocol.decode_message(blob + b"\n")
            except ProtocolError:
                continue  # the only acceptable failure
            except Exception as exc:  # pragma: no cover - the point
                pytest.fail(f"non-typed escape: {type(exc).__name__}: "
                            f"{exc!r} for {blob!r}")

    def test_payload_must_be_a_typed_object(self):
        import json

        from repro.storage.framing import frame
        line = (frame(json.dumps(["not", "an", "object"]), tag="s1")
                + "\n").encode()
        with pytest.raises(ProtocolError, match="typed message"):
            protocol.decode_message(line)

    @pytest.mark.parametrize("message,match", [
        ({"type": "mystery", "id": 1}, "unknown request type"),
        ({"type": "query", "id": "one", "source": "x"}, "integer"),
        ({"type": "query", "id": 1}, "source"),
        ({"type": "query", "id": 1, "source": "x", "budget_ms": -5},
         "budget_ms"),
        ({"type": "query", "id": 1, "source": "x",
          "consistency": "psychic"}, "consistency"),
        ({"type": "query", "id": 1, "source": "x", "token": "later"},
         "token"),
    ])
    def test_request_schema_violations(self, message, match):
        with pytest.raises(ProtocolError, match=match):
            protocol.parse_request(protocol.encode_message(message))


class TestRowsOnTheWire:
    def test_historical_rows_round_trip_with_time_values(self):
        session = Session(TemporalDatabase())
        session.execute("create faculty (name = string, rank = string) "
                        "key (name)")
        session.execute('append to faculty (name = "Tom", '
                        'rank = "full") valid from "12/05/82"')
        session.execute("range of f is faculty")
        result = session.execute('retrieve (f.name, f.rank)')
        columns, wire = protocol.rows_to_wire(result)
        assert columns == ["name", "rank"]
        assert len(wire) == 1
        decoded = protocol.rows_from_wire(wire)
        assert decoded[0]["values"] == {"name": "Tom", "rank": "full"}
        # The valid period survived JSON as a real Period again.
        assert str(decoded[0]["valid"].start) == "1982-12-05"

    def test_empty_result(self):
        assert protocol.rows_to_wire(None) == ([], [])
        assert protocol.rows_from_wire([]) == []
