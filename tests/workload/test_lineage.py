"""Commit lineage end-to-end: one cross-shard commit, one connected tree.

The acceptance criterion of docs/OBSERVABILITY.md's "Commit lineage"
section: after a replicated shard-stress run, the sample cross-shard
transaction's spans — session attempt, 2PC prepare/decide/apply, journal
appends, replication ship and the replica-side applies (which run on
*other* threads, parented over the wire) — must reconstruct into exactly
one rooted tree with no orphaned spans, from the exported JSONL alone.
"""

import json

import pytest

from repro.core import StaticDatabase
from repro.storage.faults import CrashPoint
from repro.workload.sharded import run_sharded


def load_jsonl(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def tree_shape(rows, txn):
    """(roots, orphans, names) of the span tree belonging to *txn*."""
    mine = [row for row in rows if row["trace_id"] == txn]
    ids = {row["span_id"] for row in mine}
    roots = [row for row in mine if row["parent_id"] is None]
    orphans = [row for row in mine
               if row["parent_id"] is not None
               and row["parent_id"] not in ids]
    return roots, orphans, [row["name"] for row in mine]


class TestLineageTree:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("lineage")
        trace_out = str(base / "spans.jsonl")
        events_out = str(base / "events.jsonl")
        report = run_sharded(kind=StaticDatabase, shards=3, sessions=3,
                             transactions=20, keys_per_session=6,
                             cross_ratio=0.4, seed=7, replicas=2,
                             directory=str(base / "store"),
                             trace_out=trace_out, events_out=events_out)
        return report, load_jsonl(trace_out), load_jsonl(events_out)

    def test_run_is_clean_and_replicated(self, run):
        report, _, _ = run
        assert report.ok, report.describe()
        assert report.replica_converged is True
        assert report.replica_digest_match is True
        assert report.sample_cross_txn is not None

    def test_sample_cross_txn_is_one_connected_tree(self, run):
        report, spans, _ = run
        roots, orphans, names = tree_shape(spans, report.sample_cross_txn)
        assert len(roots) == 1, [row["name"] for row in roots]
        assert roots[0]["name"] == "concurrency.run"
        assert orphans == []

    def test_tree_spans_every_lifecycle_layer(self, run):
        report, spans, _ = run
        _, _, names = tree_shape(spans, report.sample_cross_txn)
        for expected in ("concurrency.run", "concurrency.attempt",
                         "concurrency.commit", "sharding.cross_commit",
                         "sharding.prepare", "sharding.decide",
                         "sharding.apply", "commit.apply",
                         "journal.append", "replication.ship",
                         "replication.apply"):
            assert expected in names, (expected, sorted(set(names)))

    def test_replica_applies_parent_under_ship_spans(self, run):
        # The cross-thread handoff: apply spans run on the pump side and
        # must still attach under this transaction's ship spans.
        report, spans, _ = run
        mine = [row for row in spans
                if row["trace_id"] == report.sample_cross_txn]
        by_id = {row["span_id"]: row for row in mine}
        applies = [row for row in mine
                   if row["name"] == "replication.apply"]
        assert len(applies) >= 2  # both replicas saw the commit
        for row in applies:
            assert by_id[row["parent_id"]]["name"] == "replication.ship"

    def test_event_log_narrates_the_same_transaction(self, run):
        report, _, events = run
        kinds = {row["kind"] for row in events
                 if row["txn"] == report.sample_cross_txn}
        for expected in ("txn.begin", "txn.attempt", "2pc.prepare",
                         "2pc.decide", "2pc.apply", "journal.append",
                         "txn.commit", "replication.ship",
                         "replication.apply"):
            assert expected in kinds, (expected, sorted(kinds))

    def test_report_carries_the_export_paths(self, run):
        report, spans, events = run
        assert report.trace_path and report.events_path
        assert spans and events
        assert report.replicas == 2


class TestLineageUnderChaos:
    def test_chaos_run_cross_shard_commit_still_one_tree(self, tmp_path):
        # A mid-run crash must not sever the sample commit's lineage:
        # whatever committed before (or after recovery) still traces to
        # one root with no orphans.
        trace_out = str(tmp_path / "spans.jsonl")
        report = run_sharded(kind=StaticDatabase, shards=3, sessions=3,
                             transactions=20, keys_per_session=6,
                             cross_ratio=0.4, seed=3, replicas=1,
                             faults=CrashPoint.LOST_RECORD, fault_at=30,
                             directory=str(tmp_path / "store"),
                             trace_out=trace_out)
        assert report.ok, report.describe()
        assert report.crashed >= 1
        assert report.sample_cross_txn is not None
        roots, orphans, names = tree_shape(load_jsonl(trace_out),
                                           report.sample_cross_txn)
        assert len(roots) == 1
        assert orphans == []
        assert "sharding.cross_commit" in names
