"""Serving loadgen acceptance: clean runs, the fault matrix, failover.

These are the end-to-end invariants ``repro loadgen`` ships with: no
acknowledged write is ever lost, read-your-writes holds across replica
routing and failover, and every failure a client sees is a typed
:class:`~repro.errors.ReproError` — under a clean wire, under every
fault kind the chaos pipe injects, and across a mid-run primary kill.
"""

import pytest

from repro.server import ChaosConfig
from repro.workload import run_serving


class TestCleanRuns:
    def test_clean_run_is_fully_audited_ok(self):
        report = run_serving(clients=3, requests=8, seed=42,
                             budget_ms=10000.0)
        assert report.ok, report.describe()
        assert report.attempted == 24
        assert report.acked_writes > 0
        assert report.acked_writes_lost == 0
        assert report.unexpected_failures == 0
        assert report.failover_performed is False

    def test_report_describe_is_json_shaped(self):
        report = run_serving(clients=2, requests=4, seed=1,
                             budget_ms=10000.0)
        data = report.describe()
        assert data["ok"] == report.ok
        assert set(data) >= {"acked_writes", "acked_writes_lost",
                             "ryw_violations", "server", "chaos"}


class TestChaosMatrix:
    @pytest.mark.parametrize("fault", [
        {"drop": 0.1}, {"delay": 0.1}, {"split": 0.3},
        {"corrupt": 0.05}, {"disconnect": 0.03},
    ])
    def test_each_fault_kind_preserves_the_invariants(self, fault):
        chaos = ChaosConfig(seed=9, delay_s=0.005, **fault)
        report = run_serving(clients=3, requests=8, seed=9,
                             budget_ms=10000.0, chaos=chaos)
        assert report.ok, (fault, report.describe())
        # The run was actually hostile: the configured fault fired.
        kind = next(iter(fault))
        key = {"drop": "dropped", "delay": "delayed", "split": "split",
               "corrupt": "corrupted",
               "disconnect": "disconnects"}[kind]
        assert report.chaos.get(key, 0) > 0, report.chaos

    def test_chaos_runs_are_seed_reproducible_in_their_audit(self):
        chaos = dict(seed=5, drop=0.15, corrupt=0.1, delay_s=0.005)
        first = run_serving(clients=2, requests=6, seed=5,
                            budget_ms=10000.0,
                            chaos=ChaosConfig(**chaos))
        second = run_serving(clients=2, requests=6, seed=5,
                             budget_ms=10000.0,
                             chaos=ChaosConfig(**chaos))
        assert first.ok and second.ok
        # Event-loop interleaving may vary, but the invariants hold in
        # both runs and the request census matches.
        assert first.attempted == second.attempted


class TestFailover:
    def test_primary_kill_loses_nothing_acknowledged(self):
        report = run_serving(clients=4, requests=10, seed=3,
                             budget_ms=10000.0, replicas=2,
                             failover_at=5, ryw_ratio=0.5)
        assert report.failover_performed, report.describe()
        assert report.ok, report.describe()
        assert report.acked_writes_lost == 0
        assert report.ryw_checks > 0
        assert report.ryw_violations == 0
        # Clients actually moved: the standby served after the kill.
        assert report.client_failovers > 0
        assert report.unexpected_failures == 0
