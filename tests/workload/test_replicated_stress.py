"""Acceptance: replicated chaos with faults, a partition, and a failover.

This is the issue's headline scenario — concurrent writers on a primary,
two replicas fed over a hostile transport (drops, duplicates,
reordering, a mid-run partition), and a mid-run failover that promotes a
replica while the writers are still going.  The audit baked into
:class:`ReplicatedReport` must come back clean: zero acknowledged-but-
lost durable commits, digest convergence on every surviving node, no
divergence latches, and read-your-writes tokens honoured throughout.
"""

import pytest

from repro.core import RollbackDatabase, TemporalDatabase
from repro.workload import ReplicatedReport, run_replicated


class TestReplicatedChaos:
    def test_full_chaos_run_with_midrun_failover(self):
        report = run_replicated(
            kind=TemporalDatabase, replicas=2, writers=4, transactions=10,
            keys=6, seed=7, drop=0.08, duplicate=0.08, reorder=0.08,
            partition_at=8, heal_at=20, failover_at=24)
        assert isinstance(report, ReplicatedReport)
        assert report.ok, report.describe()
        assert report.committed == report.attempted == 40
        assert report.lost_durable_commits == 0
        assert report.replicas_converged
        assert report.diverged == 0
        # The failover actually happened and was digest-audited.
        assert report.failover_performed
        assert report.promoted_prefix_verified is True
        assert report.final_epoch == 1
        # The transport really was hostile.
        faults = (report.transport.get("dropped", 0)
                  + report.transport.get("duplicated", 0)
                  + report.transport.get("reordered", 0)
                  + report.transport.get("partitioned", 0))
        assert faults > 0
        assert report.read_your_writes_ok

    def test_steady_state_without_failover(self):
        report = run_replicated(replicas=2, writers=3, transactions=8,
                                keys=4, seed=11, drop=0.1, duplicate=0.1,
                                reorder=0.1)
        assert report.ok, report.describe()
        assert not report.failover_performed
        assert report.final_epoch == 0
        assert report.primary_seq > 0
        # Every replica caught up to the primary's head.
        assert all(applied == report.primary_seq
                   for applied in report.replica_applied.values())

    def test_duplicates_and_gaps_were_exercised_and_absorbed(self):
        report = run_replicated(replicas=2, writers=2, transactions=10,
                                keys=4, seed=3, drop=0.2, duplicate=0.2,
                                reorder=0.2)
        assert report.ok, report.describe()
        # A 20% fault mix over ~20 commits must trip the stream
        # discipline at least once; the audit proves it healed.
        assert report.duplicates_dropped > 0 or report.gaps_detected > 0

    @pytest.mark.parametrize("kind", [TemporalDatabase, RollbackDatabase])
    def test_every_database_kind_survives(self, kind):
        report = run_replicated(kind=kind, replicas=2, writers=2,
                                transactions=6, keys=3, seed=5,
                                drop=0.05, duplicate=0.05, reorder=0.05)
        assert report.ok, report.describe()

    def test_describe_is_json_shaped_and_carries_the_verdict(self):
        report = run_replicated(replicas=1, writers=1, transactions=4,
                                keys=2, seed=1, drop=0.0, duplicate=0.0,
                                reorder=0.0)
        described = report.describe()
        assert described["ok"] is True
        assert described["replicas"] == 1
        assert "transport" in described
