"""Unit tests for the synthetic workload generators."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.time import SimulatedClock
from repro.workload import (FacultyWorkload, PayrollWorkload, VersionWorkload,
                            apply_workload)
from repro.workload.generators import EPOCH


def fresh_db(db_class):
    return db_class(clock=SimulatedClock("01/01/79"))


class TestDeterminism:
    @pytest.mark.parametrize("workload_class", [
        FacultyWorkload, PayrollWorkload, VersionWorkload])
    def test_same_seed_same_steps(self, workload_class):
        assert workload_class(seed=7).steps() == workload_class(seed=7).steps()

    @pytest.mark.parametrize("workload_class", [
        FacultyWorkload, PayrollWorkload, VersionWorkload])
    def test_different_seed_different_steps(self, workload_class):
        assert workload_class(seed=7).steps() != workload_class(seed=8).steps()


class TestStepShape:
    def test_commits_sorted(self):
        steps = FacultyWorkload(people=10).steps()
        commits = [step.commit for step in steps]
        assert commits == sorted(commits)

    def test_faculty_has_retroactive_and_postactive(self):
        steps = FacultyWorkload(people=30, retroactive_ratio=0.5).steps()
        retro = sum(1 for s in steps
                    if s.valid_from is not None and s.commit > s.valid_from)
        post = sum(1 for s in steps
                   if s.valid_from is not None and s.commit < s.valid_from)
        assert retro > 0 and post > 0

    def test_payroll_batches_share_commit(self):
        steps = PayrollWorkload(employees=10, months=3).steps()
        month_one = [s for s in steps if s.batch == 1]
        assert len(month_one) > 1
        assert len({s.commit for s in month_one}) == 1

    def test_payroll_effective_dates_retroactive(self):
        steps = PayrollWorkload(employees=10, months=3).steps()
        changes = [s for s in steps if s.action == "replace"]
        assert all(s.valid_from < s.commit for s in changes)

    def test_version_revisions_increase(self):
        steps = VersionWorkload(parts=5, revisions=3).steps()
        part_steps = [s for s in steps
                      if (s.values or s.updates or {}).get("part")
                      or (s.match or {}).get("part") == "part0000"]
        assert part_steps  # generator produced work for part0000

    def test_commits_not_before_epoch(self):
        for workload in (FacultyWorkload(people=10), PayrollWorkload(),
                         VersionWorkload()):
            assert all(s.commit >= EPOCH for s in workload.steps())


class TestApply:
    @pytest.mark.parametrize("db_class", [
        StaticDatabase, RollbackDatabase, HistoricalDatabase,
        TemporalDatabase])
    def test_applies_to_every_kind(self, db_class):
        database = fresh_db(db_class)
        transactions = apply_workload(database,
                                      FacultyWorkload(people=6, seed=2))
        assert transactions > 0
        assert len(database.log) == transactions + 1  # + the define

    def test_all_kinds_agree_on_final_snapshot(self):
        # Valid times in the faculty workload may lead/trail transaction
        # times, so snapshots can differ transiently — but the *payroll*
        # workload only changes values (never presence), and all kinds
        # agree on who exists now.
        workload = PayrollWorkload(employees=8, months=4, seed=3)
        names = {}
        for db_class in (StaticDatabase, RollbackDatabase,
                         HistoricalDatabase, TemporalDatabase):
            database = fresh_db(db_class)
            apply_workload(database, workload)
            database.manager.clock.source.set("01/01/90")
            names[db_class.__name__] = frozenset(
                row["employee"] for row in database.snapshot("payroll"))
        assert len(set(names.values())) == 1

    def test_requires_simulated_clock(self):
        from repro.time import SystemClock
        database = StaticDatabase(clock=SystemClock())
        with pytest.raises(TypeError, match="SimulatedClock"):
            apply_workload(database, FacultyWorkload(people=1))

    def test_precomputed_steps_accepted(self):
        workload = FacultyWorkload(people=3, seed=9)
        steps = workload.steps()
        database = fresh_db(TemporalDatabase)
        apply_workload(database, workload, steps=steps)
        assert len(database.temporal("faculty")) > 0

    def test_temporal_accumulates_more_rows_than_historical(self):
        # Corrections append in a temporal DB but overwrite in a historical
        # one, so the temporal store is at least as large.
        workload = FacultyWorkload(people=10, correction_ratio=0.5, seed=11)
        temporal_db = fresh_db(TemporalDatabase)
        historical_db = fresh_db(HistoricalDatabase)
        apply_workload(temporal_db, workload)
        apply_workload(historical_db, workload)
        assert (len(temporal_db.temporal("faculty"))
                >= len(historical_db.history("faculty")))

    def test_temporal_current_equals_historical_state(self):
        workload = FacultyWorkload(people=8, seed=21)
        temporal_db = fresh_db(TemporalDatabase)
        historical_db = fresh_db(HistoricalDatabase)
        apply_workload(temporal_db, workload)
        apply_workload(historical_db, workload)
        assert temporal_db.history("faculty") == \
            historical_db.history("faculty")
