"""AdmissionController: bounded slots, bounded queue, typed shedding."""

import threading

import pytest

from repro.concurrency import AdmissionController
from repro.errors import DeadlineExceeded, Overloaded


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class TestBounds:
    def test_admits_up_to_max_active_without_blocking(self):
        gate = AdmissionController(max_active=3, max_queue=0)
        slots = [gate.admit() for _ in range(3)]
        assert gate.active == 3
        for slot in slots:
            slot.release()
        assert gate.active == 0

    def test_sheds_with_typed_overloaded_when_the_queue_is_full(self):
        gate = AdmissionController(max_active=1, max_queue=0)
        slot = gate.admit()
        with pytest.raises(Overloaded) as excinfo:
            gate.admit()
        assert excinfo.value.retryable
        assert excinfo.value.retry_after > 0
        slot.release()

    def test_retry_after_hint_scales_with_load(self):
        gate = AdmissionController(max_active=1, max_queue=0, retry_after=0.1)
        slot = gate.admit()
        with pytest.raises(Overloaded) as excinfo:
            gate.admit()
        assert excinfo.value.retry_after == pytest.approx(0.1)
        slot.release()

    def test_release_is_idempotent(self):
        gate = AdmissionController(max_active=2, max_queue=0)
        slot = gate.admit()
        slot.release()
        slot.release()
        assert gate.active == 0

    def test_slot_is_a_context_manager(self):
        gate = AdmissionController(max_active=1, max_queue=0)
        with gate.admit():
            assert gate.active == 1
        assert gate.active == 0

    def test_constructor_validates_its_knobs(self):
        with pytest.raises(ValueError):
            AdmissionController(max_active=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


class TestQueueing:
    def test_queued_waiter_proceeds_when_a_slot_frees(self):
        gate = AdmissionController(max_active=1, max_queue=1)
        first = gate.admit()
        admitted = threading.Event()

        def waiter():
            with gate.admit():
                admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        while gate.queued == 0:  # it is waiting, not admitted
            pass
        assert not admitted.is_set()
        first.release()
        assert admitted.wait(timeout=5.0)
        thread.join(timeout=5.0)
        assert gate.active == 0 and gate.queued == 0

    def test_deadline_passed_while_queued_raises_deadline_exceeded(self):
        clock = FakeClock(start=100.0)
        gate = AdmissionController(max_active=1, max_queue=1, clock=clock)
        slot = gate.admit()
        with pytest.raises(DeadlineExceeded):
            gate.admit(deadline=50.0)  # already past
        assert gate.queued == 0  # the waiter left the queue
        slot.release()

    def test_past_deadline_is_refused_even_with_free_capacity(self):
        clock = FakeClock(start=100.0)
        gate = AdmissionController(max_active=4, max_queue=4, clock=clock)
        with pytest.raises(DeadlineExceeded):
            gate.admit(deadline=50.0)  # never admit late
        assert gate.active == 0 and gate.queued == 0

    def test_release_wakes_waiters_past_an_expired_deadline_waiter(self):
        """Regression: _release must wake *all* waiters.  A single notify
        handed to a waiter whose deadline has expired is consumed when it
        raises and leaves, stranding the waiters behind it forever."""
        clock = FakeClock(start=0.0)
        gate = AdmissionController(max_active=1, max_queue=2, clock=clock)
        slot = gate.admit()
        outcomes = {}

        def expiring():
            try:
                gate.admit(deadline=5.0)
            except DeadlineExceeded:
                outcomes["expiring"] = "deadline"
            else:  # pragma: no cover - the regression itself
                outcomes["expiring"] = "admitted late"

        def patient():
            with gate.admit():
                outcomes["patient"] = "admitted"

        first = threading.Thread(target=expiring, daemon=True)
        first.start()
        while gate.queued < 1:  # the expiring waiter is queued first
            pass
        second = threading.Thread(target=patient, daemon=True)
        second.start()
        while gate.queued < 2:
            pass
        clock.now = 10.0  # the first waiter's deadline is now past
        slot.release()
        first.join(timeout=5.0)
        second.join(timeout=5.0)
        assert not first.is_alive() and not second.is_alive()
        assert outcomes == {"expiring": "deadline", "patient": "admitted"}
        assert gate.active == 0 and gate.queued == 0

    def test_hammering_the_gate_never_deadlocks(self):
        gate = AdmissionController(max_active=2, max_queue=4)
        outcomes = []
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                try:
                    with gate.admit():
                        pass
                except Overloaded:
                    with lock:
                        outcomes.append("shed")
                else:
                    with lock:
                        outcomes.append("ok")

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        assert len(outcomes) == 8 * 50
        assert gate.active == 0 and gate.queued == 0
