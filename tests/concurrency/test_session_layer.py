"""The session layer: OCC footprints, first-committer-wins, deadlines."""

import threading

import pytest

from repro.concurrency import (AdmissionController, ConcurrentSession,
                              RetryPolicy, SessionLayer, SessionStatus)
from repro.core import StaticDatabase, TemporalDatabase
from repro.errors import (ConflictError, DeadlineExceeded,
                         TransactionStateError)
from repro.relational import Domain, Schema
from repro.time import SimulatedClock


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def counters_db(cls=StaticDatabase):
    database = cls(clock=SimulatedClock("01/01/80"))
    database.define("counters",
                    Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER))
    with database.begin() as txn:
        if database.kind.supports_historical_queries:
            database.insert("counters", {"k": "a", "v": 0},
                            valid_from="01/01/80", txn=txn)
        else:
            database.insert("counters", {"k": "a", "v": 0}, txn=txn)
    return database


def value(database, key="a"):
    return next(row["v"] for row in database.snapshot("counters")
                if row["k"] == key)


def fast_retry(**kwargs):
    kwargs.setdefault("max_attempts", 10)
    kwargs.setdefault("base_delay", 0.0)
    kwargs.setdefault("jitter", 0.0)
    kwargs.setdefault("seed", 0)
    return RetryPolicy(**kwargs)


class TestSessionBasics:
    def test_database_sessions_accessor_builds_a_layer(self):
        layer = counters_db().sessions()
        assert isinstance(layer, SessionLayer)
        assert isinstance(layer.begin(), ConcurrentSession)

    def test_buffered_writes_are_invisible_until_commit(self):
        database = counters_db()
        session = database.sessions().begin()
        session.replace("counters", {"k": "a"}, {"v": 1})
        assert value(database) == 0  # still buffered
        session.commit()
        assert value(database) == 1
        assert session.status is SessionStatus.COMMITTED
        assert session.commit_time is not None

    def test_reads_track_the_footprint(self):
        database = counters_db()
        session = database.sessions().begin()
        session.read("counters")
        assert "counters" in session.footprint
        assert session.conflicts() == []

    def test_read_only_session_commits_to_none(self):
        database = counters_db()
        session = database.sessions().begin()
        session.read("counters")
        assert session.commit() is None
        assert session.status is SessionStatus.COMMITTED
        assert len(database.log) == 2  # define + seed only

    def test_aborted_session_rejects_further_work(self):
        session = counters_db().sessions().begin()
        session.abort()
        with pytest.raises(TransactionStateError) as excinfo:
            session.replace("counters", {"k": "a"}, {"v": 1})
        assert str(session.session_id) in str(excinfo.value)

    def test_context_manager_commits_on_success_aborts_on_error(self):
        database = counters_db()
        layer = database.sessions()
        with layer.begin() as session:
            session.replace("counters", {"k": "a"}, {"v": 5})
        assert value(database) == 5
        with pytest.raises(RuntimeError):
            with layer.begin() as session:
                session.replace("counters", {"k": "a"}, {"v": 99})
                raise RuntimeError("application bug")
        assert value(database) == 5
        assert session.status is SessionStatus.ABORTED

    def test_temporal_kind_takes_valid_time_keywords(self):
        database = counters_db(TemporalDatabase)
        with database.sessions().begin() as session:
            session.insert("counters", {"k": "b", "v": 1},
                           valid_from="06/01/80")
        # The postactive insert is not yet valid "now"...
        assert {row["k"] for row in database.snapshot("counters")} == {"a"}
        # ...but the valid-time keyword went through: it holds at 07/01/80.
        later = database.timeslice("counters", "07/01/80")
        assert {row["k"] for row in later} == {"a", "b"}


class TestFirstCommitterWins:
    def test_second_committer_loses_and_is_aborted(self):
        database = counters_db()
        layer = database.sessions()
        loser = layer.begin()
        loser.read("counters")
        loser.replace("counters", {"k": "a"}, {"v": 1})
        winner = layer.begin()
        winner.replace("counters", {"k": "a"}, {"v": 2})
        winner.commit()
        with pytest.raises(ConflictError) as excinfo:
            loser.commit()
        assert excinfo.value.retryable
        assert "counters" in excinfo.value.relations
        assert loser.status is SessionStatus.ABORTED
        assert value(database) == 2  # winner stood

    def test_read_only_session_still_validates_its_reads(self):
        database = counters_db()
        layer = database.sessions()
        reader = layer.begin()
        reader.read("counters")
        database.replace("counters", {"k": "a"}, {"v": 7})  # out-of-band
        with pytest.raises(ConflictError):
            reader.commit()

    def test_read_only_certification_takes_the_serialization_lock(self):
        """Regression: a read-only commit must certify under the
        manager's serialization lock, not race an in-flight commit's
        apply and version bumps."""
        database = counters_db()
        layer = database.sessions()
        reader = layer.begin()
        reader.read("counters")
        in_certify = threading.Event()
        release = threading.Event()

        def holder():
            def blocker():
                in_certify.set()
                release.wait(timeout=10.0)
            database.manager.certify(blocker)

        lock_holder = threading.Thread(target=holder, daemon=True)
        lock_holder.start()
        assert in_certify.wait(timeout=10.0)
        certified = threading.Event()

        def read_only_commit():
            reader.commit()
            certified.set()

        committer = threading.Thread(target=read_only_commit, daemon=True)
        committer.start()
        # The read-only validation must wait for the lock holder.
        assert not certified.wait(timeout=0.2)
        release.set()
        assert certified.wait(timeout=10.0)
        lock_holder.join(timeout=10.0)
        committer.join(timeout=10.0)
        assert reader.status is SessionStatus.COMMITTED

    def test_disjoint_footprints_do_not_conflict(self):
        database = counters_db()
        database.define("other",
                        Schema.of(key=["k"], k=Domain.STRING,
                                  v=Domain.INTEGER))
        layer = database.sessions()
        session = layer.begin()
        session.replace("counters", {"k": "a"}, {"v": 3})
        database.insert("other", {"k": "x", "v": 1})  # a different relation
        session.commit()  # no conflict: footprints are disjoint
        assert value(database) == 3


class TestRun:
    def test_run_returns_the_closure_value_and_commits(self):
        database = counters_db()
        layer = database.sessions(retry=fast_retry())

        def bump(session):
            row = next(iter(session.read("counters")))
            session.replace("counters", {"k": "a"}, {"v": row["v"] + 1})
            return row["v"] + 1

        assert layer.run(bump) == 1
        assert value(database) == 1

    def test_run_retries_a_conflicted_closure_against_fresh_state(self):
        database = counters_db()
        layer = database.sessions(retry=fast_retry())
        invocations = []

        def contended(session):
            invocations.append(True)
            row = next(iter(session.read("counters")))
            if len(invocations) == 1:
                # An interloper commits after our read, before our commit:
                # first-committer-wins must abort us and retry the closure.
                database.replace("counters", {"k": "a"}, {"v": 100})
            session.replace("counters", {"k": "a"}, {"v": row["v"] + 1})
            return row["v"] + 1

        assert layer.run(contended) == 101  # re-read the interloper's 100
        assert len(invocations) == 2
        assert value(database) == 101

    def test_run_gives_up_after_exhausting_attempts(self):
        database = counters_db()
        layer = database.sessions(retry=fast_retry(max_attempts=2))

        def always_contended(session):
            session.read("counters")
            database.replace("counters", {"k": "a"}, {"v": 0})
            session.replace("counters", {"k": "a"}, {"v": 1})

        with pytest.raises(ConflictError):
            layer.run(always_contended)

    def test_deadline_prevents_a_late_commit(self):
        clock = FakeClock()
        database = counters_db()
        layer = SessionLayer(
            database, clock=clock,
            retry=fast_retry(clock=clock))

        def slow(session):
            session.replace("counters", {"k": "a"}, {"v": 9})
            clock.advance(10.0)  # the closure outlived its budget

        with pytest.raises(DeadlineExceeded):
            layer.run(slow, timeout=1.0)
        assert value(database) == 0  # nothing committed

    def test_admission_slot_is_released_on_every_path(self):
        database = counters_db()
        admission = AdmissionController(max_active=1, max_queue=0)
        layer = database.sessions(retry=fast_retry(max_attempts=1),
                                  admission=admission)
        with pytest.raises(RuntimeError):
            layer.run(lambda session: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert admission.active == 0
        layer.run(lambda session: session.read("counters"))  # still admits
        assert admission.active == 0


class TestSerializedCommits:
    def test_racing_threads_produce_exactly_n_monotone_commits(self):
        database = counters_db()
        layer = database.sessions(
            retry=fast_retry(max_attempts=200, base_delay=0.0001,
                             max_delay=0.001, jitter=0.5))
        threads_n, per_thread = 8, 25
        errors = []

        def bump(session):
            row = next(iter(session.read("counters")))
            session.replace("counters", {"k": "a"}, {"v": row["v"] + 1})

        def worker():
            try:
                for _ in range(per_thread):
                    layer.run(bump)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert errors == []
        assert value(database) == threads_n * per_thread
        times = [record.commit_time for record in database.log]
        assert all(a < b for a, b in zip(times, times[1:]))
        assert len(times) == 2 + threads_n * per_thread  # define + seed + N


class TestTornReads:
    """Session reads are atomic with respect to a racing commit's apply.

    A replace closes the superseded version and opens the new one; a
    bare snapshot taken between those two steps sees *neither* version.
    Session reads go through the commit serialization lock
    (``ConcurrentSession._consistent``) so that torn intermediate state
    is never observable — this hammers the race that used to drop rows
    from ``session.read`` mid-replace.
    """

    @pytest.mark.parametrize("cls", [StaticDatabase, TemporalDatabase])
    def test_reader_never_sees_a_replaced_row_missing(self, cls):
        database = counters_db(cls)
        layer = SessionLayer(
            database, retry=RetryPolicy(max_attempts=50, base_delay=0.0001,
                                        max_delay=0.001, seed=0))
        writers_done = threading.Event()
        torn = []

        def bump(session):
            row = next(iter(session.read("counters")))
            session.replace("counters", {"k": "a"}, {"v": row["v"] + 1})

        def writer():
            for _ in range(150):
                layer.run(bump)

        def reader():
            while not writers_done.is_set():
                session = layer.begin()
                rows = list(session.read("counters"))
                session.abort()
                if not any(row["k"] == "a" for row in rows):
                    torn.append(rows)
                    return

        writers = [threading.Thread(target=writer, daemon=True)
                   for _ in range(2)]
        readers = [threading.Thread(target=reader, daemon=True)
                   for _ in range(2)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=120.0)
        writers_done.set()
        for thread in readers:
            thread.join(timeout=30.0)
        assert torn == []  # every read saw exactly one live "a" version
        assert value(database) == 300
