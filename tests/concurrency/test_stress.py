"""The stress/chaos harness — including the acceptance-scale run."""

import time

import pytest

from repro.concurrency import AdmissionController, RetryPolicy
from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.storage.faults import CrashPoint
from repro.workload import StressReport, run_stress

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]


class TestStress:
    def test_acceptance_eight_sessions_two_hundred_txns(self):
        report = run_stress(kind=TemporalDatabase, sessions=8,
                            transactions=200, keys=8, seed=0)
        assert report.ok, report.describe()
        assert report.committed == 8 * 200
        assert report.lost_updates == 0
        assert report.applied_increments == 8 * 200
        assert report.commit_times_monotone
        assert report.serial_equivalent
        assert report.manager_accepts_begin_after_run

    @pytest.mark.parametrize("kind", ALL_KINDS,
                             ids=lambda cls: cls.__name__)
    def test_every_database_kind_survives_contention(self, kind):
        report = run_stress(kind=kind, sessions=4, transactions=30,
                            keys=2, seed=11)
        assert report.ok, report.describe()
        assert report.committed == 4 * 30
        assert report.conflicts == report.retries  # every conflict retried

    def test_single_session_run_is_deterministic(self):
        first = run_stress(sessions=1, transactions=40, keys=3, seed=5)
        second = run_stress(sessions=1, transactions=40, keys=3, seed=5)
        left, right = first.describe(), second.describe()
        # Wall time, the commit-latency histogram and the SLO health
        # are measurements, not outcomes — everything else must replay
        # identically.
        for timing in ("wall_s", "commit_latency", "slo"):
            left.pop(timing), right.pop(timing)
        assert left == right

    def test_overload_sheds_without_losing_committed_work(self):
        report = run_stress(
            sessions=8, transactions=20, keys=2, seed=3,
            retry=RetryPolicy(max_attempts=1, seed=3),
            admission=AdmissionController(max_active=1, max_queue=0),
            work=lambda: time.sleep(0.0005))
        assert report.shed > 0  # the tiny gate really shed load
        assert report.ok, report.describe()
        # Every attempt is accounted for — nothing vanished.
        assert (report.committed + report.shed + report.failed
                + report.deadline_exceeded == report.attempted)

    def test_report_describe_round_trips_to_plain_data(self):
        report = run_stress(sessions=2, transactions=5, keys=1, seed=9)
        data = report.describe()
        assert isinstance(report, StressReport)
        assert data["ok"] is True
        assert data["sessions"] == 2


class TestChaos:
    @pytest.mark.parametrize("crash", [CrashPoint.TORN_RECORD,
                                       CrashPoint.LOST_RECORD],
                             ids=lambda c: c.value)
    def test_crash_under_load_leaves_a_recoverable_prefix(self, crash,
                                                          tmp_path):
        report = run_stress(
            kind=StaticDatabase, sessions=4, transactions=40, keys=4,
            seed=1, faults=crash, fault_at=25, directory=str(tmp_path))
        assert report.ok, report.describe()
        assert report.crashed >= 1  # at least one worker saw the crash
        assert report.recovery_is_durable_prefix
        assert report.recovered_records <= 2 + report.committed + 1
        assert report.manager_accepts_begin_after_run

    def test_chaos_mode_requires_a_directory(self):
        with pytest.raises(ValueError):
            run_stress(faults=CrashPoint.LOST_RECORD)
