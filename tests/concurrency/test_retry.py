"""RetryPolicy: backoff math, triage, deadlines — all without sleeping."""

import pytest

from repro.concurrency import RetryPolicy
from repro.errors import (ConflictError, ConstraintViolation, DeadlineExceeded,
                         Overloaded)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_policy(**kwargs):
    """A policy whose sleeps are recorded, not performed."""
    sleeps = []
    clock = kwargs.pop("clock", FakeClock())
    policy = RetryPolicy(seed=kwargs.pop("seed", 7), sleeper=sleeps.append,
                         clock=clock, **kwargs)
    return policy, sleeps, clock


class TestBackoff:
    def test_delays_grow_exponentially_up_to_the_cap(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05,
                             jitter=0.0, seed=0)
        assert [policy.delay(k) for k in range(4)] == [
            0.01, 0.02, 0.04, 0.05]

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=1.0, jitter=0.5,
                             seed=1)
        for _ in range(100):
            delay = policy.delay(0)
            assert 0.005 <= delay <= 0.01

    def test_same_seed_reproduces_the_delay_sequence(self):
        first = RetryPolicy(seed=42)
        second = RetryPolicy(seed=42)
        assert ([first.delay(k) for k in range(6)]
                == [second.delay(k) for k in range(6)])

    def test_constructor_validates_its_knobs(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCall:
    def test_success_on_first_attempt_never_sleeps(self):
        policy, sleeps, _ = make_policy()
        assert policy.call(lambda: "done") == "done"
        assert sleeps == []

    def test_retries_retryable_errors_until_success(self):
        policy, sleeps, _ = make_policy(max_attempts=5)
        attempts = []

        def flaky():
            attempts.append(True)
            if len(attempts) < 3:
                raise ConflictError("lost validation")
            return len(attempts)

        assert policy.call(flaky) == 3
        assert len(sleeps) == 2

    def test_non_retryable_errors_propagate_immediately(self):
        policy, sleeps, _ = make_policy(max_attempts=5)
        attempts = []

        def broken():
            attempts.append(True)
            raise ConstraintViolation("semantic, not transient")

        with pytest.raises(ConstraintViolation):
            policy.call(broken)
        assert len(attempts) == 1 and sleeps == []

    def test_exhausted_attempts_raise_the_last_retryable_error(self):
        policy, _, _ = make_policy(max_attempts=3)
        attempts = []

        def always_conflicts():
            attempts.append(True)
            raise ConflictError("again", relations=("r",))

        with pytest.raises(ConflictError) as excinfo:
            policy.call(always_conflicts)
        assert len(attempts) == 3
        assert excinfo.value.retryable  # an outer layer may still requeue

    def test_max_attempts_one_means_no_retry(self):
        policy, sleeps, _ = make_policy(max_attempts=1)
        with pytest.raises(ConflictError):
            policy.call(lambda: (_ for _ in ()).throw(ConflictError("x")))
        assert sleeps == []


class TestDeadlines:
    def test_deadline_already_passed_prevents_the_first_attempt(self):
        policy, _, clock = make_policy()
        clock.advance(10.0)
        attempts = []
        with pytest.raises(DeadlineExceeded):
            policy.call(lambda: attempts.append(True), deadline=5.0)
        assert attempts == []

    def test_backoff_that_would_overshoot_raises_instead_of_sleeping(self):
        policy, sleeps, clock = make_policy(
            max_attempts=5, base_delay=1.0, jitter=0.0)
        with pytest.raises(DeadlineExceeded):
            policy.call(lambda: (_ for _ in ()).throw(ConflictError("x")),
                        deadline=clock.now + 0.5)
        assert sleeps == []  # it never slept past the deadline

    def test_overloaded_retry_after_raises_the_pause(self):
        policy, sleeps, _ = make_policy(
            max_attempts=3, base_delay=0.001, jitter=0.0)
        calls = []

        def overloaded_once():
            calls.append(True)
            if len(calls) == 1:
                raise Overloaded("full", retry_after=0.25)
            return "in"

        assert policy.call(overloaded_once) == "in"
        assert sleeps == [0.25]  # the hint beat the tiny exponential delay


class TestMetrics:
    """The retry loop reports shed load and attempt counts to obs."""

    def _counters_and_histograms(self, instrumentation):
        snapshot = instrumentation.metrics.snapshot()
        return snapshot["counters"], snapshot["histograms"]

    def test_overloaded_errors_are_counted_with_their_hints(self):
        from repro import obs

        policy, _, _ = make_policy(max_attempts=3, base_delay=0.001,
                                   jitter=0.0)
        calls = []

        def overloaded_twice():
            calls.append(True)
            if len(calls) <= 2:
                raise Overloaded("full", retry_after=0.25)
            return "in"

        with obs.recording() as instrumentation:
            assert policy.call(overloaded_twice) == "in"
        counters, histograms = self._counters_and_histograms(instrumentation)
        assert counters["concurrency.overloaded"] == 2
        hints = histograms["concurrency.retry_after_seconds"]
        assert hints["count"] == 2
        assert hints["max"] == pytest.approx(0.25)

    def test_attempts_per_txn_records_the_final_attempt_count(self):
        from repro import obs

        policy, _, _ = make_policy(max_attempts=5, base_delay=0.001,
                                   jitter=0.0)
        calls = []

        def conflict_twice():
            calls.append(True)
            if len(calls) <= 2:
                raise ConflictError("again")
            return "done"

        with obs.recording() as instrumentation:
            assert policy.call(conflict_twice) == "done"
        _, histograms = self._counters_and_histograms(instrumentation)
        attempts = histograms["concurrency.attempts_per_txn"]
        assert attempts["count"] == 1  # one transaction...
        assert attempts["max"] == 3    # ...that took three attempts

    def test_exhaustion_still_records_the_attempts(self):
        from repro import obs

        policy, _, _ = make_policy(max_attempts=2, base_delay=0.001,
                                   jitter=0.0)
        with obs.recording() as instrumentation:
            with pytest.raises(ConflictError):
                policy.call(
                    lambda: (_ for _ in ()).throw(ConflictError("x")))
        _, histograms = self._counters_and_histograms(instrumentation)
        assert histograms["concurrency.attempts_per_txn"]["max"] == 2

    def test_overloaded_without_a_hint_skips_the_hint_histogram(self):
        from repro import obs

        policy, _, _ = make_policy(max_attempts=2, base_delay=0.001,
                                   jitter=0.0)
        calls = []

        def overloaded_once():
            calls.append(True)
            if len(calls) == 1:
                raise Overloaded("full")
            return "in"

        with obs.recording() as instrumentation:
            assert policy.call(overloaded_once) == "in"
        counters, histograms = self._counters_and_histograms(instrumentation)
        assert counters["concurrency.overloaded"] == 1
        assert "concurrency.retry_after_seconds" not in histograms
