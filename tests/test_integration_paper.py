"""Integration: every worked example in the paper, end to end.

Each test reconstructs a figure or query result from the paper's own
transaction narrative (never hand-entered tables) and checks the exact
content the paper prints.
"""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.relational import Attribute, Domain, Schema
from repro.time import Instant, Period, SimulatedClock
from repro.tquel import Session

from tests.conftest import build_faculty, faculty_schema


class TestSection41Static:
    """§4.1: the static relation and the Quel query."""

    def test_figure_2_content(self, static_faculty):
        database, _ = static_faculty
        assert {(row["name"], row["rank"])
                for row in database.snapshot("faculty")} == {
            ("Merrie", "full"), ("Tom", "associate")}

    def test_quel_query(self, static_faculty):
        database, _ = static_faculty
        session = Session(database)
        session.execute("range of f is faculty")
        result = session.query('retrieve (f.rank) where f.name = "Merrie"')
        assert result.to_dicts() == [{"rank": "full"}]


class TestSection42Rollback:
    """§4.2: the rollback relation, Figure 4, and the as-of query."""

    def test_figure_4_rows_present(self, rollback_faculty):
        database, _ = rollback_faculty
        rows = {(r.data["name"], r.data["rank"], r.tt.start.paper_format(),
                 r.tt.end.paper_format())
                for r in database.store("faculty").rows}
        assert {("Merrie", "associate", "08/25/77", "12/15/82"),
                ("Merrie", "full", "12/15/82", "∞"),
                ("Tom", "associate", "12/07/82", "∞"),
                ("Mike", "assistant", "01/10/83", "02/25/84")} <= rows

    def test_as_of_query(self, rollback_faculty):
        database, _ = rollback_faculty
        session = Session(database)
        session.execute("range of f is faculty")
        result = session.query('retrieve (f.rank) where f.name = "Merrie" '
                               'as of "12/10/82"')
        assert result.to_dicts() == [{"rank": "associate"}]

    def test_figure_3_transaction_narrative(self):
        # Figure 3: three transactions from the null relation — add three
        # tuples; add one; delete one of the first and add another.
        clock = SimulatedClock("01/01/80")
        database = RollbackDatabase(clock=clock, representation="states")
        schema = Schema.of(name=Domain.STRING)
        database.define("r", schema)
        with database.begin() as txn:
            for name in ("a", "b", "c"):
                database.insert("r", {"name": name}, txn=txn)
        clock.advance(1)
        database.insert("r", {"name": "d"})
        clock.advance(1)
        with database.begin() as txn:
            database.delete("r", {"name": "a"}, txn=txn)
            database.insert("r", {"name": "e"}, txn=txn)
        states = database.store("r").states
        assert [len(state) for _, state in states] == [3, 4, 4]
        assert database.rollback("r", states[0][0]).cardinality == 3


class TestSection43Historical:
    """§4.3: the historical relation (Figure 6) and the when query."""

    def test_figure_6_content(self, historical_faculty):
        database, _ = historical_faculty
        rows = {(r.data["name"], r.data["rank"],
                 r.valid.start.paper_format(), r.valid.end.paper_format())
                for r in database.history("faculty").rows}
        assert rows == {
            ("Merrie", "associate", "09/01/77", "12/01/82"),
            ("Merrie", "full", "12/01/82", "∞"),
            ("Tom", "associate", "12/05/82", "∞"),
            ("Mike", "assistant", "01/01/83", "03/01/84"),
        }

    def test_when_query_result(self, historical_faculty):
        database, _ = historical_faculty
        session = Session(database)
        session.execute("range of f1 is faculty")
        session.execute("range of f2 is faculty")
        result = session.query(
            'retrieve (f1.rank) where f1.name = "Merrie" and '
            'f2.name = "Tom" when f1 overlap start of f2')
        assert len(result) == 1
        row = result.rows[0]
        assert row.data["rank"] == "full"
        assert (row.valid.start.paper_format(),
                row.valid.end.paper_format()) == ("12/01/82", "∞")

    def test_inconsistency_window_explained(self, historical_faculty,
                                            rollback_faculty):
        # "While both this query and the example given for a static
        # rollback relation seem to query Merrie's rank on 12/05/82, the
        # answers are different" — the DB was inconsistent with reality
        # between 12/01/82 (the promotion) and 12/15/82 (its recording).
        historical_db, _ = historical_faculty
        rollback_db, _ = rollback_faculty
        historical_answer = historical_db.timeslice("faculty", "12/05/82") \
            .select(lambda r: r["name"] == "Merrie").column("rank")
        rollback_answer = rollback_db.rollback("faculty", "12/05/82") \
            .select(lambda r: r["name"] == "Merrie").column("rank")
        assert historical_answer == ["full"]       # reality, as best known
        assert rollback_answer == ["associate"]    # what the DB then said


class TestSection44Temporal:
    """§4.4: Figure 8 and the bitemporal query with both as-of answers."""

    def test_figure_8_exact(self, temporal_faculty):
        database, _ = temporal_faculty
        rows = {(r.data["name"], r.data["rank"],
                 r.valid.start.paper_format(), r.valid.end.paper_format(),
                 r.tt.start.paper_format(), r.tt.end.paper_format())
                for r in database.temporal("faculty").rows}
        assert rows == {
            ("Merrie", "associate", "09/01/77", "∞", "08/25/77", "12/15/82"),
            ("Merrie", "associate", "09/01/77", "12/01/82", "12/15/82", "∞"),
            ("Merrie", "full", "12/01/82", "∞", "12/15/82", "∞"),
            ("Tom", "full", "12/05/82", "∞", "12/01/82", "12/07/82"),
            ("Tom", "associate", "12/05/82", "∞", "12/07/82", "∞"),
            ("Mike", "assistant", "01/01/83", "∞", "01/10/83", "02/25/84"),
            ("Mike", "assistant", "01/01/83", "03/01/84", "02/25/84", "∞"),
        }

    def test_bitemporal_query_both_answers(self, temporal_faculty):
        database, _ = temporal_faculty
        session = Session(database)
        session.execute("range of f1 is faculty")
        session.execute("range of f2 is faculty")
        query = ('retrieve (f1.rank) where f1.name = "Merrie" and '
                 'f2.name = "Tom" when f1 overlap start of f2 as of "{}"')

        early = session.query(query.format("12/10/82"))
        assert len(early) == 1
        row = early.rows[0]
        # The paper's printed result row, all six columns.
        assert row.data["rank"] == "associate"
        assert (row.valid.start.paper_format(),
                row.valid.end.paper_format()) == ("09/01/77", "∞")
        assert (row.tt.start.paper_format(),
                row.tt.end.paper_format()) == ("08/25/77", "12/15/82")

        late = session.query(query.format("12/20/82"))
        assert [r.data["rank"] for r in late.rows] == ["full"]

    def test_figure_7_transaction_narrative(self):
        # Figure 7: four transactions — add three tuples; add one; add one
        # and delete one; delete a previous tuple ("presumably it should
        # not have been there in the first place").
        clock = SimulatedClock("01/01/80")
        database = TemporalDatabase(clock=clock)
        database.define("r", Schema.of(name=Domain.STRING))
        with database.begin() as txn:
            for name in ("a", "b", "c"):
                database.insert("r", {"name": name}, valid_from="01/01/80",
                                txn=txn)
        clock.advance(1)
        database.insert("r", {"name": "d"}, valid_from="01/02/80")
        clock.advance(1)
        with database.begin() as txn:
            database.insert("r", {"name": "e"}, valid_from="01/03/80",
                            txn=txn)
            database.delete("r", {"name": "a"}, valid_from="01/03/80",
                            txn=txn)
        clock.advance(1)
        database.delete("r", {"name": "b"})  # erroneous from the start
        states = database.temporal("r").historical_states()
        assert len(states) == 4
        # After the last transaction, 'b' is gone from the current state
        # entirely (the error corrected), but rollback still shows it.
        assert database.history("r").timeslice("01/01/80").column("name") \
            != []
        assert "b" not in database.history("r").timeslice(
            "01/02/80").column("name")
        assert "b" in database.rollback("r", states[2][0]).timeslice(
            "01/02/80").column("name")


class TestSection45UserDefinedTime:
    """§4.5: the promotion event relation with effective date (Figure 9)."""

    def build_promotion(self):
        clock = SimulatedClock("01/01/77")
        database = TemporalDatabase(clock=clock)
        # Figure 9's rank column also carries "left" (Mike's departure).
        rank = Domain.enumeration("rank", "assistant", "associate", "full",
                                  "left")
        schema = Schema([
            Attribute("name", Domain.STRING),
            Attribute("rank", rank),
            Attribute("effective date",
                      Domain.user_defined_time("effective date")),
        ])
        database.define("promotion", schema, event=True)

        def record(commit, name, rank, effective, valid_at):
            clock.set(commit)
            database.insert(
                "promotion",
                {"name": name, "rank": rank,
                 "effective date": Instant.parse(effective)},
                valid_at=valid_at)

        # The six rows of Figure 9, from its narrative.
        record("08/25/77", "Merrie", "associate", "09/01/77", "08/25/77")
        record("12/01/82", "Tom", "full", "12/05/82", "12/05/82")
        record("12/07/82", "Tom", "associate", "12/05/82", "12/07/82")
        record("12/15/82", "Merrie", "full", "12/01/82", "12/11/82")
        record("01/10/83", "Mike", "assistant", "01/01/83", "01/01/83")
        record("02/25/84", "Mike", "left", "03/01/84", "02/25/84")
        return database

    def test_figure_9_content(self):
        database = self.build_promotion()
        rows = {(r.data["name"], r.data["rank"],
                 r.data["effective date"].paper_format(),
                 r.valid.start.paper_format(), r.tt.start.paper_format())
                for r in database.temporal("promotion").rows}
        assert rows == {
            ("Merrie", "associate", "09/01/77", "08/25/77", "08/25/77"),
            ("Merrie", "full", "12/01/82", "12/11/82", "12/15/82"),
            ("Tom", "full", "12/05/82", "12/05/82", "12/01/82"),
            ("Tom", "associate", "12/05/82", "12/07/82", "12/07/82"),
            ("Mike", "assistant", "01/01/83", "01/01/83", "01/10/83"),
            ("Mike", "left", "03/01/84", "02/25/84", "02/25/84"),
        }

    def test_merries_promotion_signed_four_days_before_recording(self):
        # "Merrie's retroactive promotion to full was signed four days
        # before it was recorded in the database."
        database = self.build_promotion()
        full = next(r for r in database.temporal("promotion").rows
                    if r.data["name"] == "Merrie"
                    and r.data["rank"] == "full")
        assert full.tt.start - full.valid.start == 4

    def test_user_defined_time_is_uninterpreted(self):
        # The effective date plays no role in when/as-of semantics: the
        # rollback of the relation ignores it entirely.
        database = self.build_promotion()
        state = database.rollback("promotion", "12/10/82")
        assert len(state) == 3  # Merrie associate + Tom full + Tom associate

    def test_figure_9_renders_in_event_style(self):
        database = self.build_promotion()
        text = database.temporal("promotion").pretty("promotion", event=True)
        assert "valid (at)" in text
        assert "effective date" in text
        assert "12/11/82" in text


class TestMotivatingQueries:
    """§4.1's four motivating examples, answerable where the taxonomy says."""

    def test_historical_query(self, historical_faculty):
        # "What was Merrie's rank 2 years ago?"
        database, _ = historical_faculty
        result = database.timeslice("faculty", "02/25/82")
        assert result.select(lambda r: r["name"] == "Merrie") \
            .column("rank") == ["associate"]

    def test_trend_analysis(self, historical_faculty):
        # "How did the number of faculty change over the last 5 years?"
        database, _ = historical_faculty
        counts = {year: database.timeslice("faculty", f"06/01/{year}")
                  .cardinality for year in (80, 81, 82, 83, 84)}
        assert counts == {80: 1, 81: 1, 82: 1, 83: 3, 84: 2}

    def test_retroactive_change(self, historical_faculty):
        # "Merrie was promoted ... starting last month" was recorded
        # 12/15/82 but took effect 12/01/82.
        database, _ = historical_faculty
        assert database.timeslice("faculty", "12/02/82").select(
            lambda r: r["name"] == "Merrie").column("rank") == ["full"]

    def test_postactive_change(self, historical_faculty):
        # Merrie entered the database 08/25/77 but joined 09/01/77.
        database, _ = historical_faculty
        assert database.timeslice("faculty", "08/28/77").is_empty
        assert not database.timeslice("faculty", "09/01/77").is_empty
