"""Failure injection: the system stays consistent when things go wrong.

Covers the abort paths the happy-path suites never hit:

- mid-batch failures leave *no* partial state in any database kind
  (the stage/install protocol);
- a failing on-commit journal hook does not corrupt the in-memory state;
- tampered journals are rejected loudly, never replayed silently;
- clock misuse surfaces as ClockError rather than corrupting order;
- evaluator errors during multi-row TQuel updates abort the whole
  statement.
"""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import (ClockError, ConstraintViolation, JournalError,
                          ReproError)
from repro.relational import Domain, Schema
from repro.storage import Journal
from repro.time import Instant, SimulatedClock
from repro.tquel import Session

from tests.conftest import build_faculty, faculty_schema

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]


class TestAtomicity:
    @pytest.mark.parametrize("db_class", ALL_KINDS)
    def test_failing_op_rolls_back_whole_batch(self, db_class):
        clock = SimulatedClock("01/01/80")
        database = db_class(clock=clock)
        database.define("faculty", faculty_schema())
        valid = ({"valid_from": "01/01/80"}
                 if database.supports_historical_queries else {})
        database.insert("faculty", {"name": "A", "rank": "full"}, **valid)

        state_before = database.log.records[-1].commit_time
        txn = database.begin()
        database.insert("faculty", {"name": "B", "rank": "full"},
                        txn=txn, **valid)
        database.insert("faculty", {"name": "A", "rank": "assistant"},
                        txn=txn, **valid)  # key violation at commit
        with pytest.raises(ConstraintViolation):
            txn.commit()

        # No partial effect anywhere: snapshot, log, history.
        assert database.snapshot("faculty").column("name") == ["A"]
        assert database.log.records[-1].commit_time == state_before
        if database.supports_rollback:
            # No phantom state visible at any probe after the failure.
            now = database.now()
            assert database.rollback("faculty", now) is not None
            names = ({row["name"] for row in
                      database.rollback("faculty", now)}
                     if db_class is RollbackDatabase else
                     {row.data["name"] for row in
                      database.rollback("faculty", now).rows})
            assert names == {"A"}

    @pytest.mark.parametrize("db_class", ALL_KINDS)
    def test_ddl_failure_mid_batch_rolls_back(self, db_class):
        clock = SimulatedClock("01/01/80")
        database = db_class(clock=clock)
        database.define("faculty", faculty_schema())
        from repro.txn.transaction import Operation
        txn = database.begin()
        txn.add(Operation("define", "extra",
                          {"schema": Schema.of(x=Domain.STRING),
                           "constraints": ()}))
        txn.add(Operation("define", "faculty",  # duplicate -> failure
                          {"schema": faculty_schema(), "constraints": ()}))
        with pytest.raises(ReproError):
            txn.commit()
        # The first definition of the batch was rolled back with the rest:
        # no schema, no store, and re-defining it later works cleanly.
        assert "extra" not in database.relation_names()
        database.define("extra", Schema.of(x=Domain.STRING))
        assert database.snapshot("extra").is_empty

    def test_event_flag_rolls_back_with_failed_batch(self):
        clock = SimulatedClock("01/01/80")
        database = HistoricalDatabase(clock=clock)
        database.define("faculty", faculty_schema())
        from repro.txn.transaction import Operation
        txn = database.begin()
        txn.add(Operation("define", "pings",
                          {"schema": Schema.of(x=Domain.STRING),
                           "constraints": (), "event": True}))
        txn.add(Operation("drop", "nowhere", {}))  # fails
        with pytest.raises(ReproError):
            txn.commit()
        # Re-define as an ordinary interval relation: no stale event flag.
        database.define("pings", Schema.of(x=Domain.STRING))
        assert not database.is_event_relation("pings")


class TestJournalFailures:
    def test_failing_hook_after_commit_propagates_but_state_is_durable(
            self, tmp_path):
        database, clock = build_faculty(TemporalDatabase)

        calls = {"n": 0}

        def exploding_hook(record):
            calls["n"] += 1
            raise OSError("disk full")

        database.manager.on_commit = exploding_hook
        clock.set("06/01/85")
        with pytest.raises(OSError):
            database.insert("faculty", {"name": "New", "rank": "assistant"},
                            valid_from="06/01/85")
        # The commit itself completed before the hook ran: state + log
        # both contain it (the journal is behind, which replay detects).
        assert calls["n"] == 1
        assert any(row.data["name"] == "New"
                   for row in database.history("faculty").rows)

    def test_tampered_journal_rejected(self, tmp_path):
        path = str(tmp_path / "db.journal")
        database, _ = build_faculty(TemporalDatabase)
        Journal(path).bind(database)

        # Tamper: swap two commit lines (violates monotone commit order).
        with open(path) as handle:
            lines = handle.readlines()
        lines[1], lines[2] = lines[2], lines[1]
        with open(path, "w") as handle:
            handle.writelines(lines)

        with pytest.raises(ReproError):
            Journal(path).replay(TemporalDatabase)

    def test_truncated_json_line_rejected(self, tmp_path):
        path = str(tmp_path / "db.journal")
        database, _ = build_faculty(TemporalDatabase)
        Journal(path).bind(database)
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[:-20])  # chop the final line
        with pytest.raises(JournalError, match="corrupt"):
            Journal(path).read()

    def test_edited_operation_detected_or_replayed_consistently(
            self, tmp_path):
        # A re-framed edit passes the checksum (the CRC detects damage,
        # not tampering — the journal is the source of truth), but
        # editing the *commit time* against the recorded order must
        # still fail replay on the drift check.
        from repro.storage import CHAINED_TAG, frame_record, parse_journal_line
        path = str(tmp_path / "db.journal")
        database, _ = build_faculty(TemporalDatabase)
        Journal(path).bind(database)
        entries = [parse_journal_line(line.rstrip("\n"))[0]
                   for line in open(path)]
        entries[3]["commit_time"] = entries[0]["commit_time"]
        with open(path, "w") as handle:
            for entry in entries:
                handle.write(frame_record(entry, tag=CHAINED_TAG) + "\n")
        with pytest.raises(ReproError):
            Journal(path).replay(TemporalDatabase)

    def test_flipped_byte_fails_checksum(self, tmp_path):
        # Unlike a semantic edit, raw damage inside a record body is
        # caught by the frame CRC before replay even starts.
        path = str(tmp_path / "db.journal")
        database, _ = build_faculty(TemporalDatabase)
        Journal(path).bind(database)
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        quoted = data.index(b"Merrie")
        data[quoted] = ord("X")
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(JournalError, match="corrupt"):
            Journal(path).replay(TemporalDatabase)


class TestClockMisuse:
    def test_simulated_clock_cannot_go_backwards_mid_history(self):
        database, clock = build_faculty(TemporalDatabase)
        with pytest.raises(ClockError, match="backwards"):
            clock.set("01/01/80")
        # The database is unharmed and accepts the next forward commit.
        clock.set("06/01/85")
        database.insert("faculty", {"name": "New", "rank": "assistant"},
                        valid_from="06/01/85")

    def test_transaction_clock_survives_stalled_source(self):
        clock = SimulatedClock("01/01/80")
        database = StaticDatabase(clock=clock)
        database.define("r", Schema.of(x=Domain.INTEGER))
        commits = [database.insert("r", {"x": index}) for index in range(5)]
        assert all(a < b for a, b in zip(commits, commits[1:]))
        # now() never precedes the last commit despite the stalled source.
        assert database.now() >= commits[-1]


class TestTQuelUpdateAtomicity:
    def test_replace_with_poison_value_aborts_all_rows(self):
        database, clock = build_faculty(StaticDatabase)
        session = Session(database)
        session.execute("range of f is faculty")
        before = database.snapshot("faculty")
        # 'janitor' violates the rank enumeration for every matched row;
        # the statement must change nothing at all.
        with pytest.raises(ReproError):
            session.execute('replace f (rank = "janitor")')
        assert database.snapshot("faculty") == before

    def test_delete_with_failing_valid_clause_changes_nothing(self):
        database, clock = build_faculty(HistoricalDatabase)
        session = Session(database)
        session.execute("range of f is faculty")
        before = database.history("faculty")
        with pytest.raises(ReproError):
            session.execute('delete f valid from "13/45/99"')
        assert database.history("faculty") == before
