"""Chain-head replication integrity: MITM tamper, degrade, self-heal.

The two-tier divergence scheme under test (docs/REPLICATION.md,
docs/INTEGRITY.md):

- every heartbeat ships the primary's **chain head** — an O(1) compare
  that catches a forged or damaged record even when its frame (CRC) is
  perfectly valid;
- every ``digest_every``-th heartbeat ships the **state digest** — the
  O(state) slow path, memoized on the primary so idle beats are free.

A chain-head mismatch means the *stream* was wrong, not the node: the
replica degrades (reads fail fast unless ``allow_degraded=True``),
requests snapshot repair, adopts it, and emits ``integrity.healed`` —
self-healing instead of latching dead.
"""

import json

import pytest

from repro import obs
from repro.core import TemporalDatabase
from repro.errors import DivergenceError, ReplicationError
from repro.replication import (FailoverCoordinator, InProcessTransport,
                               Primary, state_digest)
from repro.replication.messages import decode_message, record_message
from repro.storage import GENESIS, content_hash, link_hash
from repro.storage.journal import encode_commit
from repro.time import SimulatedClock

from tests.replication.test_replication import converge, make_pair
from tests.storage.probes import drive_faculty, observations


def forge_record_in_flight(transport, target, seq, mutate):
    """Replay *target*'s mailbox, rewriting the record at *seq*.

    The man-in-the-middle: the forged line is a perfectly valid frame
    (fresh CRC), so nothing below the chain can notice.
    """
    forged = 0
    for source, line in transport.receive(target):
        message = decode_message(line)
        if message.get("type") == "record" and message["seq"] == seq:
            entry = mutate(message["entry"])
            line = record_message(message["epoch"], seq, entry)
            forged += 1
        transport.send(source, target, line)
    assert forged == 1, f"no record at seq {seq} was in flight"


def demote_rank(entry):
    """A semantically valid edit: the committed rank, quietly changed."""
    return json.loads(json.dumps(entry).replace('"full"', '"assistant"'))


def synced_pair():
    """A converged pair that has passed its first (digest-carrying) beat."""
    database, primary, (replica,), transport = make_pair()
    drive_faculty(database, stop=4)
    replica.pump()
    primary.heartbeat()  # beat 0: head + digest, both verify
    replica.pump()
    assert replica.verified_seq == 4
    return database, primary, replica, transport


class TestForgedStream:
    def test_crc_valid_forgery_degrades_on_the_next_heartbeat(self):
        database, primary, replica, transport = synced_pair()
        drive_faculty(database, start=4, stop=5)  # ships record seq 4
        forge_record_in_flight(transport, replica.node_id, 4, demote_rank)
        replica.pump()  # applies the forgery; nothing to compare yet
        assert replica.applied_seq == 5
        assert not replica.degraded

        primary.heartbeat()  # beat 1: chain head only — no digest
        with obs.recording() as instrumentation:
            replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.chain_divergence"] == 1
        assert instrumentation.events.aggregate()["integrity.degraded"] == 1
        assert replica.degraded
        # Degraded, not dead: the stream was wrong, the node is healable.
        assert not replica.diverged
        assert replica.verified_seq == 4

    def test_degraded_reads_fail_fast_unless_opted_in(self):
        database, primary, replica, transport = synced_pair()
        drive_faculty(database, start=4, stop=5)
        forge_record_in_flight(transport, replica.node_id, 4, demote_rank)
        replica.pump()
        primary.heartbeat()
        replica.pump()
        with pytest.raises(DivergenceError) as excinfo:
            replica.read("faculty")
        assert "verified through seq 4" in str(excinfo.value)
        # Explicit opt-in serves the suspect state.
        rows = replica.read("faculty", allow_degraded=True)
        assert rows is not None
        health = replica.health()
        assert health["degraded"] is not None
        assert health["verified_seq"] == 4

    def test_degraded_replica_self_heals_from_a_repair_snapshot(self):
        database, primary, replica, transport = synced_pair()
        drive_faculty(database, start=4, stop=5)
        forge_record_in_flight(transport, replica.node_id, 4, demote_rank)
        replica.pump()
        primary.heartbeat()
        replica.pump()  # degrades and sends the repair request
        primary.pump()  # serves the repair snapshot
        with obs.recording() as instrumentation:
            replica.pump()  # adopts it
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.self_heals"] == 1
        assert instrumentation.events.aggregate()["integrity.healed"] == 1
        assert not replica.degraded
        assert replica.chain_head == primary.chain_head
        assert replica.verified_seq == 5
        assert (state_digest(replica.database, cache=False)
                == state_digest(database, cache=False))
        # The healed node serves reads and keeps following the stream.
        replica.read("faculty")
        drive_faculty(database, start=5)
        converge(primary, [replica])
        assert observations(replica.database) == observations(database)

    def test_degraded_replica_keeps_nudging_for_repair(self):
        database, primary, replica, transport = synced_pair()
        drive_faculty(database, start=4, stop=5)
        forge_record_in_flight(transport, replica.node_id, 4, demote_rank)
        replica.pump()
        primary.heartbeat()
        replica.pump()  # first repair request
        with obs.recording() as instrumentation:
            for _ in range(6):  # primary silent: request again after cooldown
                replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters.get("replication.repair_requests", 0) >= 1


class TestHeartbeatCadence:
    def test_heads_every_beat_digests_on_the_cadence(self):
        database, primary, (replica,), _ = make_pair()
        drive_faculty(database)
        replica.pump()
        with obs.recording() as instrumentation:
            for _ in range(8):
                primary.heartbeat()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.heads_sent"] == 8
        assert counters["replication.digests_sent"] == 2  # beats 0 and 4
        replica.pump()
        assert replica.verified_seq == 7
        assert not replica.degraded

    def test_digest_history_is_recorded_every_beat(self):
        database, primary, (replica,), _ = make_pair()
        drive_faculty(database)
        replica.pump()
        primary.heartbeat()
        primary.heartbeat()  # not a digest beat — still recorded
        assert primary.digest_at(7) is not None

    def test_cadence_must_be_positive(self):
        database = TemporalDatabase(clock=SimulatedClock(1))
        with pytest.raises(ValueError):
            Primary("p", database, InProcessTransport(), digest_every=0)


class TestDigestMemoization:
    def test_repeated_digest_hits_the_cache(self):
        database = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(database)
        with obs.recording() as instrumentation:
            first = state_digest(database)
            second = state_digest(database)
        counters = instrumentation.metrics.snapshot()["counters"]
        assert first == second
        assert counters["digest.cache_misses"] == 1
        assert counters["digest.cache_hits"] == 1

    def test_cache_invalidates_on_every_commit(self):
        database = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(database, stop=6)
        before = state_digest(database)
        drive_faculty(database, start=6)
        after = state_digest(database)
        assert before != after

    def test_cache_false_recomputes_and_never_caches(self):
        database = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(database)
        first = state_digest(database)
        with obs.recording() as instrumentation:
            second = state_digest(database, cache=False)
        counters = instrumentation.metrics.snapshot()["counters"]
        assert first == second
        assert counters.get("digest.cache_hits", 0) == 0


class TestPrimaryChainAnchoring:
    def test_heads_are_positional_and_fold_from_genesis(self):
        database, primary, (replica,), _ = make_pair()
        drive_faculty(database)
        assert primary.chain_head_at(0) == GENESIS
        assert primary.chain_head_at(7) == primary.chain_head
        assert primary.chain_head_at(8) is None
        running = GENESIS
        for commit in database.log:
            running = link_hash(running,
                                content_hash(encode_commit(commit)))
        assert running == primary.chain_head

    def test_primary_refuses_a_disputed_chain_head(self):
        database = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(database)
        with pytest.raises(ReplicationError) as excinfo:
            Primary("p", database, InProcessTransport(),
                    chain_head="f" * 64)
        assert "disputed history" in str(excinfo.value)

    def test_primary_accepts_its_own_true_head(self):
        database = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(database)
        running = GENESIS
        for commit in database.log:
            running = link_hash(running,
                                content_hash(encode_commit(commit)))
        primary = Primary("p", database, InProcessTransport(),
                          chain_head=running)
        assert primary.chain_head == running


class TestFailoverChainAudit:
    def test_promotion_reports_the_chain_fast_path(self):
        database, primary, (replica,), transport = make_pair()
        drive_faculty(database)
        replica.pump()
        primary.heartbeat()
        replica.pump()
        promoted, report = FailoverCoordinator(transport).promote(
            replica, old_primary=primary)
        assert report.chain_verified is True
        assert report.chain_head == promoted.chain_head is not None
        assert report.prefix_verified is True

    def test_promotion_aborts_when_the_replica_applied_a_forged_stream(
            self):
        database, primary, replica, transport = synced_pair()
        drive_faculty(database, start=4, stop=5)
        forge_record_in_flight(transport, replica.node_id, 4, demote_rank)
        replica.pump()  # the forgery is applied; no heartbeat ran since
        with pytest.raises(DivergenceError) as excinfo:
            FailoverCoordinator(transport).promote(
                replica, old_primary=primary)
        assert "applied a different stream" in str(excinfo.value)
