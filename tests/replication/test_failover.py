"""Failover: promotion drains the durable prefix, epochs fence zombies.

The guarantees under test (docs/REPLICATION.md):

- the promoted state equals a *durable prefix* of the old primary's
  commit order — with a reachable old primary, the *whole* history
  (zero lost durable commits), digest-verified;
- the new primary streams under a strictly greater epoch, every
  follower adopts it, and records stamped with a deposed epoch are
  rejected (zombie fencing);
- ``read_epoch`` / ``write_epoch`` persist the fencing epoch for the
  hand-operated ``repro promote`` path.
"""

import os

import pytest

from repro import obs
from repro.core import TemporalDatabase
from repro.errors import DivergenceError, StorageError
from repro.replication import (EPOCH_FILE, FailoverCoordinator,
                               FaultyTransport, InProcessTransport, Primary,
                               Replica, read_epoch, state_digest,
                               write_epoch)
from repro.storage import DurabilityManager
from repro.time import SimulatedClock

from tests.storage.probes import drive_faculty, observations, paper_answers


def cluster(replica_count=2):
    # Zero-probability faults: honest delivery, but partitionable.
    transport = FaultyTransport()
    database = TemporalDatabase(clock=SimulatedClock(1))
    primary = Primary("primary", database, transport)
    replicas = [Replica(f"replica-{i}", TemporalDatabase, transport,
                        "primary") for i in range(replica_count)]
    for replica in replicas:
        primary.add_replica(replica.node_id)
    return database, primary, replicas, transport


class TestPlannedFailover:
    def test_promotion_drains_the_undelivered_tail(self):
        database, primary, (victim, follower), transport = cluster()
        drive_faculty(database, stop=5)
        victim.pump()
        follower.pump()
        transport.partition("primary", "replica-0")
        drive_faculty(database, start=5)  # 2 commits the victim never saw
        transport.heal()
        primary.heartbeat()

        promoted, report = FailoverCoordinator(transport).promote(
            victim, old_primary=primary, replicas=[follower.node_id])
        assert report.drained == 2       # the partitioned-away tail
        assert report.promoted_seq == 7 == report.old_seq
        assert report.prefix_verified is True
        assert report.epoch == 1 == promoted.epoch
        assert primary.retired
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(promoted.database) == observations(reference)
        assert paper_answers(promoted.database) == paper_answers(reference)

    def test_followers_adopt_the_new_epoch_and_keep_following(self):
        database, primary, (victim, follower), transport = cluster()
        drive_faculty(database)
        victim.pump()
        follower.pump()
        promoted, _ = FailoverCoordinator(transport).promote(
            victim, old_primary=primary, replicas=[follower.node_id])
        with obs.recording() as instrumentation:
            follower.pump()  # the announce heartbeat carries epoch 1
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.epoch_adoptions"] == 1
        assert follower.epoch == 1
        assert follower.primary_id == promoted.node_id
        # New writes on the promoted primary reach the follower.
        clock = promoted.database.manager.clock.source
        clock.set("06/01/85")
        promoted.database.insert("faculty",
                                 {"name": "Ada", "rank": "full"},
                                 valid_from="06/01/85")
        follower.pump()
        assert follower.applied_seq == promoted.current_seq == 8
        assert state_digest(follower.database) == \
            state_digest(promoted.database)

    def test_crash_failover_without_the_old_primary(self):
        database, primary, (victim, follower), transport = cluster()
        drive_faculty(database, stop=4)
        victim.pump()
        # The primary is gone: promote on the applied prefix alone.
        promoted, report = FailoverCoordinator(transport).promote(
            victim, replicas=[follower.node_id])
        assert report.old_seq is None and report.drained == 0
        assert report.promoted_seq == 4
        assert report.prefix_verified is None  # no reference digest
        assert promoted.epoch == 1

    def test_promoting_a_diverged_replica_is_refused(self):
        database, primary, (victim, follower), transport = cluster()
        drive_faculty(database)
        victim.pump()
        clock = victim.database.manager.clock.source
        clock.set("01/01/85")
        victim.database.insert("faculty", {"name": "Evil", "rank": "full"},
                               valid_from="01/01/85")
        primary.heartbeat()
        victim.pump()
        assert victim.diverged
        with pytest.raises(DivergenceError):
            FailoverCoordinator(transport).promote(victim,
                                                   old_primary=primary)

    def test_promotion_audit_catches_silent_corruption(self):
        # Same corruption, but no heartbeat reached the victim, so only
        # the coordinator's own digest audit can catch it.
        database, primary, (victim, follower), transport = cluster()
        drive_faculty(database)
        victim.pump()
        clock = victim.database.manager.clock.source
        clock.set("01/01/85")
        victim.database.insert("faculty", {"name": "Evil", "rank": "full"},
                               valid_from="01/01/85")
        assert not victim.diverged  # nobody told it yet
        with pytest.raises(DivergenceError):
            FailoverCoordinator(transport).promote(victim,
                                                   old_primary=primary)

    def test_snapshot_drain_when_the_victim_is_below_the_floor(self,
                                                               tmp_path):
        # The old primary was checkpoint-recovered: it retains only the
        # tail in memory.  A victim behind the floor is drained by
        # snapshot first, then records.
        directory = str(tmp_path / "dur")
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=5)
        manager.checkpoint()
        drive_faculty(durable, start=5)
        recovered, report = DurabilityManager(directory).recover(
            TemporalDatabase)
        floor = report.records_total - len(recovered.log)
        transport = InProcessTransport()
        primary = Primary("primary", recovered, transport, floor=floor)
        victim = Replica("replica-0", TemporalDatabase, transport, "primary")
        primary.add_replica("replica-0")
        assert victim.applied_seq == 0 < primary.floor == 5

        promoted, promotion = FailoverCoordinator(transport).promote(
            victim, old_primary=primary)
        assert promotion.promoted_seq == 7
        assert promotion.prefix_verified is True
        assert promoted.floor == 7  # snapshot state carries no log tail
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        assert observations(promoted.database) == observations(reference)


class TestZombieFencing:
    def test_zombie_records_are_rejected_by_epoch(self):
        database, primary, (victim, follower), transport = cluster()
        drive_faculty(database, stop=5)
        victim.pump()
        follower.pump()
        promoted, _ = FailoverCoordinator(transport).promote(
            victim, old_primary=primary, replicas=[follower.node_id])
        follower.pump()  # adopt epoch 1
        # The old primary never heard it was deposed ("retire" did not
        # reach it): it keeps committing and streaming under epoch 0.
        primary._retired = False
        clock = database.manager.clock.source
        clock.set("06/01/85")
        database.insert("faculty", {"name": "Zombie", "rank": "assistant"},
                        valid_from="06/01/85")
        before = follower.applied_seq
        with obs.recording() as instrumentation:
            follower.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.fenced_rejects"] == 1
        assert follower.applied_seq == before  # the zombie write is gone
        assert not any(row["name"] == "Zombie"
                       for row in follower.read("faculty"))

    def test_adoption_discards_buffered_records_of_the_deposed_epoch(self):
        database, primary, (victim, follower), transport = cluster()
        drive_faculty(database, stop=3)
        victim.pump()
        follower.pump()
        drive_faculty(database, start=3, stop=5)
        # Withhold the first of the two queued records: the follower
        # sees only the later one and buffers it against the gap.
        deliveries = transport.receive("replica-1")
        assert len(deliveries) == 2
        source, payload = deliveries[1]
        transport.send(source, "replica-1", payload)
        follower.pump()
        assert follower._buffer  # seq 4 waits for seq 3
        victim.pump()
        promoted, _ = FailoverCoordinator(transport).promote(
            victim, old_primary=primary, replicas=[follower.node_id])
        follower.pump()  # adopts epoch 1, clears the stale buffer
        assert follower.epoch == 1
        assert not follower._buffer
        # The follower re-requests and converges on the new primary.
        for _ in range(20):
            if follower.applied_seq >= promoted.current_seq:
                break
            promoted.pump()
            follower.pump()
        assert state_digest(follower.database) == \
            state_digest(promoted.database)


class TestEpochFile:
    def test_roundtrip(self, tmp_path):
        directory = str(tmp_path / "dur")
        assert read_epoch(directory) == 0  # absent means epoch zero
        path = write_epoch(directory, 3)
        assert os.path.basename(path) == EPOCH_FILE
        assert read_epoch(directory) == 3
        write_epoch(directory, 4)
        assert read_epoch(directory) == 4

    def test_garbage_is_a_typed_error(self, tmp_path):
        directory = str(tmp_path / "dur")
        os.makedirs(directory)
        with open(os.path.join(directory, EPOCH_FILE), "w") as handle:
            handle.write("not-an-epoch")
        with pytest.raises(StorageError):
            read_epoch(directory)

    def test_negative_epochs_are_refused(self, tmp_path):
        with pytest.raises(ValueError):
            write_epoch(str(tmp_path / "dur"), -1)
