"""Journal shipping: replicas converge to the primary's exact state.

The core property mirrors the durability suite's: a replica that applied
the shipped commit order is *observationally identical* to the primary —
snapshots, rollbacks, timeslices and the paper's §4.1–§4.4 TQuel answers
all agree — whatever the transport did to the stream on the way there
(duplicates, reorderings, drops, delays).
"""

import pytest

from repro import obs
from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import DivergenceError, ReplicaLagging
from repro.replication import (FaultyTransport, InProcessTransport, Primary,
                               Replica, canonical_state, state_digest)
from repro.storage import DurabilityManager
from repro.time import SimulatedClock

from tests.storage.probes import drive_faculty, observations, paper_answers

ALL_KINDS = [StaticDatabase, RollbackDatabase, HistoricalDatabase,
             TemporalDatabase]


def make_pair(kind=TemporalDatabase, transport=None, replica_count=1):
    """A primary plus attached replicas over a shared transport."""
    transport = transport if transport is not None else InProcessTransport()
    database = kind(clock=SimulatedClock(1))
    primary = Primary("primary", database, transport)
    replicas = [Replica(f"replica-{i}", kind, transport, "primary")
                for i in range(replica_count)]
    for replica in replicas:
        primary.add_replica(replica.node_id)
    return database, primary, replicas, transport


def converge(primary, replicas, rounds=500):
    """Pump both ends until every replica reaches the primary's seq."""
    for _ in range(rounds):
        if all(r.applied_seq >= primary.current_seq for r in replicas):
            return
        primary.pump()
        primary.heartbeat()
        for replica in replicas:
            replica.pump()
    raise AssertionError(
        "no convergence: primary at %d, replicas at %s" % (
            primary.current_seq, [r.applied_seq for r in replicas]))


class TestCleanStream:
    @pytest.mark.parametrize("db_class", ALL_KINDS)
    def test_replica_answers_paper_queries_identically(self, db_class):
        database, primary, (replica,), _ = make_pair(db_class)
        drive_faculty(database)
        replica.pump()
        assert replica.applied_seq == primary.current_seq == 7
        assert observations(replica.database) == observations(database)
        assert paper_answers(replica.database) == paper_answers(database)
        assert state_digest(replica.database) == state_digest(database)

    def test_two_replicas_get_the_same_stream(self):
        database, primary, replicas, _ = make_pair(replica_count=2)
        drive_faculty(database)
        for replica in replicas:
            replica.pump()
        digests = {state_digest(r.database) for r in replicas}
        assert digests == {state_digest(database)}

    def test_commit_times_are_preserved(self):
        database, _, (replica,), _ = make_pair()
        drive_faculty(database)
        replica.pump()
        assert [r.commit_time for r in replica.database.log] == \
            [r.commit_time for r in database.log]

    def test_heartbeat_digest_check_passes(self):
        database, primary, (replica,), _ = make_pair()
        drive_faculty(database)
        replica.pump()
        primary.heartbeat()
        replica.pump()
        assert not replica.diverged
        replica.check()  # does not raise


class TestStreamDiscipline:
    def test_duplicates_are_dropped_idempotently(self):
        transport = FaultyTransport(duplicate=1.0)
        database, primary, (replica,), _ = make_pair(transport=transport)
        with obs.recording() as instrumentation:
            drive_faculty(database)
            replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.duplicates_dropped"] == 7
        assert replica.applied_seq == 7
        assert state_digest(replica.database) == state_digest(database)

    def test_reordered_records_are_buffered_then_drained(self):
        transport = FaultyTransport(reorder=1.0)
        database, primary, (replica,), _ = make_pair(transport=transport)
        with obs.recording() as instrumentation:
            drive_faculty(database)
            replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.gaps_detected"] > 0
        assert replica.applied_seq == 7
        assert observations(replica.database) == observations(database)

    def test_dropped_records_heal_by_resend(self):
        transport = FaultyTransport(seed=3, drop=0.4)
        database, primary, (replica,), _ = make_pair(transport=transport)
        drive_faculty(database)
        converge(primary, [replica])
        assert replica.applied_seq == 7
        assert paper_answers(replica.database) == paper_answers(database)

    def test_delayed_records_arrive_late_but_in_order(self):
        transport = FaultyTransport(delay=1.0, delay_rounds=3)
        database, primary, (replica,), _ = make_pair(transport=transport)
        drive_faculty(database)
        converge(primary, [replica])
        assert state_digest(replica.database) == state_digest(database)

    def test_garbage_frames_are_rejected_not_fatal(self):
        database, primary, (replica,), transport = make_pair()
        transport.send("primary", "replica-0", "p1 nonsense")
        transport.send("primary", "replica-0", "not even a frame")
        with obs.recording() as instrumentation:
            replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.frames_rejected"] == 2
        drive_faculty(database)
        replica.pump()
        assert replica.applied_seq == 7  # the stream survived the garbage

    @pytest.mark.parametrize("seed", [1, 7, 1985])
    def test_hostile_schedule_property(self, seed):
        # Drop + duplicate + reorder + delay together, three seeds: the
        # stream must still converge to digest equality.
        transport = FaultyTransport(seed=seed, drop=0.2, duplicate=0.2,
                                    reorder=0.2, delay=0.2)
        database, primary, (replica,), _ = make_pair(transport=transport)
        drive_faculty(database)
        converge(primary, [replica])
        assert state_digest(replica.database) == state_digest(database)


class TestSnapshotCatchUp:
    def _checkpointed_primary(self, directory, transport):
        """A primary recovered from a checkpoint: its floor is above 0."""
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=5)
        manager.checkpoint()
        drive_faculty(durable, start=5)
        recovered_manager = DurabilityManager(directory)
        recovered, report = recovered_manager.recover(TemporalDatabase)
        floor = report.records_total - len(recovered.log)
        assert floor == 5  # the checkpoint truncated the in-memory log
        return Primary("primary", recovered, transport, floor=floor)

    def test_cold_replica_catches_up_by_snapshot(self, tmp_path):
        transport = InProcessTransport()
        primary = self._checkpointed_primary(str(tmp_path / "dur"),
                                             transport)
        replica = Replica("cold", TemporalDatabase, transport, "primary")
        primary.add_replica("cold")
        with obs.recording() as instrumentation:
            replica.request_catchup()
            primary.pump()
            replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.snapshots_served"] == 1
        assert counters["replication.snapshots_loaded"] == 1
        assert replica.applied_seq == primary.current_seq == 7
        assert replica.log_floor == 7  # state came as a snapshot, not log
        assert state_digest(replica.database) == \
            state_digest(primary.database)
        assert paper_answers(replica.database) == \
            paper_answers(primary.database)

    def test_snapshot_replica_follows_the_stream_afterwards(self, tmp_path):
        transport = InProcessTransport()
        primary = self._checkpointed_primary(str(tmp_path / "dur"),
                                             transport)
        replica = Replica("cold", TemporalDatabase, transport, "primary")
        primary.add_replica("cold")
        replica.request_catchup()
        primary.pump()
        replica.pump()
        clock = primary.database.manager.clock.source
        clock.set("06/01/85")
        primary.database.insert("faculty", {"name": "Ada", "rank": "full"},
                                valid_from="06/01/85")
        replica.pump()
        assert replica.applied_seq == 8
        assert state_digest(replica.database) == \
            state_digest(primary.database)

    def test_resend_below_floor_falls_back_to_snapshot(self, tmp_path):
        # A replica that applied part of the pre-checkpoint history asks
        # for records the primary no longer retains.
        transport = InProcessTransport()
        primary = self._checkpointed_primary(str(tmp_path / "dur"),
                                             transport)
        replica = Replica("cold", TemporalDatabase, transport, "primary")
        replica.applied_seq = 2  # pretend: 2 records applied long ago
        primary.add_replica("cold")
        replica.request_catchup()
        primary.pump()  # 2 < floor of 5 -> snapshot, not records
        with obs.recording() as instrumentation:
            replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.snapshots_loaded"] == 1
        assert replica.applied_seq == 7


class TestDivergenceDetection:
    def test_local_corruption_latches_on_the_next_heartbeat(self):
        database, primary, (replica,), _ = make_pair()
        drive_faculty(database)
        replica.pump()
        # Corrupt the replica out-of-band: a local write no primary sent.
        clock = replica.database.manager.clock.source
        clock.set("01/01/85")
        replica.database.insert("faculty",
                                {"name": "Evil", "rank": "full"},
                                valid_from="01/01/85")
        primary.heartbeat()
        with obs.recording() as instrumentation:
            replica.pump()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["replication.divergence_detected"] == 1
        assert replica.diverged
        with pytest.raises(DivergenceError):
            replica.check()
        with pytest.raises(DivergenceError):
            replica.read("faculty")
        assert DivergenceError("x").retryable is False

    def test_healthy_replica_never_latches(self):
        database, primary, (replica,), _ = make_pair()
        for stop in range(1, 8):
            drive_faculty(database, start=stop - 1, stop=stop)
            replica.pump()
            primary.heartbeat()
            replica.pump()
        assert not replica.diverged


class TestLagAndTokens:
    def test_lag_gauges_report_records_and_chronons(self):
        database, primary, (replica,), transport = make_pair(
            transport=FaultyTransport())
        drive_faculty(database, stop=3)
        replica.pump()
        transport.partition("primary", "replica-0")
        drive_faculty(database, start=3)  # 4 more commits the link drops
        transport.heal()
        primary.heartbeat()  # advertises head seq + head chronon
        with obs.recording() as instrumentation:
            replica.pump()  # sees the head, still behind
        gauges = instrumentation.metrics.snapshot()["gauges"]
        assert gauges["replication.lag_records"] == 4
        assert gauges["replication.lag_chronons"] > 0
        records, chronons = replica.lag()
        assert records == 4 and chronons > 0
        primary.pump()  # serve the gap request the pump sent
        replica.pump()
        assert replica.lag() == (0, 0)

    def test_read_your_writes_token_gates_replica_reads(self):
        database, primary, (replica,), _ = make_pair()
        drive_faculty(database, stop=2)
        replica.pump()
        layer = database.sessions()

        def add_mike(session):
            session.insert("faculty", {"name": "Mike", "rank": "assistant"},
                           valid_from="01/01/83")

        clock = database.manager.clock.source
        clock.set("01/10/83")
        box = {}

        def closure(session, _box=box):
            _box["session"] = session
            add_mike(session)

        layer.run(closure)
        token = box["session"].commit_token
        assert token == 3
        # The replica has not applied the write yet: the token holds it.
        with pytest.raises(ReplicaLagging) as caught:
            replica.read("faculty", token=token)
        assert caught.value.retryable is True
        assert caught.value.token == 3 and caught.value.applied == 2
        replica.pump()
        rows = replica.read("faculty", token=token)
        assert any(row["name"] == "Mike" for row in rows)

    def test_timeslice_and_rollback_respect_the_token(self):
        database, primary, (replica,), _ = make_pair()
        drive_faculty(database, stop=2)
        replica.pump()
        drive_faculty(database, start=2, stop=3)  # not yet pumped
        with pytest.raises(ReplicaLagging):
            replica.timeslice("faculty", "12/10/82", token=3)
        with pytest.raises(ReplicaLagging):
            replica.rollback("faculty", "12/10/82", token=3)
        replica.pump()
        assert replica.timeslice("faculty", "12/10/82", token=3) is not None
        assert replica.rollback("faculty", "12/10/82", token=3) is not None


class TestDigest:
    def test_digest_is_recovery_stable(self, tmp_path):
        # The same history, never-crashed vs checkpoint-recovered vs
        # fully-replayed, hashes identically.
        reference = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(reference)
        directory = str(tmp_path / "dur")
        manager = DurabilityManager(directory)
        durable, _ = manager.recover(TemporalDatabase)
        drive_faculty(durable, stop=4)
        manager.checkpoint()
        drive_faculty(durable, start=4)
        fast, _ = DurabilityManager(directory).recover(TemporalDatabase)
        slow, _ = DurabilityManager(directory).recover(
            TemporalDatabase, use_checkpoint=False)
        assert state_digest(reference) == state_digest(durable) == \
            state_digest(fast) == state_digest(slow)

    def test_digest_distinguishes_different_histories(self):
        a = TemporalDatabase(clock=SimulatedClock(1))
        b = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(a)
        drive_faculty(b, stop=6)
        assert state_digest(a) != state_digest(b)

    def test_canonical_state_excludes_the_clock(self):
        database = TemporalDatabase(clock=SimulatedClock(1))
        drive_faculty(database)
        assert "clock_last" not in canonical_state(database)
