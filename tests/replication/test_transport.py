"""The transport seam: honest delivery, then every injected misbehaviour.

The fault injector must be *deterministic* — a fixed seed reproduces the
exact fault schedule for a given message sequence — and every fault must
map to a typed, retryable error (the protocol's promise that a hostile
network can slow a replica down but never corrupt it).
"""

import pytest

from repro.errors import ReplicationError, TransportError
from repro.replication import (ALL_TRANSPORT_FAULTS, FAULT_ERRORS,
                               FaultyTransport, InProcessTransport,
                               TransportFault, fault_error)


class TestInProcessTransport:
    def test_per_target_fifo(self):
        transport = InProcessTransport()
        transport.send("a", "b", "one")
        transport.send("a", "b", "two")
        transport.send("a", "c", "other")
        assert transport.receive("b") == [("a", "one"), ("a", "two")]
        assert transport.receive("c") == [("a", "other")]
        assert transport.receive("b") == []

    def test_receive_limit(self):
        transport = InProcessTransport()
        for i in range(5):
            transport.send("a", "b", str(i))
        assert [line for _, line in transport.receive("b", limit=2)] == \
            ["0", "1"]
        assert transport.pending("b") == 3

    def test_unknown_target_is_empty(self):
        assert InProcessTransport().receive("nobody") == []


class TestFaultDeterminism:
    def test_same_seed_same_schedule(self):
        def run(seed):
            transport = FaultyTransport(seed=seed, drop=0.3, duplicate=0.3,
                                        reorder=0.3)
            for i in range(40):
                transport.send("a", "b", f"m{i}")
            return [line for _, line in transport.receive("b")]

        assert run(5) == run(5)
        assert run(5) != run(6)  # a different seed, a different schedule


class TestEachFault:
    def test_drop_loses_the_message(self):
        transport = FaultyTransport(drop=1.0)
        transport.send("a", "b", "gone")
        assert transport.receive("b") == []
        assert transport.pending("b") == 0

    def test_duplicate_delivers_twice(self):
        transport = FaultyTransport(duplicate=1.0)
        transport.send("a", "b", "twice")
        assert transport.receive("b") == [("a", "twice"), ("a", "twice")]

    def test_reorder_jumps_the_queue(self):
        transport = FaultyTransport(seed=0)
        transport.send("a", "b", "first")
        jumper = FaultyTransport(inner=transport._inner, reorder=1.0)
        jumper.send("a", "b", "pushy")
        assert [line for _, line in transport.receive("b")] == \
            ["pushy", "first"]

    def test_delay_holds_for_n_receive_rounds(self):
        transport = FaultyTransport(delay=1.0, delay_rounds=2)
        transport.send("a", "b", "late")
        assert transport.pending("b") == 1  # held, but accounted for
        assert transport.receive("b") == []          # round 1: still held
        assert transport.receive("b") == [("a", "late")]  # round 2: due

    def test_partition_is_symmetric_until_healed(self):
        transport = FaultyTransport()
        transport.partition("a", "b")
        assert transport.partitioned("a", "b")
        assert transport.partitioned("b", "a")
        transport.send("a", "b", "x")
        transport.send("b", "a", "y")
        assert transport.receive("a") == []
        assert transport.receive("b") == []
        transport.send("a", "c", "ok")  # other links unaffected
        assert transport.receive("c") == [("a", "ok")]
        transport.heal("b", "a")
        transport.send("a", "b", "through")
        assert transport.receive("b") == [("a", "through")]

    def test_heal_without_arguments_restores_every_link(self):
        transport = FaultyTransport()
        transport.partition("a", "b")
        transport.partition("a", "c")
        transport.heal()
        assert not transport.partitioned("a", "b")
        assert not transport.partitioned("a", "c")


class TestFaultErrorMapping:
    """Every fault kind surfaces as a typed, retryable replication error."""

    @pytest.mark.parametrize("fault", ALL_TRANSPORT_FAULTS,
                             ids=[f.value for f in ALL_TRANSPORT_FAULTS])
    def test_every_fault_is_mapped_and_retryable(self, fault):
        error_class = fault_error(fault)
        assert error_class is FAULT_ERRORS[fault]
        assert issubclass(error_class, ReplicationError)
        assert error_class("injected").retryable is True

    def test_the_mapping_covers_the_whole_enum(self):
        assert set(FAULT_ERRORS) == set(TransportFault)

    def test_unmapped_fault_raises(self):
        with pytest.raises(TransportError):
            fault_error("not-a-fault")
