"""Unit + property tests for the temporal indexes (interval trees)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BitemporalIndex, DatabaseIndexCache, HistoricalIndex,
                        IntervalTree, RollbackDatabase, RollbackIndex,
                        TemporalDatabase)
from repro.relational import Domain, Schema
from repro.time import Instant, NEG_INF, POS_INF, Period, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

from tests.conftest import build_faculty

BASE = Instant.parse("01/01/80").chronon


def period(lo, hi):
    return Period(Instant.from_chronon(BASE + lo) if lo is not None else NEG_INF,
                  Instant.from_chronon(BASE + hi) if hi is not None else POS_INF)


class TestIntervalTree:
    def test_basic_stabbing(self):
        tree = IntervalTree([(period(0, 10), "a"), (period(5, 15), "b"),
                             (period(20, 30), "c")])
        assert sorted(tree.stab(Instant.from_chronon(BASE + 7))) == ["a", "b"]
        assert tree.stab(Instant.from_chronon(BASE + 17)) == []
        assert tree.stab(Instant.from_chronon(BASE + 25)) == ["c"]

    def test_half_open_boundaries(self):
        tree = IntervalTree([(period(0, 10), "a")])
        assert tree.stab(Instant.from_chronon(BASE + 0)) == ["a"]
        assert tree.stab(Instant.from_chronon(BASE + 9)) == ["a"]
        assert tree.stab(Instant.from_chronon(BASE + 10)) == []

    def test_unbounded_intervals(self):
        tree = IntervalTree([(period(None, 5), "past"),
                             (period(5, None), "future"),
                             (Period.always(), "always")])
        assert sorted(tree.stab(Instant.from_chronon(BASE + 3))) == [
            "always", "past"]
        assert sorted(tree.stab(Instant.from_chronon(BASE + 1000))) == [
            "always", "future"]

    def test_empty_tree(self):
        tree = IntervalTree([])
        assert tree.stab(Instant.from_chronon(BASE)) == []
        assert len(tree) == 0

    def test_identical_intervals(self):
        tree = IntervalTree([(period(0, 10), i) for i in range(5)])
        assert sorted(tree.stab(Instant.from_chronon(BASE + 5))) == [
            0, 1, 2, 3, 4]

    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 25)),
                    max_size=40),
           st.integers(-5, 90))
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, raw, probe_offset):
        items = [(period(lo, lo + length), index)
                 for index, (lo, length) in enumerate(raw)]
        tree = IntervalTree(items)
        probe = Instant.from_chronon(BASE + probe_offset)
        expected = sorted(index for p, index in items if p.contains(probe))
        assert sorted(tree.stab(probe)) == expected

    @given(st.lists(st.tuples(
        st.one_of(st.none(), st.integers(0, 40)),
        st.one_of(st.none(), st.integers(41, 80))), max_size=25),
        st.integers(-10, 100))
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_scan_with_unbounded(self, raw, probe_offset):
        items = [(period(lo, hi), index)
                 for index, (lo, hi) in enumerate(raw)]
        tree = IntervalTree(items)
        probe = Instant.from_chronon(BASE + probe_offset)
        expected = sorted(index for p, index in items if p.contains(probe))
        assert sorted(tree.stab(probe)) == expected


class TestOverlapping:
    def test_basic(self):
        tree = IntervalTree([(period(0, 10), "a"), (period(5, 15), "b"),
                             (period(20, 30), "c")])
        assert sorted(tree.overlapping(period(8, 22))) == ["a", "b", "c"]
        assert tree.overlapping(period(16, 19)) == []

    def test_meeting_does_not_overlap(self):
        tree = IntervalTree([(period(0, 10), "a")])
        assert tree.overlapping(period(10, 20)) == []
        assert tree.overlapping(period(9, 20)) == ["a"]

    def test_unbounded_query(self):
        tree = IntervalTree([(period(0, 10), "a"), (period(50, 60), "b")])
        assert sorted(tree.overlapping(Period.always())) == ["a", "b"]

    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 25)),
                    max_size=30),
           st.integers(-5, 80), st.integers(1, 30))
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, raw, query_lo, query_len):
        items = [(period(lo, lo + length), index)
                 for index, (lo, length) in enumerate(raw)]
        tree = IntervalTree(items)
        query = period(query_lo, query_lo + query_len)
        expected = sorted(index for p, index in items if p.overlaps(query))
        assert sorted(tree.overlapping(query)) == expected


class TestRelationIndexes:
    def test_historical_index_matches_timeslice(self, historical_faculty):
        database, _ = historical_faculty
        history = database.history("faculty")
        index = HistoricalIndex(history)
        for probe in ("08/31/77", "09/01/77", "12/06/82", "06/01/83",
                      "03/01/84"):
            assert index.timeslice(probe) == history.timeslice(probe), probe

    def test_rollback_index_matches_rollback(self, rollback_faculty):
        database, _ = rollback_faculty
        store = database.store("faculty")
        index = RollbackIndex(store)
        for probe in ("01/01/77", "08/25/77", "12/10/82", "06/01/83",
                      "01/01/85"):
            assert index.rollback(probe) == store.rollback(probe), probe

    def test_bitemporal_index_matches_both_axes(self, temporal_faculty):
        database, _ = temporal_faculty
        relation = database.temporal("faculty")
        index = BitemporalIndex(relation)
        for as_of in ("12/06/82", "12/10/82", "12/20/82", "06/01/84"):
            assert index.rollback(as_of) == relation.rollback(as_of), as_of
            for valid_at in ("12/06/82", "06/01/83"):
                assert index.timeslice(valid_at, as_of) == \
                    relation.timeslice(valid_at, as_of), (valid_at, as_of)

    def test_at_workload_scale(self):
        database = TemporalDatabase(clock=SimulatedClock("01/01/79"))
        apply_workload(database, FacultyWorkload(people=15, seed=3))
        relation = database.temporal("faculty")
        index = BitemporalIndex(relation)
        probes = [Instant.from_chronon(BASE + offset)
                  for offset in range(0, 1500, 97)]
        for probe in probes:
            assert index.rollback(probe) == relation.rollback(probe)


class TestDatabaseIndexCache:
    def test_serves_current_answers(self, temporal_faculty):
        database, _ = temporal_faculty
        cache = DatabaseIndexCache(database)
        assert cache.bitemporal("faculty").rollback("12/10/82") == \
            database.rollback("faculty", "12/10/82")

    def test_reuses_until_commit(self, temporal_faculty):
        database, _ = temporal_faculty
        cache = DatabaseIndexCache(database)
        first = cache.bitemporal("faculty")
        second = cache.bitemporal("faculty")
        assert first is second

    def test_invalidates_on_commit(self, temporal_faculty):
        database, clock = temporal_faculty
        cache = DatabaseIndexCache(database)
        stale = cache.bitemporal("faculty")
        clock.set("06/01/85")
        database.insert("faculty", {"name": "New", "rank": "assistant"},
                        valid_from="06/01/85")
        fresh = cache.bitemporal("faculty")
        assert fresh is not stale
        # And the fresh index sees the new fact.
        assert any(row.data["name"] == "New"
                   for row in fresh.rollback("06/01/85").rows)

    def test_rollback_and_historical_flavours(self, rollback_faculty,
                                              historical_faculty):
        rollback_db, _ = rollback_faculty
        cache = DatabaseIndexCache(rollback_db)
        assert cache.rollback("faculty").rollback("12/10/82") == \
            rollback_db.rollback("faculty", "12/10/82")
        historical_db, _ = historical_faculty
        cache2 = DatabaseIndexCache(historical_db)
        assert cache2.historical("faculty").timeslice("06/01/83") == \
            historical_db.timeslice("faculty", "06/01/83")


class TestIntervalTreeOverlay:
    """Edits land in the delta overlay and fold in at the rebuild threshold."""

    def test_insert_visible_without_rebuild(self):
        tree = IntervalTree([(period(0, 10), "a")])
        tree.insert(period(5, 15), "b")
        assert tree.pending_edits == 1
        assert tree.size == 2
        assert sorted(tree.stab(Instant.from_chronon(BASE + 7))) == ["a", "b"]
        assert tree.overlapping(period(12, 20)) == ["b"]

    def test_discard_respects_duplicate_multiplicity(self):
        tree = IntervalTree([(period(0, 10), "a"), (period(0, 10), "a")])
        probe = Instant.from_chronon(BASE + 5)
        assert tree.discard(period(0, 10), "a")
        assert tree.stab(probe) == ["a"]
        assert tree.discard(period(0, 10), "a")
        assert tree.stab(probe) == []
        assert not tree.discard(period(0, 10), "a")

    def test_discard_from_overlay(self):
        tree = IntervalTree([])
        tree.insert(period(0, 10), "a")
        assert tree.discard(period(0, 10), "a")
        assert tree.size == 0
        assert tree.stab(Instant.from_chronon(BASE + 5)) == []

    def test_threshold_rebuild_folds_edits(self):
        tree = IntervalTree([(period(i, i + 1), i) for i in range(4)])
        edits = IntervalTree.REBUILD_MIN + 8
        for j in range(edits):
            tree.insert(period(j, j + 2), 100 + j)
        # The threshold fired at least once, folding edits into the base.
        assert tree.pending_edits < edits
        assert tree.size == 4 + edits
        probe = Instant.from_chronon(BASE + 2)
        expected = [2, 101, 102]  # [2,3), [1,3) and [2,4) contain +2
        assert sorted(tree.stab(probe)) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(0, 20), st.integers(1, 10),
                              st.integers(0, 3)),
                    max_size=40))
    def test_edit_sequence_matches_list_model(self, ops):
        tree = IntervalTree([])
        model = []
        for is_insert, lo, width, payload in ops:
            item = (period(lo, lo + width), payload)
            if is_insert or item not in model:
                tree.insert(*item)
                model.append(item)
            else:
                assert tree.discard(*item)
                model.remove(item)
        assert tree.size == len(model)
        for point in range(0, 32, 3):
            probe = Instant.from_chronon(BASE + point)
            expected = sorted(payload for prd, payload in model
                              if prd.contains(probe))
            assert sorted(tree.stab(probe)) == expected


class TestIncrementalCacheMaintenance:
    def test_unrelated_commit_keeps_cache_warm(self, temporal_faculty):
        # The acceptance criterion: a commit against relation B must not
        # invalidate (or rebuild) relation A's cached index.
        database, clock = temporal_faculty
        database.define("other", Schema.of(name=Domain.STRING))
        cache = database.index_cache
        warm = cache.bitemporal("faculty")
        hits = cache.hits
        misses = cache.misses
        clock.set("06/01/85")
        database.insert("other", {"name": "noise"}, valid_from="06/01/85")
        again = cache.bitemporal("faculty")
        assert again is warm
        assert cache.hits == hits + 1
        assert cache.misses == misses

    def test_default_query_path_uses_cache(self, temporal_faculty):
        database, _ = temporal_faculty
        first = database.rollback("faculty", "12/10/82")
        cache = database.index_cache
        misses = cache.misses
        second = database.rollback("faculty", "12/10/82")
        assert second == first
        assert cache.misses == misses
        assert cache.hits >= 1

    def test_commit_patches_index_incrementally(self, temporal_faculty):
        database, clock = temporal_faculty
        cache = database.index_cache
        stale = cache.bitemporal("faculty")
        clock.set("06/01/85")
        database.insert("faculty", {"name": "New", "rank": "assistant"},
                        valid_from="06/01/85")
        patched = cache.incremental_updates
        fresh = cache.bitemporal("faculty")
        assert cache.incremental_updates == patched + 1
        assert fresh is not stale
        relation = database.temporal("faculty")
        assert fresh.rollback("06/01/85") == relation.rollback("06/01/85")
        assert fresh.rollback("12/10/82") == relation.rollback("12/10/82")

    def test_index_disabled_still_answers(self, temporal_faculty):
        indexed, _ = temporal_faculty
        plain = TemporalDatabase(clock=SimulatedClock("01/01/79"))
        apply_workload(plain, FacultyWorkload(people=6, seed=1))
        bare = TemporalDatabase(clock=SimulatedClock("01/01/79"), index=False)
        apply_workload(bare, FacultyWorkload(people=6, seed=1))
        assert bare.index_cache is None
        assert plain.rollback("faculty", "12/10/82") == \
            bare.rollback("faculty", "12/10/82")
