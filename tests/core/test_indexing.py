"""Unit + property tests for the temporal indexes (interval trees)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BitemporalIndex, DatabaseIndexCache, HistoricalIndex,
                        IntervalTree, RollbackDatabase, RollbackIndex,
                        TemporalDatabase)
from repro.time import Instant, NEG_INF, POS_INF, Period, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

from tests.conftest import build_faculty

BASE = Instant.parse("01/01/80").chronon


def period(lo, hi):
    return Period(Instant.from_chronon(BASE + lo) if lo is not None else NEG_INF,
                  Instant.from_chronon(BASE + hi) if hi is not None else POS_INF)


class TestIntervalTree:
    def test_basic_stabbing(self):
        tree = IntervalTree([(period(0, 10), "a"), (period(5, 15), "b"),
                             (period(20, 30), "c")])
        assert sorted(tree.stab(Instant.from_chronon(BASE + 7))) == ["a", "b"]
        assert tree.stab(Instant.from_chronon(BASE + 17)) == []
        assert tree.stab(Instant.from_chronon(BASE + 25)) == ["c"]

    def test_half_open_boundaries(self):
        tree = IntervalTree([(period(0, 10), "a")])
        assert tree.stab(Instant.from_chronon(BASE + 0)) == ["a"]
        assert tree.stab(Instant.from_chronon(BASE + 9)) == ["a"]
        assert tree.stab(Instant.from_chronon(BASE + 10)) == []

    def test_unbounded_intervals(self):
        tree = IntervalTree([(period(None, 5), "past"),
                             (period(5, None), "future"),
                             (Period.always(), "always")])
        assert sorted(tree.stab(Instant.from_chronon(BASE + 3))) == [
            "always", "past"]
        assert sorted(tree.stab(Instant.from_chronon(BASE + 1000))) == [
            "always", "future"]

    def test_empty_tree(self):
        tree = IntervalTree([])
        assert tree.stab(Instant.from_chronon(BASE)) == []
        assert len(tree) == 0

    def test_identical_intervals(self):
        tree = IntervalTree([(period(0, 10), i) for i in range(5)])
        assert sorted(tree.stab(Instant.from_chronon(BASE + 5))) == [
            0, 1, 2, 3, 4]

    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 25)),
                    max_size=40),
           st.integers(-5, 90))
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, raw, probe_offset):
        items = [(period(lo, lo + length), index)
                 for index, (lo, length) in enumerate(raw)]
        tree = IntervalTree(items)
        probe = Instant.from_chronon(BASE + probe_offset)
        expected = sorted(index for p, index in items if p.contains(probe))
        assert sorted(tree.stab(probe)) == expected

    @given(st.lists(st.tuples(
        st.one_of(st.none(), st.integers(0, 40)),
        st.one_of(st.none(), st.integers(41, 80))), max_size=25),
        st.integers(-10, 100))
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_scan_with_unbounded(self, raw, probe_offset):
        items = [(period(lo, hi), index)
                 for index, (lo, hi) in enumerate(raw)]
        tree = IntervalTree(items)
        probe = Instant.from_chronon(BASE + probe_offset)
        expected = sorted(index for p, index in items if p.contains(probe))
        assert sorted(tree.stab(probe)) == expected


class TestOverlapping:
    def test_basic(self):
        tree = IntervalTree([(period(0, 10), "a"), (period(5, 15), "b"),
                             (period(20, 30), "c")])
        assert sorted(tree.overlapping(period(8, 22))) == ["a", "b", "c"]
        assert tree.overlapping(period(16, 19)) == []

    def test_meeting_does_not_overlap(self):
        tree = IntervalTree([(period(0, 10), "a")])
        assert tree.overlapping(period(10, 20)) == []
        assert tree.overlapping(period(9, 20)) == ["a"]

    def test_unbounded_query(self):
        tree = IntervalTree([(period(0, 10), "a"), (period(50, 60), "b")])
        assert sorted(tree.overlapping(Period.always())) == ["a", "b"]

    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 25)),
                    max_size=30),
           st.integers(-5, 80), st.integers(1, 30))
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, raw, query_lo, query_len):
        items = [(period(lo, lo + length), index)
                 for index, (lo, length) in enumerate(raw)]
        tree = IntervalTree(items)
        query = period(query_lo, query_lo + query_len)
        expected = sorted(index for p, index in items if p.overlaps(query))
        assert sorted(tree.overlapping(query)) == expected


class TestRelationIndexes:
    def test_historical_index_matches_timeslice(self, historical_faculty):
        database, _ = historical_faculty
        history = database.history("faculty")
        index = HistoricalIndex(history)
        for probe in ("08/31/77", "09/01/77", "12/06/82", "06/01/83",
                      "03/01/84"):
            assert index.timeslice(probe) == history.timeslice(probe), probe

    def test_rollback_index_matches_rollback(self, rollback_faculty):
        database, _ = rollback_faculty
        store = database.store("faculty")
        index = RollbackIndex(store)
        for probe in ("01/01/77", "08/25/77", "12/10/82", "06/01/83",
                      "01/01/85"):
            assert index.rollback(probe) == store.rollback(probe), probe

    def test_bitemporal_index_matches_both_axes(self, temporal_faculty):
        database, _ = temporal_faculty
        relation = database.temporal("faculty")
        index = BitemporalIndex(relation)
        for as_of in ("12/06/82", "12/10/82", "12/20/82", "06/01/84"):
            assert index.rollback(as_of) == relation.rollback(as_of), as_of
            for valid_at in ("12/06/82", "06/01/83"):
                assert index.timeslice(valid_at, as_of) == \
                    relation.timeslice(valid_at, as_of), (valid_at, as_of)

    def test_at_workload_scale(self):
        database = TemporalDatabase(clock=SimulatedClock("01/01/79"))
        apply_workload(database, FacultyWorkload(people=15, seed=3))
        relation = database.temporal("faculty")
        index = BitemporalIndex(relation)
        probes = [Instant.from_chronon(BASE + offset)
                  for offset in range(0, 1500, 97)]
        for probe in probes:
            assert index.rollback(probe) == relation.rollback(probe)


class TestDatabaseIndexCache:
    def test_serves_current_answers(self, temporal_faculty):
        database, _ = temporal_faculty
        cache = DatabaseIndexCache(database)
        assert cache.bitemporal("faculty").rollback("12/10/82") == \
            database.rollback("faculty", "12/10/82")

    def test_reuses_until_commit(self, temporal_faculty):
        database, _ = temporal_faculty
        cache = DatabaseIndexCache(database)
        first = cache.bitemporal("faculty")
        second = cache.bitemporal("faculty")
        assert first is second

    def test_invalidates_on_commit(self, temporal_faculty):
        database, clock = temporal_faculty
        cache = DatabaseIndexCache(database)
        stale = cache.bitemporal("faculty")
        clock.set("06/01/85")
        database.insert("faculty", {"name": "New", "rank": "assistant"},
                        valid_from="06/01/85")
        fresh = cache.bitemporal("faculty")
        assert fresh is not stale
        # And the fresh index sees the new fact.
        assert any(row.data["name"] == "New"
                   for row in fresh.rollback("06/01/85").rows)

    def test_rollback_and_historical_flavours(self, rollback_faculty,
                                              historical_faculty):
        rollback_db, _ = rollback_faculty
        cache = DatabaseIndexCache(rollback_db)
        assert cache.rollback("faculty").rollback("12/10/82") == \
            rollback_db.rollback("faculty", "12/10/82")
        historical_db, _ = historical_faculty
        cache2 = DatabaseIndexCache(historical_db)
        assert cache2.historical("faculty").timeslice("06/01/83") == \
            historical_db.timeslice("faculty", "06/01/83")
