"""Unit tests for the taxonomy model (Figures 1 and 10-13)."""

import pytest

from repro.core.taxonomy import (
    FIGURE_1, FIGURE_13, DatabaseKind, Models, TimeKind, classify,
    render_figure_1, render_figure_10, render_figure_11, render_figure_12,
    render_figure_13,
)


class TestTimeKinds:
    """Figure 12: attributes of the three kinds of time."""

    def test_transaction_time(self):
        time = TimeKind.TRANSACTION
        assert time.append_only
        assert time.application_independent
        assert time.models is Models.REPRESENTATION

    def test_valid_time(self):
        time = TimeKind.VALID
        assert not time.append_only
        assert time.application_independent
        assert time.models is Models.REALITY

    def test_user_defined_time(self):
        time = TimeKind.USER_DEFINED
        assert not time.append_only
        assert not time.application_independent
        assert time.models is Models.REALITY

    def test_only_transaction_time_is_append_only(self):
        append_only = [t for t in TimeKind if t.append_only]
        assert append_only == [TimeKind.TRANSACTION]


class TestClassify:
    """Figure 10: the 2x2 classification."""

    def test_all_four_cells(self):
        assert classify(False, False) is DatabaseKind.STATIC
        assert classify(True, False) is DatabaseKind.STATIC_ROLLBACK
        assert classify(False, True) is DatabaseKind.HISTORICAL
        assert classify(True, True) is DatabaseKind.TEMPORAL

    def test_classify_round_trips_capabilities(self):
        for kind in DatabaseKind:
            assert classify(kind.supports_rollback,
                            kind.supports_historical_queries) is kind


class TestDatabaseKinds:
    """Figure 11: which kinds of time each database kind incorporates."""

    def test_static_supports_nothing(self):
        assert DatabaseKind.STATIC.time_kinds == frozenset()

    def test_rollback_supports_transaction_only(self):
        assert DatabaseKind.STATIC_ROLLBACK.time_kinds == frozenset(
            {TimeKind.TRANSACTION})

    def test_historical_supports_valid_and_user_defined(self):
        assert DatabaseKind.HISTORICAL.time_kinds == frozenset(
            {TimeKind.VALID, TimeKind.USER_DEFINED})

    def test_temporal_supports_all_three(self):
        assert DatabaseKind.TEMPORAL.time_kinds == frozenset(TimeKind)

    def test_append_only_iff_rollback(self):
        for kind in DatabaseKind:
            assert kind.append_only == kind.supports_rollback


class TestFigure1:
    def test_thirteen_rows(self):
        assert len(FIGURE_1) == 13

    def test_unsupported_entries_marked(self):
        unsupported = [t for t in FIGURE_1 if not t.supported]
        assert {t.terminology for t in unsupported} == {"Event", "Logical"}

    def test_snodgrass_valid_time_row(self):
        row = next(t for t in FIGURE_1 if t.terminology == "Valid Time")
        assert row.append_only is False
        assert row.application_independent is True
        assert row.models is Models.REALITY

    def test_qualified_entries_carry_footnotes(self):
        physical = next(t for t in FIGURE_1 if t.terminology == "Physical")
        assert physical.append_only == "corrections only"


class TestFigure13:
    def test_seventeen_systems(self):
        assert len(FIGURE_13) == 17

    def test_tquel_supports_all_three(self):
        tquel = next(s for s in FIGURE_13 if s.system == "TQuel")
        assert tquel.time_kinds == frozenset(TimeKind)
        assert tquel.database_kind is DatabaseKind.TEMPORAL

    def test_trm_is_temporal(self):
        trm = next(s for s in FIGURE_13 if s.system == "TRM")
        assert trm.database_kind is DatabaseKind.TEMPORAL

    def test_gemstone_is_rollback(self):
        gemstone = next(s for s in FIGURE_13 if s.system == "GemStone")
        assert gemstone.database_kind is DatabaseKind.STATIC_ROLLBACK

    def test_clifford_warren_is_historical(self):
        ils = next(s for s in FIGURE_13 if s.system == "IL_s")
        assert ils.database_kind is DatabaseKind.HISTORICAL

    def test_user_defined_only_systems_are_static(self):
        # QBE, MicroINGRES, INGRES, ENFORM support only user-defined time,
        # which the DBMS does not interpret: they remain static databases.
        for name in ("QBE", "MicroINGRES", "INGRES", "ENFORM"):
            system = next(s for s in FIGURE_13 if s.system == name)
            assert system.database_kind is DatabaseKind.STATIC


class TestRenderers:
    def test_figure_10_layout(self):
        text = render_figure_10()
        assert "static rollback" in text
        assert "temporal" in text
        assert "Historical Queries" in text

    def test_figure_11_marks(self):
        text = render_figure_11()
        assert "Temporal" in text and "V" in text

    def test_figure_12_rows(self):
        text = render_figure_12()
        assert "Transaction" in text and "Representation" in text
        assert "User-Defined" in text

    def test_figure_1_renders_all_references(self):
        text = render_figure_1()
        assert "Ben-Zvi 1982" in text
        assert "(corrections only)" in text

    def test_figure_13_renders_all_systems(self):
        text = render_figure_13()
        for system in FIGURE_13:
            assert system.system in text
