"""Unit tests for historical databases (§4.3, Figures 5-6)."""

import pytest

from repro.core import DatabaseKind, HistoricalDatabase, HistoricalRelation
from repro.core.historical import HistoricalRow
from repro.errors import ConstraintViolation, RollbackNotSupportedError
from repro.relational import Domain, Relation, Schema, Tuple, attr
from repro.time import Instant, Period, SimulatedClock

from tests.conftest import faculty_schema


def fresh():
    clock = SimulatedClock("01/01/80")
    database = HistoricalDatabase(clock=clock)
    database.define("faculty", faculty_schema())
    return database, clock


class TestKind:
    def test_kind_and_capabilities(self, historical_faculty):
        database, _ = historical_faculty
        assert database.kind is DatabaseKind.HISTORICAL
        assert not database.supports_rollback
        assert database.supports_historical_queries

    def test_rollback_rejected(self, historical_faculty):
        database, _ = historical_faculty
        with pytest.raises(RollbackNotSupportedError, match="historical"):
            database.rollback("faculty", "12/10/82")


class TestFigure6:
    """The scenario's historical state is exactly Figure 6."""

    def test_rows(self, historical_faculty):
        database, _ = historical_faculty
        rows = {(row.data["name"], row.data["rank"],
                 row.valid.start.paper_format(), row.valid.end.paper_format())
                for row in database.history("faculty").rows}
        assert rows == {
            ("Merrie", "associate", "09/01/77", "12/01/82"),
            ("Merrie", "full", "12/01/82", "∞"),
            ("Tom", "associate", "12/05/82", "∞"),
            ("Mike", "assistant", "01/01/83", "03/01/84"),
        }

    def test_corrections_leave_no_trace(self, historical_faculty):
        # Tom was recorded as full and corrected to associate; the
        # historical database keeps only the corrected belief.
        database, _ = historical_faculty
        history = database.history("faculty")
        tom_rows = [row for row in history.rows if row.data["name"] == "Tom"]
        assert {row.data["rank"] for row in tom_rows} == {"associate"}


class TestTimeslice:
    def test_timeslice_is_static_relation(self, historical_faculty):
        database, _ = historical_faculty
        result = database.timeslice("faculty", "06/01/83")
        assert isinstance(result, Relation)

    def test_historical_answers(self, historical_faculty):
        database, _ = historical_faculty
        # "What was Merrie's rank 2 years ago?" (historical query)
        early = database.timeslice("faculty", "06/01/80")
        assert early.select(attr("name") == "Merrie").column("rank") == [
            "associate"]
        late = database.timeslice("faculty", "06/01/83")
        assert late.select(attr("name") == "Merrie").column("rank") == ["full"]

    def test_timeslice_respects_validity_bounds(self, historical_faculty):
        database, _ = historical_faculty
        # Mike's validity ends 03/01/84 (exclusive).
        assert any(row["name"] == "Mike"
                   for row in database.timeslice("faculty", "02/29/84"))
        assert not any(row["name"] == "Mike"
                       for row in database.timeslice("faculty", "03/01/84"))

    def test_snapshot_is_timeslice_now(self, historical_faculty):
        database, clock = historical_faculty
        assert database.snapshot("faculty") == database.timeslice(
            "faculty", clock.current())


class TestUpdateSemantics:
    def test_insert_requires_valid_from(self):
        database, _ = fresh()
        with pytest.raises(ConstraintViolation, match="valid_from"):
            database.insert("faculty", {"name": "A", "rank": "full"})

    def test_replace_splits_validity(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "assistant"},
                        valid_from="01/01/80")
        database.replace("faculty", {"name": "A"}, {"rank": "associate"},
                         valid_from="01/01/82")
        rows = sorted((row.data["rank"], str(row.valid))
                      for row in database.history("faculty").rows)
        assert rows == [
            ("assistant", "[1980-01-01, 1982-01-01)"),
            ("associate", "[1982-01-01, ∞)"),
        ]

    def test_replace_within_window(self):
        # Replacement over a bounded window leaves before and after intact.
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "assistant"},
                        valid_from="01/01/80")
        database.replace("faculty", {"name": "A"}, {"rank": "full"},
                         valid_from="01/01/81", valid_to="01/01/82")
        slices = {when: database.timeslice("faculty", when).column("rank")
                  for when in ("06/01/80", "06/01/81", "06/01/82")}
        assert slices == {"06/01/80": ["assistant"],
                          "06/01/81": ["full"],
                          "06/01/82": ["assistant"]}

    def test_delete_future_validity(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="01/01/80")
        database.delete("faculty", {"name": "A"}, valid_from="01/01/83")
        history = database.history("faculty")
        assert [str(row.valid) for row in history.rows] == [
            "[1980-01-01, 1983-01-01)"]

    def test_delete_interior_window_splits(self):
        # Deleting a sabbatical year splits one row into two.
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="01/01/80")
        database.delete("faculty", {"name": "A"},
                        valid_from="01/01/81", valid_to="01/01/82")
        periods = sorted(str(row.valid)
                         for row in database.history("faculty").rows)
        assert periods == ["[1980-01-01, 1981-01-01)", "[1982-01-01, ∞)"]

    def test_delete_everything_forgets_the_fact(self):
        # Arbitrary modification: a wholly erroneous tuple can be removed
        # without trace (impossible in a rollback database).
        database, _ = fresh()
        database.insert("faculty", {"name": "Err", "rank": "full"},
                        valid_from="01/01/80")
        database.delete("faculty", {"name": "Err"})
        assert database.history("faculty").is_empty

    def test_retroactive_change(self):
        # "Merrie was promoted ... starting last month" — recorded late.
        database, clock = fresh()
        database.insert("faculty", {"name": "M", "rank": "associate"},
                        valid_from="01/01/80")
        clock.set("06/15/80")
        database.replace("faculty", {"name": "M"}, {"rank": "full"},
                         valid_from="05/15/80")
        assert database.timeslice("faculty", "05/20/80").column("rank") == [
            "full"]

    def test_postactive_change(self):
        # "James is joining the faculty next month."
        database, clock = fresh()
        database.insert("faculty", {"name": "James", "rank": "assistant"},
                        valid_from="02/01/80")
        assert database.timeslice("faculty", "01/15/80").is_empty
        assert not database.timeslice("faculty", "02/15/80").is_empty

    def test_sequenced_key_violation(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="01/01/80")
        with pytest.raises(ConstraintViolation, match="sequenced key"):
            database.insert("faculty", {"name": "A", "rank": "assistant"},
                            valid_from="06/01/80")

    def test_sequenced_key_allows_disjoint_periods(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="01/01/80", valid_to="01/01/81")
        database.insert("faculty", {"name": "A", "rank": "assistant"},
                        valid_from="01/01/82")
        assert len(database.history("faculty")) == 2

    def test_reasserting_same_fact_is_not_a_violation(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="01/01/80")
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="06/01/80")
        # Coalesces to a single fact.
        assert len(database.history("faculty").coalesce()) == 1


class TestEventRelations:
    def test_event_insert_takes_valid_at(self):
        database, _ = fresh()
        database.define("promotion", Schema.of(name=Domain.STRING),
                        event=True)
        database.insert("promotion", {"name": "Merrie"},
                        valid_at="12/11/82")
        rows = database.history("promotion").rows
        assert len(rows) == 1 and rows[0].valid.is_instantaneous

    def test_event_insert_rejects_interval(self):
        database, _ = fresh()
        database.define("promotion", Schema.of(name=Domain.STRING),
                        event=True)
        with pytest.raises(ConstraintViolation, match="event relation"):
            database.insert("promotion", {"name": "Merrie"},
                            valid_from="12/11/82")

    def test_is_event_relation(self):
        database, _ = fresh()
        database.define("promotion", Schema.of(name=Domain.STRING), event=True)
        assert database.is_event_relation("promotion")
        assert not database.is_event_relation("faculty")

    def test_valid_at_and_interval_are_exclusive(self):
        database, _ = fresh()
        with pytest.raises(ConstraintViolation, match="not both"):
            database.insert("faculty", {"name": "A", "rank": "full"},
                            valid_from="01/01/80", valid_at="01/01/80")


class TestHistoricalRelationValue:
    def rows(self):
        schema = faculty_schema()
        return HistoricalRelation(schema, [
            HistoricalRow(Tuple(schema, {"name": "A", "rank": "full"}),
                          Period("01/01/80", "01/01/82")),
            HistoricalRow(Tuple(schema, {"name": "A", "rank": "full"}),
                          Period("01/01/82", "01/01/84")),
            HistoricalRow(Tuple(schema, {"name": "B", "rank": "assistant"}),
                          Period("01/01/81", "forever")),
        ])

    def test_coalesce_merges_adjacent_equal_facts(self):
        coalesced = self.rows().coalesce()
        a_rows = [row for row in coalesced.rows if row.data["name"] == "A"]
        assert [str(row.valid) for row in a_rows] == [
            "[1980-01-01, 1984-01-01)"]

    def test_select_project_rename(self):
        relation = self.rows()
        selected = relation.select(attr("name") == "A")
        assert len(selected) == 2
        projected = relation.project(["rank"])
        assert projected.schema.names == ("rank",)
        renamed = relation.rename({"rank": "position"})
        assert renamed.schema.names == ("name", "position")

    def test_project_coalesces_by_default(self):
        projected = self.rows().project(["name"])
        a_rows = [row for row in projected.rows if row.data["name"] == "A"]
        assert len(a_rows) == 1

    def test_during_clips(self):
        clipped = self.rows().during(Period("06/01/81", "06/01/82"))
        assert all(row.valid in Period("06/01/81", "06/01/82")
                   for row in clipped.rows)

    def test_validity_of(self):
        element = self.rows().validity_of(attr("name") == "A")
        assert [str(p) for p in element.periods] == ["[1980-01-01, 1984-01-01)"]

    def test_lifespan(self):
        assert [str(p) for p in self.rows().lifespan().periods] == [
            "[1980-01-01, ∞)"]

    def test_equality_is_snapshot_equivalence(self):
        relation = self.rows()
        assert relation == relation.coalesce()
        assert hash(relation) == hash(relation.coalesce())

    def test_union(self):
        relation = self.rows()
        assert relation.union(relation) == relation

    def test_intersect_same_fact_overlapping_validity(self):
        schema = faculty_schema()
        left = HistoricalRelation(schema, [
            HistoricalRow(Tuple(schema, {"name": "A", "rank": "full"}),
                          Period("01/01/80", "01/01/84"))])
        right = HistoricalRelation(schema, [
            HistoricalRow(Tuple(schema, {"name": "A", "rank": "full"}),
                          Period("01/01/82", "01/01/86"))])
        result = left.intersect(right)
        assert [str(row.valid) for row in result.rows] == [
            "[1982-01-01, 1984-01-01)"]

    def test_intersect_different_facts_empty(self):
        relation = self.rows()
        other = relation.rename({"rank": "rank"})  # same schema, same rows
        different = HistoricalRelation(relation.schema, [
            HistoricalRow(Tuple(relation.schema,
                                {"name": "Z", "rank": "full"}),
                          Period("01/01/80", "forever"))])
        assert relation.intersect(different).is_empty

    def test_difference_splits_validity(self):
        schema = faculty_schema()
        left = HistoricalRelation(schema, [
            HistoricalRow(Tuple(schema, {"name": "A", "rank": "full"}),
                          Period("01/01/80", "01/01/86"))])
        right = HistoricalRelation(schema, [
            HistoricalRow(Tuple(schema, {"name": "A", "rank": "full"}),
                          Period("01/01/82", "01/01/84"))])
        result = left.difference(right)
        assert sorted(str(row.valid) for row in result.rows) == [
            "[1980-01-01, 1982-01-01)", "[1984-01-01, 1986-01-01)"]

    def test_difference_ignores_other_facts(self):
        relation = self.rows()
        unrelated = HistoricalRelation(relation.schema, [
            HistoricalRow(Tuple(relation.schema,
                                {"name": "Z", "rank": "full"}),
                          Period("01/01/80", "forever"))])
        assert relation.difference(unrelated) == relation
