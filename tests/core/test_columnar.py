"""Kernel unit tests: every columnar mask vs. the naive row-at-a-time scan.

Each mask kernel of :class:`~repro.core.columnar.ColumnarChunk` owes
strict result equivalence to the per-row ``Period``/``Instant``
predicate it replaces; these tests drive both over the same stores and
demand identical selections.  The whole module runs twice — once with
NumPy (when installed) and once with the pure-Python fallback kernels —
because CI has no numpy and both shapes must agree cell for cell.
"""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase,
                        TemporalDatabase, columnar)
from repro.core.columnar import ColumnarCache, ColumnarChunk
from repro.errors import ExpressionError, GranularityError
from repro.time import Granularity, Instant, Period

from tests.conftest import build_faculty


@pytest.fixture(params=["numpy", "python"])
def kernels(request, monkeypatch):
    """Run the test under each kernel shape (ndarray / float loop)."""
    if request.param == "python":
        monkeypatch.setattr(columnar, "_np", None)
    elif columnar._np is None:
        pytest.skip("numpy not installed in this environment")
    return request.param


def temporal_chunk():
    database, _ = build_faculty(TemporalDatabase)
    relation = database.temporal("faculty")
    return relation, ColumnarChunk.from_temporal(relation)


def rollback_chunk():
    database, _ = build_faculty(RollbackDatabase)
    store = database.store("faculty")
    return store, ColumnarChunk.from_rollback(store)


class TestMaskKernels:
    def test_rows_are_store_order(self, kernels):
        relation, chunk = temporal_chunk()
        assert chunk.rows == tuple(relation.rows)
        assert len(chunk) == len(relation.rows)

    def test_all_mask_selects_everything(self, kernels):
        relation, chunk = temporal_chunk()
        assert chunk.take(chunk.all_mask()) == list(relation.rows)

    @pytest.mark.parametrize("instant", ["01/01/77", "08/25/77", "12/07/82",
                                         "12/10/82", "02/25/84", "01/01/99"])
    def test_tt_stab_equals_per_row_contains(self, kernels, instant):
        relation, chunk = temporal_chunk()
        when = Instant.parse(instant)
        expected = [row for row in relation.rows if row.tt.contains(when)]
        assert chunk.take(chunk.tt_stab_mask(when)) == expected

    @pytest.mark.parametrize("lo,hi", [("01/01/77", "12/31/82"),
                                       ("12/02/82", "12/20/82"),
                                       ("01/01/90", "01/01/99")])
    def test_tt_overlap_equals_per_row_overlaps(self, kernels, lo, hi):
        relation, chunk = temporal_chunk()
        period = Period(Instant.parse(lo), Instant.parse(hi))
        expected = [row for row in relation.rows if row.tt.overlaps(period)]
        assert chunk.take(chunk.tt_overlap_mask(period)) == expected

    @pytest.mark.parametrize("instant", ["09/01/77", "12/05/82", "01/01/83",
                                         "06/01/84"])
    def test_valid_stab_equals_per_row_contains(self, kernels, instant):
        relation, chunk = temporal_chunk()
        when = Instant.parse(instant)
        expected = [row for row in relation.rows
                    if row.valid.contains(when)]
        assert chunk.take(chunk.valid_stab_mask(when)) == expected

    def test_rollback_chunk_has_no_valid_axis(self, kernels):
        store, chunk = rollback_chunk()
        assert chunk.valid is None
        when = Instant.parse("12/10/82")
        expected = [row for row in store.rows if row.tt.contains(when)]
        assert chunk.take(chunk.tt_stab_mask(when)) == expected

    def test_historical_chunk_has_no_tt_axis(self, kernels):
        database, _ = build_faculty(HistoricalDatabase)
        relation = database.history("faculty")
        chunk = ColumnarChunk.from_historical(relation)
        assert chunk.tt is None
        when = Instant.parse("12/05/82")
        expected = [row for row in relation.rows
                    if row.valid.contains(when)]
        assert chunk.take(chunk.valid_stab_mask(when)) == expected


#: Per-row reference formulas for the nine `when` operators, variable
#: period P on the left against constant C — the same derivations
#: eval_temporal_predicate uses (meets/starts/finishes are endpoint
#: equalities over the half-open representation).
def _when_reference(op, p, c):
    if op == "overlap":
        return p.overlaps(c)
    if op == "precede":
        return p.precedes(c)
    if op == "equal":
        return p == c
    if op == "meets":
        return p.meets(c)
    if op == "before":
        return p.precedes(c) and not p.meets(c)
    if op == "after":
        return c.precedes(p) and not c.meets(p)
    if op == "during":
        return c.contains_period(p)
    if op == "starts":
        return p.start == c.start and c.contains_period(p)
    if op == "finishes":
        return p.end == c.end and c.contains_period(p)
    raise AssertionError(op)


class TestWhenKernels:
    CONSTANTS = [
        Period(Instant.parse("09/01/77"), Instant.parse("12/05/82")),
        Period(Instant.parse("12/05/82"), Instant.parse("01/01/83")),
        Period.at(Instant.parse("12/05/82")),
        Period(Instant.parse("01/01/83"), Instant.parse("03/01/84")),
    ]

    @pytest.mark.parametrize("op", sorted(columnar._WHEN_LEFT))
    @pytest.mark.parametrize("constant", CONSTANTS,
                             ids=[str(c) for c in CONSTANTS])
    def test_var_on_left_matches_period_predicates(self, kernels, op,
                                                   constant):
        relation, chunk = temporal_chunk()
        expected = [row for row in relation.rows
                    if _when_reference(op, row.valid, constant)]
        mask = chunk.when_mask(op, constant, var_on_left=True)
        assert chunk.take(mask) == expected

    @pytest.mark.parametrize("op", sorted(columnar._WHEN_RIGHT))
    @pytest.mark.parametrize("constant", CONSTANTS,
                             ids=[str(c) for c in CONSTANTS])
    def test_var_on_right_matches_period_predicates(self, kernels, op,
                                                    constant):
        relation, chunk = temporal_chunk()
        expected = [row for row in relation.rows
                    if _when_reference(op, constant, row.valid)]
        mask = chunk.when_mask(op, constant, var_on_left=False)
        assert chunk.take(mask) == expected

    def test_unbounded_valid_periods_handled(self, kernels):
        # Open valid ends pack as +inf; `overlap always` must select all.
        relation, chunk = temporal_chunk()
        mask = chunk.when_mask("overlap", Period.always(), var_on_left=True)
        assert chunk.take(mask) == list(relation.rows)


class TestValueColumns:
    def test_column_is_memoized(self, kernels):
        _, chunk = temporal_chunk()
        assert chunk.column("name") is chunk.column("name")

    def test_compare_mask_matches_comparator(self, kernels):
        relation, chunk = temporal_chunk()
        mask = chunk.compare_mask("name", "=", "Tom", attr_on_left=True)
        expected = [row for row in relation.rows
                    if row.data["name"] == "Tom"]
        assert chunk.take(mask) == expected

    def test_compare_mask_none_value_is_false_everywhere(self, kernels):
        _, chunk = temporal_chunk()
        assert chunk.count(
            chunk.compare_mask("name", "=", None, attr_on_left=True)) == 0

    def test_compare_select_restricts_given_indices(self, kernels):
        relation, chunk = temporal_chunk()
        keep = chunk.compare_select(range(len(chunk)), "name", "=", "Tom",
                                    attr_on_left=True)
        assert [chunk.rows[i].data["name"] for i in keep] == \
            ["Tom"] * len(keep)
        assert keep == sorted(keep)
        # Restricting the input indices restricts the output.
        assert chunk.compare_select([], "name", "=", "Tom", True) == []

    def test_compare_select_untypable_raises_expression_error(self, kernels):
        _, chunk = temporal_chunk()
        with pytest.raises(ExpressionError) as err:
            chunk.compare_select(range(len(chunk)), "name", "<", 7,
                                 attr_on_left=True)
        # The exact message Comparison.evaluate would have produced.
        assert "cannot compare" in str(err.value)
        assert "< 7" in str(err.value)

    def test_granularity_mismatch_raises(self, kernels):
        _, chunk = temporal_chunk()
        alien = Instant.parse("1982-12-10T00:00:00",
                              granularity=Granularity.SECOND) \
            if hasattr(Granularity, "SECOND") else None
        if alien is None:
            pytest.skip("no second granularity available")
        with pytest.raises(GranularityError):
            chunk.tt_stab_mask(alien)


class TestExtension:
    def test_extension_reuses_closed_prefix(self, kernels):
        database, clock = build_faculty(TemporalDatabase)
        relation = database.temporal("faculty")
        chunk = ColumnarChunk.from_temporal(relation)
        clock.set("03/01/84")
        database.insert("faculty", {"name": "Jane", "rank": "assistant"},
                        valid_from="03/01/84")
        newer = database.temporal("faculty")
        extended = chunk.extended_temporal(newer)
        assert extended is not None
        assert extended.rows == tuple(newer.rows)
        # The extended chunk answers exactly like a fresh build.
        fresh = ColumnarChunk.from_temporal(newer)
        when = Instant.parse("12/10/82")
        assert extended.take(extended.tt_stab_mask(when)) == \
            fresh.take(fresh.tt_stab_mask(when))

    def test_extension_refused_across_lineages(self, kernels):
        database, _ = build_faculty(TemporalDatabase)
        chunk = ColumnarChunk.from_temporal(database.temporal("faculty"))
        other, _ = build_faculty(TemporalDatabase)
        assert chunk.extended_temporal(other.temporal("faculty")) is None


class TestColumnarCache:
    def test_hit_on_unchanged_version(self, kernels):
        database, _ = build_faculty(TemporalDatabase)
        cache = database.columnar_cache
        first = cache.chunk("faculty")
        assert cache.chunk("faculty") is first
        assert cache.hits == 1 and cache.misses == 1

    def test_commit_extends_instead_of_rebuilding(self, kernels):
        database, clock = build_faculty(TemporalDatabase)
        cache = database.columnar_cache
        cache.chunk("faculty")
        clock.set("03/01/84")
        database.insert("faculty", {"name": "Jane", "rank": "assistant"},
                        valid_from="03/01/84")
        fresh = cache.chunk("faculty")
        assert cache.extensions == 1
        assert fresh.rows == tuple(database.temporal("faculty").rows)

    def test_ready_tracks_current_version(self, kernels):
        database, clock = build_faculty(TemporalDatabase)
        cache = database.columnar_cache
        assert not cache.ready("faculty")
        cache.chunk("faculty")
        assert cache.ready("faculty")
        clock.set("03/01/84")
        database.insert("faculty", {"name": "Jane", "rank": "assistant"},
                        valid_from="03/01/84")
        assert not cache.ready("faculty")

    def test_unindexed_database_has_no_cache(self, kernels):
        database, _ = build_faculty(TemporalDatabase, index=False)
        assert database.columnar_cache is None
        assert database.result_cache is None

    def test_describe_is_deterministic(self, kernels):
        database, _ = build_faculty(TemporalDatabase)
        cache = database.columnar_cache
        cache.chunk("faculty")
        described = cache.describe()
        assert described["relations"] == ["faculty"]
        assert described["rows"]["faculty"] == len(
            database.temporal("faculty").rows)
