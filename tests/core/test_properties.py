"""Property-based tests: the deep invariants of the four database kinds.

These are the load-bearing claims of the reproduction:

1. **Rollback representation equivalence** — the interval-stamped store
   (Figure 4) and the state-sequence cube (Figure 3) answer every
   rollback identically, for arbitrary transaction sequences.
2. **Rollback vs. naive model** — rollback(t) equals what an independent,
   dead-simple model (snapshots recorded after every commit) says.
3. **Temporal = rollback of historical states** — a temporal database's
   rollback(t) equals the historical state an identically-driven
   historical database had at time t.
4. **Snapshot(now) agreement** — all four kinds agree on the current
   snapshot under workloads whose valid times never lead or trail their
   transaction times (where the kinds are defined to coincide).
5. **Coalescing preserves every timeslice.**
"""

from typing import Dict, List, Tuple as PyTuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (HistoricalDatabase, HistoricalRelation,
                        RollbackDatabase, StaticDatabase, TemporalDatabase)
from repro.core.historical import HistoricalRow
from repro.core.operations import changed_instants
from repro.relational import Domain, Relation, Schema, Tuple
from repro.time import Instant, Period, SimulatedClock

SCHEMA = Schema.of(name=Domain.STRING, grade=Domain.INTEGER)

BASE = Instant.parse("01/01/80").chronon

names = st.sampled_from(["a", "b", "c"])
grades = st.integers(min_value=0, max_value=2)


@st.composite
def operations(draw):
    """A random (commit-gap, op) sequence for the snapshot-update kinds."""
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        gap = draw(st.integers(min_value=1, max_value=5))
        kind = draw(st.sampled_from(["insert", "delete", "replace"]))
        name = draw(names)
        if kind == "insert":
            ops.append((gap, "insert", {"name": name, "grade": draw(grades)}))
        elif kind == "delete":
            ops.append((gap, "delete", {"name": name}))
        else:
            ops.append((gap, "replace", ({"name": name},
                                         {"grade": draw(grades)})))
    return ops


def drive_snapshot_ops(database, ops):
    """Apply random snapshot ops, tolerating key conflicts, returning commits."""
    clock = database.manager.clock.source
    commits = []
    for gap, kind, payload in ops:
        clock.advance(gap)
        try:
            if kind == "insert":
                when = database.insert("r", payload)
            elif kind == "delete":
                when = database.delete("r", payload)
            else:
                when = database.replace("r", payload[0], payload[1])
            commits.append(when)
        except Exception:
            continue  # key violations abort that transaction; fine
    return commits


class TestRollbackEquivalence:
    @given(operations())
    @settings(max_examples=60, deadline=None)
    def test_interval_equals_states_equals_model(self, ops):
        interval_db = RollbackDatabase(clock=SimulatedClock(BASE))
        states_db = RollbackDatabase(clock=SimulatedClock(BASE),
                                     representation="states")
        model_db = StaticDatabase(clock=SimulatedClock(BASE))
        for db in (interval_db, states_db, model_db):
            db.define("r", SCHEMA)
        drive_snapshot_ops(interval_db, ops)
        drive_snapshot_ops(states_db, ops)

        # The naive model: re-apply ops to a static DB, snapshotting after
        # every commit.
        model: List[PyTuple[Instant, Relation]] = []
        clock = model_db.manager.clock.source
        for gap, kind, payload in ops:
            clock.advance(gap)
            try:
                if kind == "insert":
                    when = model_db.insert("r", payload)
                elif kind == "delete":
                    when = model_db.delete("r", payload)
                else:
                    when = model_db.replace("r", payload[0], payload[1])
                model.append((when, model_db.snapshot("r")))
            except Exception:
                continue

        probes = [Instant.from_chronon(BASE + offset)
                  for offset in range(0, 80, 3)]
        for probe in probes:
            expected = Relation.empty(SCHEMA)
            for when, snapshot in model:
                if when <= probe:
                    expected = snapshot
            assert interval_db.rollback("r", probe) == expected
            assert states_db.rollback("r", probe) == expected

    @given(operations())
    @settings(max_examples=40, deadline=None)
    def test_append_only_under_growth(self, ops):
        # Whatever new transactions do, old rollbacks never change.
        database = RollbackDatabase(clock=SimulatedClock(BASE))
        database.define("r", SCHEMA)
        drive_snapshot_ops(database, ops)
        probe = Instant.from_chronon(BASE + 20)
        before = database.rollback("r", probe)
        database.manager.clock.source.set(Instant.from_chronon(BASE + 1000))
        database.insert("r", {"name": "z", "grade": 0})
        assert database.rollback("r", probe) == before


@st.composite
def valid_time_operations(draw):
    """Random valid-time ops for historical/temporal kinds."""
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        gap = draw(st.integers(min_value=1, max_value=5))
        kind = draw(st.sampled_from(["insert", "delete", "replace"]))
        name = draw(names)
        from_offset = draw(st.integers(min_value=-20, max_value=40))
        to_offset = draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=30)))
        ops.append((gap, kind, name, draw(grades), from_offset, to_offset))
    return ops


def drive_valid_ops(database, ops):
    clock = database.manager.clock.source
    for gap, kind, name, grade, from_offset, to_offset in ops:
        clock.advance(gap)
        now_chronon = clock.current().chronon
        valid_from = Instant.from_chronon(now_chronon + from_offset)
        kwargs = {"valid_from": valid_from}
        if to_offset is not None:
            kwargs["valid_to"] = valid_from + to_offset
        try:
            if kind == "insert":
                database.insert("r", {"name": name, "grade": grade}, **kwargs)
            elif kind == "delete":
                database.delete("r", {"name": name}, **kwargs)
            else:
                database.replace("r", {"name": name}, {"grade": grade},
                                 **kwargs)
        except Exception:
            continue


class TestTemporalIsSequenceOfHistoricalStates:
    @given(valid_time_operations())
    @settings(max_examples=50, deadline=None)
    def test_rollback_reproduces_historical_evolution(self, ops):
        # Drive identical ops into a temporal DB and a historical DB,
        # snapshotting the historical DB's full state after each commit;
        # then check temporal.rollback(t) against the snapshots.
        temporal_db = TemporalDatabase(clock=SimulatedClock(BASE))
        historical_db = HistoricalDatabase(clock=SimulatedClock(BASE))
        temporal_db.define("r", SCHEMA)
        historical_db.define("r", SCHEMA)

        snapshots: List[PyTuple[Instant, HistoricalRelation]] = []
        clock_t = temporal_db.manager.clock.source
        clock_h = historical_db.manager.clock.source
        for gap, kind, name, grade, from_offset, to_offset in ops:
            clock_t.advance(gap)
            clock_h.advance(gap)
            now_chronon = clock_t.current().chronon
            valid_from = Instant.from_chronon(now_chronon + from_offset)
            kwargs = {"valid_from": valid_from}
            if to_offset is not None:
                kwargs["valid_to"] = valid_from + to_offset
            outcome_t = outcome_h = None
            try:
                if kind == "insert":
                    outcome_t = temporal_db.insert(
                        "r", {"name": name, "grade": grade}, **kwargs)
                elif kind == "delete":
                    outcome_t = temporal_db.delete("r", {"name": name},
                                                   **kwargs)
                else:
                    outcome_t = temporal_db.replace(
                        "r", {"name": name}, {"grade": grade}, **kwargs)
            except Exception:
                pass
            try:
                if kind == "insert":
                    outcome_h = historical_db.insert(
                        "r", {"name": name, "grade": grade}, **kwargs)
                elif kind == "delete":
                    outcome_h = historical_db.delete("r", {"name": name},
                                                     **kwargs)
                else:
                    outcome_h = historical_db.replace(
                        "r", {"name": name}, {"grade": grade}, **kwargs)
            except Exception:
                pass
            # The two kinds accept/reject identically (same sequenced-key rule).
            assert (outcome_t is None) == (outcome_h is None)
            if outcome_t is not None:
                snapshots.append((outcome_t, historical_db.history("r")))

        # The temporal relation's rollback reproduces every recorded state.
        for when, expected in snapshots:
            assert temporal_db.rollback("r", when) == expected
        # And the final current state agrees.
        assert temporal_db.history("r") == historical_db.history("r")

    @given(valid_time_operations())
    @settings(max_examples=30, deadline=None)
    def test_historical_states_method_agrees_with_rollback(self, ops):
        database = TemporalDatabase(clock=SimulatedClock(BASE))
        database.define("r", SCHEMA)
        drive_valid_ops(database, ops)
        relation = database.temporal("r")
        for when, state in relation.historical_states():
            assert state == relation.rollback(when)


@st.composite
def small_histories(draw):
    rows = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        start = draw(st.integers(min_value=0, max_value=25))
        length = draw(st.integers(min_value=1, max_value=12))
        rows.append(HistoricalRow(
            Tuple(SCHEMA, {"name": draw(names), "grade": draw(grades)}),
            Period(Instant.from_chronon(BASE + start),
                   Instant.from_chronon(BASE + start + length))))
    return HistoricalRelation(SCHEMA, rows)


class TestTemporalSetAlgebra:
    """union/intersect/difference are snapshot homomorphisms."""

    PROBES = [Instant.from_chronon(BASE + offset) for offset in range(-1, 40)]

    @given(small_histories(), small_histories())
    @settings(max_examples=60, deadline=None)
    def test_union_homomorphic(self, a, b):
        combined = a.union(b)
        for probe in self.PROBES:
            assert combined.timeslice(probe) == \
                a.timeslice(probe).union(b.timeslice(probe))

    @given(small_histories(), small_histories())
    @settings(max_examples=60, deadline=None)
    def test_intersect_homomorphic(self, a, b):
        combined = a.intersect(b)
        for probe in self.PROBES:
            assert combined.timeslice(probe) == \
                a.timeslice(probe).intersect(b.timeslice(probe))

    @given(small_histories(), small_histories())
    @settings(max_examples=60, deadline=None)
    def test_difference_homomorphic(self, a, b):
        combined = a.difference(b)
        for probe in self.PROBES:
            assert combined.timeslice(probe) == \
                a.timeslice(probe).difference(b.timeslice(probe))

    @given(small_histories(), small_histories())
    @settings(max_examples=40, deadline=None)
    def test_intersect_via_double_difference(self, a, b):
        assert a.intersect(b) == a.difference(a.difference(b))

    @given(small_histories())
    @settings(max_examples=30, deadline=None)
    def test_self_difference_empty(self, a):
        assert a.difference(a).coalesce().is_empty

    @given(small_histories(), small_histories())
    @settings(max_examples=30, deadline=None)
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)


class TestMigrationProperties:
    @given(operations())
    @settings(max_examples=40, deadline=None)
    def test_rollback_to_temporal_diagonal(self, ops):
        # For arbitrary update sequences, the migrated temporal database's
        # state-as-of-t, sliced at t, equals the source's rollback(t).
        from repro.core import migrate
        source = RollbackDatabase(clock=SimulatedClock(BASE))
        source.define("r", SCHEMA)
        drive_snapshot_ops(source, ops)
        target = migrate(source, TemporalDatabase)
        probes = [Instant.from_chronon(BASE + offset)
                  for offset in range(0, 80, 7)]
        for probe in probes:
            assert target.rollback("r", probe).timeslice(probe) == \
                source.rollback("r", probe), probe

    @given(valid_time_operations())
    @settings(max_examples=30, deadline=None)
    def test_historical_to_temporal_preserves_history(self, ops):
        from repro.core import migrate
        source = HistoricalDatabase(clock=SimulatedClock(BASE))
        source.define("r", SCHEMA)
        drive_valid_ops(source, ops)
        target = migrate(source, TemporalDatabase)
        assert target.history("r") == source.history("r")

    @given(operations())
    @settings(max_examples=30, deadline=None)
    def test_downgrade_to_static_keeps_snapshot(self, ops):
        from repro.core import migrate
        source = RollbackDatabase(clock=SimulatedClock(BASE))
        source.define("r", SCHEMA)
        drive_snapshot_ops(source, ops)
        target = migrate(source, StaticDatabase, allow_loss=True)
        assert target.snapshot("r") == source.snapshot("r")


class TestCoalescingPreservesSnapshots:
    @st.composite
    def historical_relations(draw):
        rows = []
        for _ in range(draw(st.integers(min_value=0, max_value=8))):
            start = draw(st.integers(min_value=0, max_value=30))
            length = draw(st.integers(min_value=1, max_value=15))
            rows.append(HistoricalRow(
                Tuple(SCHEMA, {"name": draw(names), "grade": draw(grades)}),
                Period(Instant.from_chronon(BASE + start),
                       Instant.from_chronon(BASE + start + length))))
        return HistoricalRelation(SCHEMA, rows)

    @given(historical_relations())
    @settings(max_examples=80, deadline=None)
    def test_every_timeslice_preserved(self, relation):
        coalesced = relation.coalesce()
        probes = changed_instants(relation) + [Instant.from_chronon(BASE - 1)]
        for probe in probes:
            assert coalesced.timeslice(probe) == relation.timeslice(probe)

    @given(historical_relations())
    @settings(max_examples=50, deadline=None)
    def test_coalesce_idempotent(self, relation):
        once = relation.coalesce()
        assert frozenset(once.rows) == frozenset(once.coalesce().rows)

    @given(historical_relations())
    @settings(max_examples=50, deadline=None)
    def test_equality_agrees_with_probed_equivalence(self, relation):
        shuffled = HistoricalRelation(SCHEMA, reversed(relation.rows))
        assert relation == shuffled
