"""Unit tests for static rollback databases (§4.2, Figures 3-4)."""

import pytest

from repro.core import (DatabaseKind, INTERVAL, STATES, RollbackDatabase,
                        RollbackRelation, StateSequence)
from repro.errors import HistoricalNotSupportedError
from repro.relational import Relation
from repro.time import Instant, POS_INF, SimulatedClock

from tests.conftest import build_faculty, faculty_schema


class TestKind:
    def test_kind_and_capabilities(self, rollback_faculty):
        database, _ = rollback_faculty
        assert database.kind is DatabaseKind.STATIC_ROLLBACK
        assert database.supports_rollback
        assert not database.supports_historical_queries

    def test_timeslice_rejected(self, rollback_faculty):
        database, _ = rollback_faculty
        with pytest.raises(HistoricalNotSupportedError, match="rollback"):
            database.timeslice("faculty", "12/10/82")

    def test_bad_representation_rejected(self):
        with pytest.raises(ValueError):
            RollbackDatabase(clock=SimulatedClock("01/01/80"),
                             representation="cube")

    def test_representation_property(self, rollback_faculty,
                                      rollback_faculty_states):
        assert rollback_faculty[0].representation == INTERVAL
        assert rollback_faculty_states[0].representation == STATES


class TestRollbackQueries:
    """§4.2: rollback yields the static relation as of a past moment."""

    def test_result_is_pure_static_relation(self, rollback_faculty):
        database, _ = rollback_faculty
        result = database.rollback("faculty", "12/10/82")
        assert isinstance(result, Relation)

    def test_paper_query(self, rollback_faculty):
        # Merrie's rank as of 12/10/82 is associate (the promotion was
        # recorded 12/15/82).
        database, _ = rollback_faculty
        state = database.rollback("faculty", "12/10/82")
        merrie = state.select(lambda row: row["name"] == "Merrie")
        assert merrie.column("rank") == ["associate"]

    def test_rollback_before_any_transaction_is_null_relation(
            self, rollback_faculty):
        database, _ = rollback_faculty
        assert database.rollback("faculty", "01/01/70").is_empty

    def test_rollback_sees_then_current_errors(self, rollback_faculty):
        # As of 12/05/82 the database believed Tom was a full professor;
        # rollback faithfully reproduces the incorrect state.
        database, _ = rollback_faculty
        state = database.rollback("faculty", "12/05/82")
        tom = state.select(lambda row: row["name"] == "Tom")
        assert tom.column("rank") == ["full"]

    def test_rollback_at_exact_commit_time_includes_commit(
            self, rollback_faculty):
        database, _ = rollback_faculty
        state = database.rollback("faculty", "12/15/82")
        merrie = state.select(lambda row: row["name"] == "Merrie")
        assert merrie.column("rank") == ["full"]

    def test_snapshot_is_latest_state(self, rollback_faculty):
        database, _ = rollback_faculty
        snapshot = {tuple(sorted(row.items()))
                    for row in database.snapshot("faculty").to_dicts()}
        assert snapshot == {
            (("name", "Merrie"), ("rank", "full")),
            (("name", "Tom"), ("rank", "associate")),
        }

    def test_rollback_now_equals_snapshot(self, rollback_faculty):
        database, clock = rollback_faculty
        assert database.rollback("faculty", clock.current()) == \
            database.snapshot("faculty")


class TestBothRepresentationsAgree:
    PROBES = ["01/01/77", "08/25/77", "08/26/77", "12/01/82", "12/06/82",
              "12/07/82", "12/10/82", "12/15/82", "12/16/82", "01/10/83",
              "02/24/84", "02/25/84", "01/01/85"]

    def test_every_probe_agrees(self, rollback_faculty,
                                rollback_faculty_states):
        interval_db, _ = rollback_faculty
        states_db, _ = rollback_faculty_states
        for probe in self.PROBES:
            assert (interval_db.rollback("faculty", probe)
                    == states_db.rollback("faculty", probe)), probe


class TestIntervalStore:
    def test_figure_4_shape(self, rollback_faculty):
        database, _ = rollback_faculty
        store = database.store("faculty")
        assert isinstance(store, RollbackRelation)
        rows = {(row.data["name"], row.data["rank"],
                 row.tt.start.paper_format(), row.tt.end.paper_format())
                for row in store.rows}
        # The four rows of Figure 4 are all present.
        assert ("Merrie", "associate", "08/25/77", "12/15/82") in rows
        assert ("Merrie", "full", "12/15/82", "∞") in rows
        assert ("Tom", "associate", "12/07/82", "∞") in rows
        assert ("Mike", "assistant", "01/10/83", "02/25/84") in rows

    def test_current_rows_have_open_transaction_end(self, rollback_faculty):
        database, _ = rollback_faculty
        store = database.store("faculty")
        open_rows = [row for row in store.rows if row.tt.end.is_pos_inf]
        assert {row.data["name"] for row in open_rows} == {"Merrie", "Tom"}

    def test_insert_then_delete_in_one_transaction_leaves_no_row(self):
        clock = SimulatedClock("01/01/80")
        database = RollbackDatabase(clock=clock)
        database.define("faculty", faculty_schema())
        with database.begin() as txn:
            database.insert("faculty", {"name": "Ghost", "rank": "full"},
                            txn=txn)
            database.delete("faculty", {"name": "Ghost"}, txn=txn)
        store = database.store("faculty")
        assert not any(row.data["name"] == "Ghost" for row in store.rows)


class TestStatesStore:
    def test_one_state_per_transaction(self, rollback_faculty_states):
        database, _ = rollback_faculty_states
        store = database.store("faculty")
        assert isinstance(store, StateSequence)
        # Six DML transactions drove the scenario.
        assert len(store) == 6

    def test_states_are_cumulative_snapshots(self, rollback_faculty_states):
        database, _ = rollback_faculty_states
        states = database.store("faculty").states
        cardinalities = [len(state) for _, state in states]
        assert cardinalities == [1, 2, 2, 2, 3, 2]

    def test_multiple_ops_one_transaction_one_state(self):
        clock = SimulatedClock("01/01/80")
        database = RollbackDatabase(clock=clock, representation=STATES)
        database.define("faculty", faculty_schema())
        with database.begin() as txn:
            database.insert("faculty", {"name": "A", "rank": "full"}, txn=txn)
            database.insert("faculty", {"name": "B", "rank": "full"}, txn=txn)
        assert len(database.store("faculty")) == 1


class TestAppendOnly:
    """'Once a transaction has completed, the static relations ... may not
    be altered.'"""

    def test_past_states_unchanged_by_new_transactions(self, rollback_faculty):
        database, clock = rollback_faculty
        before = database.rollback("faculty", "12/10/82")
        clock.set("06/01/84")
        database.insert("faculty", {"name": "New", "rank": "assistant"})
        after = database.rollback("faculty", "12/10/82")
        assert before == after

    def test_delete_cannot_forget(self, rollback_faculty):
        # Mike was deleted from the current state, yet remains visible in
        # the past: "errors can sometimes be overridden ... but they cannot
        # be forgotten".
        database, _ = rollback_faculty
        assert not any(row["name"] == "Mike"
                       for row in database.snapshot("faculty"))
        past = database.rollback("faculty", "06/01/83")
        assert any(row["name"] == "Mike" for row in past)

    def test_rollback_results_are_immutable_values(self, rollback_faculty):
        database, _ = rollback_faculty
        state = database.rollback("faculty", "12/10/82")
        grown = state.insert_values(name="X", rank="full")
        # Deriving a new relation does not touch the store.
        assert database.rollback("faculty", "12/10/82") != grown


class TestStorageAccounting:
    def test_states_duplicate_storage_exceeds_interval(self):
        # The paper's claim: the cube representation is "impractical, due
        # to excessive duplication".
        interval_db, _ = build_faculty(RollbackDatabase)
        states_db, _ = build_faculty(RollbackDatabase, representation="states")
        interval_cells = interval_db.store("faculty").storage_cells()
        states_cells = states_db.store("faculty").storage_cells()
        assert states_cells > interval_cells
