"""The incremental commit path against the naive executable specification.

The partitioned stores (:class:`TemporalRelation`, :class:`RollbackRelation`)
advance commits in O(current state + Δ); :func:`naive_advance` and
:func:`naive_rollback_advance` keep the original whole-relation diffs.
These tests drive seeded random workloads through the databases and replay
their commit logs through the naive functions, asserting the two paths
produce identical rows, rollbacks and timeslices — including the
created-and-superseded-within-one-transaction edge and the abort path
(a failed commit must leave the installed values untouched even though
staging shares the closed segment structurally).
"""

import random

import pytest

from repro.core import (INTERVAL, STATES, NoFutureValidity, RollbackDatabase,
                        RollbackRelation, TemporalDatabase, TemporalRelation,
                        naive_advance, naive_rollback_advance)
from repro.errors import ConstraintViolation
from repro.relational import Domain, Schema
from repro.time import Instant, SimulatedClock
from repro.txn.transaction import Operation

BASE = Instant.parse("01/01/80")
KEYS = ["k%d" % i for i in range(6)]
VALUES = ["red", "green", "blue"]


def _schema():
    # No schema key: the sequenced-key constraint would reject most random
    # histories; constraint interaction is tested separately below.
    return Schema.of(k=Domain.STRING, v=Domain.STRING)


def _random_temporal_op(database, rng, now_offset):
    """Issue one random insert/delete/replace with a random valid period."""
    lo = rng.randrange(0, 600)
    hi = lo + rng.randrange(1, 400)
    kind = rng.random()
    if kind < 0.5:
        database.insert("r", {"k": rng.choice(KEYS), "v": rng.choice(VALUES)},
                        valid_from=BASE + lo, valid_to=BASE + hi)
    elif kind < 0.75:
        database.delete("r", {"k": rng.choice(KEYS)},
                        valid_from=BASE + lo, valid_to=BASE + hi)
    else:
        database.replace("r", {"k": rng.choice(KEYS)},
                         {"v": rng.choice(VALUES)},
                         valid_from=BASE + lo, valid_to=BASE + hi)


def _drive_temporal(seed, steps=40, index=True):
    clock = SimulatedClock(BASE)
    database = TemporalDatabase(clock=clock, index=index)
    database.define("r", _schema())
    rng = random.Random(seed)
    now = 1000
    for step in range(steps):
        now += rng.randrange(1, 4)
        clock.set(BASE + now)
        _random_temporal_op(database, rng, step)
    return database


def _replay_naive(database, name="r"):
    """Rebuild the relation from the commit log via the naive advance."""
    relation = TemporalRelation(database.schema(name))
    for record in database.log:
        for op in record.operations:
            if op.relation != name or op.action in ("define", "drop"):
                continue
            relation = naive_advance(relation, op, record.commit_time)
    return relation


class TestTemporalEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1985])
    def test_rows_match_naive_replay(self, seed):
        database = _drive_temporal(seed)
        naive = _replay_naive(database)
        incremental = database.temporal("r")
        assert frozenset(incremental.rows) == frozenset(naive.rows)
        assert incremental == naive

    @pytest.mark.parametrize("seed", [3, 11])
    def test_rollbacks_and_timeslices_match(self, seed):
        database = _drive_temporal(seed)
        naive = _replay_naive(database)
        commits = [record.commit_time for record in database.log]
        for as_of in commits:
            assert database.rollback("r", as_of) == naive.rollback(as_of)
            for valid_offset in (0, 150, 450, 900):
                assert (database.timeslice("r", BASE + valid_offset, as_of)
                        == naive.timeslice(BASE + valid_offset, as_of))

    @pytest.mark.parametrize("seed", [5, 23])
    def test_indexed_and_unindexed_paths_agree(self, seed):
        indexed = _drive_temporal(seed, index=True)
        plain = _drive_temporal(seed, index=False)
        commits = [record.commit_time for record in indexed.log]
        assert commits == [record.commit_time for record in plain.log]
        assert indexed.snapshot("r") == plain.snapshot("r")
        for as_of in commits[:: max(1, len(commits) // 7)]:
            assert indexed.rollback("r", as_of) == plain.rollback("r", as_of)
            assert (indexed.timeslice("r", BASE + 200, as_of)
                    == plain.timeslice("r", BASE + 200, as_of))
        ranged_a = indexed.rollback_range("r", commits[1], commits[-2])
        ranged_b = plain.rollback_range("r", commits[1], commits[-2])
        assert frozenset(ranged_a.rows) == frozenset(ranged_b.rows)

    def test_created_and_superseded_within_one_transaction(self):
        # A fact inserted and fully deleted inside the same transaction
        # never existed in any committed state: no row may record it
        # (src of the edge: the tt.start == commit_time drop in _advance).
        clock = SimulatedClock(BASE)
        database = TemporalDatabase(clock=clock)
        database.define("r", _schema())
        database.insert("r", {"k": "k0", "v": "red"}, valid_from=BASE)
        clock.set(BASE + 10)
        with database.begin() as txn:
            database.insert("r", {"k": "ghost", "v": "blue"},
                            valid_from=BASE, txn=txn)
            database.delete("r", {"k": "ghost"}, txn=txn)
            database.replace("r", {"k": "k0"}, {"v": "green"}, txn=txn)
        incremental = database.temporal("r")
        naive = _replay_naive(database)
        assert frozenset(incremental.rows) == frozenset(naive.rows)
        assert not any(row.data["k"] == "ghost" for row in incremental.rows)
        # The phantom also never shows up on either time axis.
        assert not any(row.data["k"] == "ghost"
                       for row in database.rollback("r", BASE + 10).rows)

    def test_aborted_commit_leaves_installed_value_intact(self):
        # Staging shares the closed segment with the installed value; an
        # abort after some operations applied must not leak closed rows
        # into it, and the next successful commit must still agree with
        # the naive replay (the copy-on-divergence path).
        clock = SimulatedClock(BASE)
        database = TemporalDatabase(clock=clock)
        database.define("r", Schema.of(k=Domain.STRING, v=Domain.STRING),
                        constraints=[NoFutureValidity()])
        database.insert("r", {"k": "k0", "v": "red"}, valid_from=BASE)
        before = database.temporal("r")
        before_rows = frozenset(before.rows)
        clock.set(BASE + 10)
        with pytest.raises(ConstraintViolation):
            with database.begin() as txn:
                # Closes k0's row in the staged value (mutating the shared
                # closed log past the installed prefix)...
                database.replace("r", {"k": "k0"}, {"v": "green"}, txn=txn)
                # ...then violates NoFutureValidity, aborting the batch.
                database.insert("r", {"k": "k1", "v": "blue"},
                                valid_from=BASE + 5000, txn=txn)
        assert database.temporal("r") is before
        assert frozenset(database.temporal("r").rows) == before_rows
        assert database.relation_version("r") == 2  # define + first insert
        # A later commit diverges onto a private copy and stays correct.
        clock.set(BASE + 20)
        database.replace("r", {"k": "k0"}, {"v": "green"}, txn=None)
        naive = _replay_naive(database)
        assert frozenset(database.temporal("r").rows) == frozenset(naive.rows)

    def test_ddl_rolls_back_on_constraint_failure(self):
        # define + failing DML in one batch: the schema bookkeeping must
        # be restored wholesale (the DDL is rolled back too).
        clock = SimulatedClock(BASE)
        database = TemporalDatabase(clock=clock)
        schema = _schema()
        operations = [
            Operation("define", "doomed",
                      {"schema": schema,
                       "constraints": (NoFutureValidity(),),
                       "event": False}),
            Operation("insert", "doomed",
                      {"values": {"k": "k0", "v": "red"},
                       "valid_from": BASE + 5000}),
        ]
        with pytest.raises(ConstraintViolation):
            database._manager.run(operations)
        assert "doomed" not in database
        assert database.relation_version("doomed") == 0
        # The name is free again and works normally afterwards.
        database.define("doomed", schema)
        database.insert("doomed", {"k": "k0", "v": "red"}, valid_from=BASE)
        assert len(database.snapshot("doomed")) == 1


def _drive_rollback(seed, representation, steps=35):
    clock = SimulatedClock(BASE)
    database = RollbackDatabase(clock=clock, representation=representation)
    database.define("r", _schema())
    rng = random.Random(seed)
    now = 1000
    for step in range(steps):
        now += rng.randrange(1, 4)
        clock.set(BASE + now)
        kind = rng.random()
        if kind < 0.55:
            database.insert("r", {"k": rng.choice(KEYS),
                                  "v": rng.choice(VALUES)})
        elif kind < 0.8:
            database.delete("r", {"k": rng.choice(KEYS)})
        else:
            database.replace("r", {"k": rng.choice(KEYS)},
                             {"v": rng.choice(VALUES)})
    return database


class TestRollbackEquivalence:
    @pytest.mark.parametrize("seed", [0, 9, 77])
    def test_interval_matches_state_cube(self, seed):
        interval = _drive_rollback(seed, INTERVAL)
        cube = _drive_rollback(seed, STATES)
        commits = [record.commit_time for record in interval.log]
        assert commits == [record.commit_time for record in cube.log]
        for as_of in commits:
            assert interval.rollback("r", as_of) == cube.rollback("r", as_of)
        assert interval.snapshot("r") == cube.snapshot("r")

    @pytest.mark.parametrize("seed", [2, 13])
    def test_interval_matches_naive_replay(self, seed):
        interval = _drive_rollback(seed, INTERVAL)
        cube = _drive_rollback(seed, STATES)
        # Replay the cube's state sequence through the naive advance;
        # the incremental store must observe every rollback identically.
        store = RollbackRelation(interval.schema("r"))
        for commit, state in cube.store("r").states:
            store = naive_rollback_advance(store, state, commit)
        for record in interval.log:
            as_of = record.commit_time
            assert (interval.store("r").rollback(as_of)
                    == store.rollback(as_of))
