"""Unit tests for temporal databases (§4.4, Figures 7-9)."""

import pytest

from repro.core import (DatabaseKind, HistoricalRelation, TemporalDatabase,
                        TemporalRelation)
from repro.errors import ConstraintViolation
from repro.relational import Attribute, Domain, Schema, attr
from repro.time import Instant, Period, SimulatedClock

from tests.conftest import faculty_schema


def fresh():
    clock = SimulatedClock("01/01/80")
    database = TemporalDatabase(clock=clock)
    database.define("faculty", faculty_schema())
    return database, clock


class TestKind:
    def test_kind_and_capabilities(self, temporal_faculty):
        database, _ = temporal_faculty
        assert database.kind is DatabaseKind.TEMPORAL
        assert database.supports_rollback
        assert database.supports_historical_queries


class TestFigure8:
    """The scenario's bitemporal table is exactly Figure 8 (seven rows)."""

    def expected(self):
        return {
            ("Merrie", "associate", "09/01/77", "∞", "08/25/77", "12/15/82"),
            ("Merrie", "associate", "09/01/77", "12/01/82", "12/15/82", "∞"),
            ("Merrie", "full", "12/01/82", "∞", "12/15/82", "∞"),
            ("Tom", "full", "12/05/82", "∞", "12/01/82", "12/07/82"),
            ("Tom", "associate", "12/05/82", "∞", "12/07/82", "∞"),
            ("Mike", "assistant", "01/01/83", "∞", "01/10/83", "02/25/84"),
            ("Mike", "assistant", "01/01/83", "03/01/84", "02/25/84", "∞"),
        }

    def test_rows(self, temporal_faculty):
        database, _ = temporal_faculty
        rows = {(row.data["name"], row.data["rank"],
                 row.valid.start.paper_format(), row.valid.end.paper_format(),
                 row.tt.start.paper_format(), row.tt.end.paper_format())
                for row in database.temporal("faculty").rows}
        assert rows == self.expected()

    def test_row_count_matches_paper(self, temporal_faculty):
        database, _ = temporal_faculty
        assert len(database.temporal("faculty")) == 7


class TestRollback:
    def test_rollback_yields_historical_relation(self, temporal_faculty):
        database, _ = temporal_faculty
        state = database.rollback("faculty", "12/10/82")
        assert isinstance(state, HistoricalRelation)

    def test_rollback_reproduces_past_beliefs(self, temporal_faculty):
        database, _ = temporal_faculty
        # As of 12/10/82 the database believed Merrie had been an associate
        # since 09/01/77, open-ended.
        state = database.rollback("faculty", "12/10/82")
        merrie = [row for row in state.rows if row.data["name"] == "Merrie"]
        assert len(merrie) == 1
        assert merrie[0].data["rank"] == "associate"
        assert merrie[0].valid == Period("09/01/77", "forever")

    def test_rollback_after_correction(self, temporal_faculty):
        database, _ = temporal_faculty
        state = database.rollback("faculty", "12/20/82")
        merrie_now = state.timeslice("12/20/82").select(
            attr("name") == "Merrie")
        assert merrie_now.column("rank") == ["full"]

    def test_current_equals_figure_6(self, temporal_faculty,
                                     historical_faculty):
        # A temporal database's current historical state is exactly what a
        # historical database holds after the same transactions.
        temporal_db, _ = temporal_faculty
        historical_db, _ = historical_faculty
        assert temporal_db.history("faculty") == \
            historical_db.history("faculty")

    def test_bitemporal_timeslice(self, temporal_faculty):
        database, _ = temporal_faculty
        # Valid at 12/06/82, believed as of 12/06/82: Tom was (incorrectly)
        # a full professor.
        state = database.timeslice("faculty", "12/06/82", as_of="12/06/82")
        tom = state.select(attr("name") == "Tom")
        assert tom.column("rank") == ["full"]
        # Same valid instant, believed today: associate.
        corrected = database.timeslice("faculty", "12/06/82")
        assert corrected.select(attr("name") == "Tom").column("rank") == [
            "associate"]

    def test_historical_states_sequence(self, temporal_faculty):
        # "A temporal relation may be thought of as a sequence of
        # historical states" (Figure 7).
        database, _ = temporal_faculty
        states = database.temporal("faculty").historical_states()
        assert len(states) == 6  # one per DML transaction
        times = [time for time, _ in states]
        assert times == sorted(times)
        # Each state is a full historical relation.
        assert all(isinstance(state, HistoricalRelation)
                   for _, state in states)

    def test_rollback_before_first_transaction_is_empty(self,
                                                        temporal_faculty):
        database, _ = temporal_faculty
        assert database.rollback("faculty", "01/01/70").is_empty


class TestAppendOnly:
    """Temporal relations are append-only (§4.4)."""

    def test_corrections_preserve_history(self, temporal_faculty):
        database, _ = temporal_faculty
        # Tom's erroneous 'full' row is still there, closed in transaction
        # time — compare the historical database, which forgot it.
        relation = database.temporal("faculty")
        erroneous = [row for row in relation.rows
                     if row.data["name"] == "Tom"
                     and row.data["rank"] == "full"]
        assert len(erroneous) == 1
        assert erroneous[0].tt == Period("12/01/82", "12/07/82")

    def test_new_transactions_never_change_old_rollbacks(
            self, temporal_faculty):
        database, clock = temporal_faculty
        before = database.rollback("faculty", "12/10/82")
        clock.set("06/01/85")
        database.insert("faculty", {"name": "New", "rank": "assistant"},
                        valid_from="06/01/85")
        assert database.rollback("faculty", "12/10/82") == before

    def test_row_closed_and_reopened_within_one_transaction_vanishes(self):
        database, clock = fresh()
        with database.begin() as txn:
            database.insert("faculty", {"name": "G", "rank": "full"},
                            valid_from="01/01/80", txn=txn)
            database.delete("faculty", {"name": "G"}, txn=txn)
        assert not any(row.data["name"] == "G"
                       for row in database.temporal("faculty").rows)


class TestUpdateSemantics:
    def test_insert_requires_valid_from(self):
        database, _ = fresh()
        with pytest.raises(ConstraintViolation, match="valid_from"):
            database.insert("faculty", {"name": "A", "rank": "full"})

    def test_sequenced_key_checked_on_current_state(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="01/01/80")
        with pytest.raises(ConstraintViolation, match="sequenced key"):
            database.insert("faculty", {"name": "A", "rank": "assistant"},
                            valid_from="06/01/80")

    def test_delete_is_logical(self):
        database, clock = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"},
                        valid_from="01/01/80")
        clock.set("06/01/80")
        database.delete("faculty", {"name": "A"})
        # Current belief: nothing; past belief intact.
        assert database.history("faculty").is_empty
        assert not database.rollback("faculty", "02/01/80").is_empty

    def test_replace_mirrors_historical_semantics(self):
        database, clock = fresh()
        database.insert("faculty", {"name": "A", "rank": "assistant"},
                        valid_from="01/01/80")
        clock.set("06/01/81")
        database.replace("faculty", {"name": "A"}, {"rank": "associate"},
                         valid_from="01/01/81")
        current = database.history("faculty")
        ranks = sorted((row.data["rank"], str(row.valid))
                       for row in current.rows)
        assert ranks == [("assistant", "[1980-01-01, 1981-01-01)"),
                         ("associate", "[1981-01-01, ∞)")]


class TestEventRelations:
    """Figure 9: a temporal event relation with user-defined time."""

    def test_figure_9_shape(self):
        clock = SimulatedClock("01/01/77")
        database = TemporalDatabase(clock=clock)
        schema = Schema(
            list(faculty_schema())
            + [Attribute("effective date",
                         Domain.user_defined_time("effective date"))])
        database.define("promotion", schema, event=True)
        clock.set("08/25/77")
        database.insert("promotion",
                        {"name": "Merrie", "rank": "associate",
                         "effective date": Instant.parse("09/01/77")},
                        valid_at="08/25/77")
        clock.set("12/15/82")
        database.insert("promotion",
                        {"name": "Merrie", "rank": "full",
                         "effective date": Instant.parse("12/01/82")},
                        valid_at="12/11/82")
        relation = database.temporal("promotion")
        assert len(relation) == 2
        assert all(row.valid.is_instantaneous for row in relation.rows)
        # User-defined time is ordinary data: stored, formatted, never
        # interpreted by any temporal operator.
        full = [row for row in relation.rows if row.data["rank"] == "full"][0]
        assert full.data["effective date"] == Instant.parse("12/01/82")

    def test_commit_times(self, temporal_faculty):
        database, _ = temporal_faculty
        times = database.temporal("faculty").commit_times()
        assert [time.paper_format() for time in times] == [
            "08/25/77", "12/01/82", "12/07/82", "12/15/82", "01/10/83",
            "02/25/84"]
