"""Unit tests for migration between database kinds."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase, migrate)
from repro.errors import TemporalSupportError
from repro.relational import Domain, Schema
from repro.time import Instant, SimulatedClock
from repro.workload import FacultyWorkload, apply_workload

from tests.conftest import build_faculty, faculty_schema


class TestUpgrades:
    def test_static_to_rollback(self, static_faculty):
        source, _ = static_faculty
        target = migrate(source, RollbackDatabase)
        assert target.kind.supports_rollback
        assert target.snapshot("faculty") == source.snapshot("faculty")
        # History starts at the migration: nothing before it.
        assert target.rollback("faculty", "01/01/80").is_empty

    def test_static_to_historical(self, static_faculty):
        source, _ = static_faculty
        target = migrate(source, HistoricalDatabase)
        migration_instant = target.history("faculty").rows[0].valid.start
        assert target.timeslice("faculty", migration_instant) == \
            source.snapshot("faculty")
        assert all(row.valid.end.is_pos_inf
                   for row in target.history("faculty").rows)

    def test_static_to_temporal(self, static_faculty):
        source, _ = static_faculty
        target = migrate(source, TemporalDatabase)
        assert target.snapshot("faculty") == source.snapshot("faculty")

    def test_historical_to_temporal_preserves_history(self,
                                                      historical_faculty):
        source, _ = historical_faculty
        target = migrate(source, TemporalDatabase)
        assert target.history("faculty") == source.history("faculty")
        # Valid-time answers carry over exactly.
        for probe in ("06/01/80", "12/06/82", "06/01/83"):
            assert target.timeslice("faculty", probe) == \
                source.timeslice("faculty", probe), probe

    def test_rollback_to_temporal_preserves_rollbacks(self,
                                                      rollback_faculty):
        source, _ = rollback_faculty
        target = migrate(source, TemporalDatabase)
        # Diagonal property: the source's rollback(t) equals the migrated
        # database's state-as-of-t sliced at t.
        for probe in ("08/25/77", "12/05/82", "12/10/82", "12/16/82",
                      "06/01/83", "03/01/84"):
            when = Instant.parse(probe)
            assert target.rollback("faculty", when).timeslice(when) == \
                source.rollback("faculty", when), probe

    def test_rollback_to_temporal_at_workload_scale(self):
        source = RollbackDatabase(clock=SimulatedClock("01/01/79"))
        apply_workload(source, FacultyWorkload(people=8, seed=31))
        target = migrate(source, TemporalDatabase)
        base = Instant.parse("01/01/80").chronon
        for offset in range(0, 1200, 113):
            when = Instant.from_chronon(base + offset)
            assert target.rollback("faculty", when).timeslice(when) == \
                source.rollback("faculty", when), when

    def test_states_representation_migrates_too(self,
                                                rollback_faculty_states):
        source, _ = rollback_faculty_states
        target = migrate(source, TemporalDatabase)
        when = Instant.parse("12/10/82")
        assert target.rollback("faculty", when).timeslice(when) == \
            source.rollback("faculty", when)

    def test_migrated_database_accepts_new_commits(self, static_faculty):
        source, _ = static_faculty
        target = migrate(source, TemporalDatabase)
        last = target.manager.clock.last
        when = target.insert("faculty", {"name": "New", "rank": "assistant"},
                             valid_from=target.now())
        assert when > last

    def test_event_flags_carry_over(self):
        clock = SimulatedClock("01/01/80")
        source = HistoricalDatabase(clock=clock)
        source.define("pings", Schema.of(x=Domain.STRING), event=True)
        source.insert("pings", {"x": "hello"}, valid_at="01/02/80")
        target = migrate(source, TemporalDatabase)
        assert target.is_event_relation("pings")
        assert target.history("pings").rows[0].valid.is_instantaneous


class TestDowngrades:
    def test_lossy_migration_requires_opt_in(self, temporal_faculty):
        source, _ = temporal_faculty
        with pytest.raises(TemporalSupportError, match="allow_loss"):
            migrate(source, StaticDatabase)
        with pytest.raises(TemporalSupportError):
            migrate(source, HistoricalDatabase)

    def test_temporal_to_historical_keeps_current_history(
            self, temporal_faculty):
        source, _ = temporal_faculty
        target = migrate(source, HistoricalDatabase, allow_loss=True)
        assert target.history("faculty") == source.history("faculty")
        # The transaction axis is gone, as warned.
        assert not target.supports_rollback

    def test_any_to_static_keeps_snapshot(self, temporal_faculty):
        source, _ = temporal_faculty
        target = migrate(source, StaticDatabase, allow_loss=True)
        assert target.snapshot("faculty") == source.snapshot("faculty")

    def test_rollback_to_static_loses_history(self, rollback_faculty):
        source, _ = rollback_faculty
        target = migrate(source, StaticDatabase, allow_loss=True)
        assert target.snapshot("faculty") == source.snapshot("faculty")
        assert not target.supports_rollback

    def test_non_lossy_never_needs_opt_in(self, static_faculty):
        source, _ = static_faculty
        migrate(source, RollbackDatabase)
        migrate(source, HistoricalDatabase)
        migrate(source, TemporalDatabase)
        migrate(source, StaticDatabase)  # static→static is trivially lossless
