"""Unit tests for time-varying aggregation (history_series) and
transaction-time range queries (rollback_range / visible_during)."""

import pytest

from repro.core import (HistoricalDatabase, HistoricalRelation,
                        RollbackDatabase, TemporalDatabase, history_series)
from repro.core.historical import HistoricalRow
from repro.relational import Domain, Schema, Tuple
from repro.relational.aggregate import agg_avg, agg_sum, count
from repro.time import Instant, Period, SimulatedClock

from tests.conftest import build_faculty


class TestHistorySeries:
    def test_faculty_headcount_trend(self, historical_faculty):
        # §4.1's motivating query, in closed form.
        database, _ = historical_faculty
        series = history_series(database.history("faculty"), [count()])
        steps = sorted(((str(row.valid), row.data["count"])
                        for row in series.rows))
        assert steps == [
            ("[1977-09-01, 1982-12-05)", 1),
            ("[1982-12-05, 1983-01-01)", 2),
            ("[1983-01-01, 1984-03-01)", 3),
            ("[1984-03-01, ∞)", 2),
        ]

    def test_agrees_with_timeslice_at_every_probe(self, historical_faculty):
        database, _ = historical_faculty
        history = database.history("faculty")
        series = history_series(history, [count()])
        for probe in ("08/31/77", "09/01/77", "12/05/82", "06/01/83",
                      "03/01/84", "01/01/99"):
            when = Instant.parse(probe)
            expected = history.timeslice(when).cardinality
            slice_rows = series.timeslice(when)
            if slice_rows.is_empty:
                assert expected == 0  # outside the series span
            else:
                assert slice_rows.column("count") == [expected], probe

    def test_grouped_series(self, historical_faculty):
        database, _ = historical_faculty
        series = history_series(database.history("faculty"), [count()],
                                by=["rank"])
        # During [12/05/82, 01/01/83): one full (Merrie), one associate (Tom).
        probe = series.timeslice("12/10/82")
        by_rank = {row["rank"]: row["count"] for row in probe}
        assert by_rank == {"full": 1, "associate": 1}

    def test_numeric_aggregates(self):
        clock = SimulatedClock("01/01/80")
        database = HistoricalDatabase(clock=clock)
        database.define("pay", Schema.of(key=["who"], who=Domain.STRING,
                                         salary=Domain.INTEGER))
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80")
        database.insert("pay", {"who": "b", "salary": 300},
                        valid_from="01/01/81")
        series = history_series(database.history("pay"),
                                [agg_sum("salary"), agg_avg("salary")])
        assert series.timeslice("06/01/80").to_dicts() == [
            {"sum_salary": 100, "avg_salary": 100.0}]
        assert series.timeslice("06/01/81").to_dicts() == [
            {"sum_salary": 400, "avg_salary": 200.0}]

    def test_gap_reports_zero_count(self):
        clock = SimulatedClock("01/01/80")
        database = HistoricalDatabase(clock=clock)
        database.define("r", Schema.of(x=Domain.STRING))
        database.insert("r", {"x": "a"}, valid_from="01/01/80",
                        valid_to="01/01/81")
        database.insert("r", {"x": "b"}, valid_from="01/01/82",
                        valid_to="01/01/83")
        series = history_series(database.history("r"), [count()])
        assert series.timeslice("06/01/81").column("count") == [0]

    def test_empty_relation(self):
        schema = Schema.of(x=Domain.STRING)
        series = history_series(HistoricalRelation(schema), [count()])
        assert series.is_empty

    def test_result_is_coalesced_and_stepwise(self, historical_faculty):
        database, _ = historical_faculty
        series = history_series(database.history("faculty"), [count()])
        rows = sorted(series.rows, key=lambda row: row.valid)
        for left, right in zip(rows, rows[1:]):
            # Maximal intervals: adjacent rows must differ in value.
            if left.valid.end == right.valid.start:
                assert left.data != right.data

    def test_result_composes_historically(self, historical_faculty):
        # The series is itself a historical relation: further selection and
        # timeslicing work on it.
        database, _ = historical_faculty
        from repro.relational import attr
        series = history_series(database.history("faculty"), [count()])
        busy = series.select(attr("count") >= 3)
        assert [str(row.valid) for row in busy.rows] == [
            "[1983-01-01, 1984-03-01)"]


class TestRollbackRange:
    def test_union_of_states(self, rollback_faculty):
        database, _ = rollback_faculty
        ranged = database.rollback_range("faculty", "12/02/82", "12/20/82")
        assert {(row["name"], row["rank"]) for row in ranged} == {
            ("Merrie", "associate"), ("Merrie", "full"),
            ("Tom", "full"), ("Tom", "associate"),
        }

    def test_single_instant_range_equals_rollback(self, rollback_faculty):
        database, _ = rollback_faculty
        assert database.rollback_range("faculty", "12/10/82", "12/10/82") \
            == database.rollback("faculty", "12/10/82")

    def test_representations_agree(self, rollback_faculty,
                                   rollback_faculty_states):
        interval_db, _ = rollback_faculty
        states_db, _ = rollback_faculty_states
        for bounds in (("12/02/82", "12/20/82"), ("01/01/77", "01/01/85"),
                       ("06/01/83", "06/01/83")):
            assert interval_db.rollback_range("faculty", *bounds) == \
                states_db.rollback_range("faculty", *bounds), bounds

    def test_range_before_history_is_empty(self, rollback_faculty):
        database, _ = rollback_faculty
        assert database.rollback_range("faculty", "01/01/70",
                                       "01/01/71").is_empty

    def test_temporal_range_keeps_both_axes(self, temporal_faculty):
        database, _ = temporal_faculty
        ranged = database.rollback_range("faculty", "12/02/82", "12/20/82")
        tom_rows = [(row.data["rank"], row.tt.start.paper_format())
                    for row in ranged.rows if row.data["name"] == "Tom"]
        assert sorted(tom_rows) == [("associate", "12/07/82"),
                                    ("full", "12/01/82")]

    def test_static_database_rejects_range(self, static_faculty):
        from repro.errors import RollbackNotSupportedError
        database, _ = static_faculty
        with pytest.raises(AttributeError):
            database.rollback_range  # static databases don't even have it
