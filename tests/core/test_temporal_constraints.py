"""Unit tests for temporal integrity constraints."""

import pytest

from repro.core import (BoundedValidity, ContiguousHistory,
                        HistoricalDatabase, NoFutureValidity, StaticDatabase,
                        TemporalDatabase, ValidityDuration)
from repro.errors import ConstraintViolation, HistoricalNotSupportedError
from repro.relational import Domain, Schema
from repro.time import Period, SimulatedClock


def payroll_schema():
    return Schema.of(key=["who"], who=Domain.STRING, salary=Domain.INTEGER)


def fresh(db_class=HistoricalDatabase, constraints=()):
    clock = SimulatedClock("01/01/80")
    database = db_class(clock=clock)
    database.define("pay", payroll_schema(), constraints=constraints)
    return database, clock


class TestContiguousHistory:
    def test_contiguous_changes_allowed(self):
        database, _ = fresh(constraints=[ContiguousHistory(["who"])])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80", valid_to="01/01/81")
        database.insert("pay", {"who": "a", "salary": 200},
                        valid_from="01/01/81")
        assert len(database.history("pay")) == 2

    def test_gap_rejected(self):
        database, _ = fresh(constraints=[ContiguousHistory(["who"])])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80", valid_to="01/01/81")
        with pytest.raises(ConstraintViolation, match="gaps"):
            database.insert("pay", {"who": "a", "salary": 200},
                            valid_from="06/01/81")

    def test_gap_created_by_delete_rejected(self):
        database, _ = fresh(constraints=[ContiguousHistory(["who"])])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80")
        with pytest.raises(ConstraintViolation, match="gaps"):
            database.delete("pay", {"who": "a"},
                            valid_from="01/01/81", valid_to="01/01/82")

    def test_whole_batch_aborts(self):
        database, _ = fresh(constraints=[ContiguousHistory(["who"])])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80", valid_to="01/01/81")
        before = database.history("pay")
        txn = database.begin()
        database.insert("pay", {"who": "b", "salary": 10},
                        valid_from="01/01/80", txn=txn)
        database.insert("pay", {"who": "a", "salary": 200},
                        valid_from="06/01/81", txn=txn)  # the gap
        with pytest.raises(ConstraintViolation):
            txn.commit()
        assert database.history("pay") == before

    def test_distinct_keys_independent(self):
        database, _ = fresh(constraints=[ContiguousHistory(["who"])])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80", valid_to="01/01/81")
        # b's history starting much later is fine: contiguity is per key.
        database.insert("pay", {"who": "b", "salary": 100},
                        valid_from="01/01/83")


class TestNoFutureValidity:
    def test_postactive_rejected_with_zero_horizon(self):
        database, clock = fresh(constraints=[NoFutureValidity(0)])
        with pytest.raises(ConstraintViolation, match="horizon"):
            database.insert("pay", {"who": "a", "salary": 100},
                            valid_from="02/01/80")

    def test_within_horizon_allowed(self):
        database, clock = fresh(constraints=[NoFutureValidity(45)])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="02/01/80")  # 31 days ahead

    def test_retroactive_always_allowed(self):
        database, clock = fresh(constraints=[NoFutureValidity(0)])
        clock.set("06/01/80")
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80")

    def test_open_end_is_fine(self):
        database, _ = fresh(constraints=[NoFutureValidity(0)])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80")  # to ∞


class TestBoundedValidity:
    WINDOW = Period("01/01/75", "01/01/90")

    def test_inside_window(self):
        database, _ = fresh(constraints=[BoundedValidity(self.WINDOW)])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80", valid_to="01/01/85")

    def test_escaping_window_rejected(self):
        database, _ = fresh(constraints=[BoundedValidity(self.WINDOW)])
        with pytest.raises(ConstraintViolation, match="escapes"):
            database.insert("pay", {"who": "a", "salary": 100},
                            valid_from="01/01/70")

    def test_open_ended_escapes_bounded_window(self):
        database, _ = fresh(constraints=[BoundedValidity(self.WINDOW)])
        with pytest.raises(ConstraintViolation):
            database.insert("pay", {"who": "a", "salary": 100},
                            valid_from="01/01/80")  # to ∞ > window end


class TestValidityDuration:
    def test_minimum_enforced(self):
        database, _ = fresh(constraints=[ValidityDuration(at_least=7)])
        with pytest.raises(ConstraintViolation, match="only"):
            database.insert("pay", {"who": "a", "salary": 100},
                            valid_from="01/01/80", valid_to="01/03/80")

    def test_maximum_enforced(self):
        database, _ = fresh(constraints=[ValidityDuration(at_most=30)])
        with pytest.raises(ConstraintViolation, match="maximum"):
            database.insert("pay", {"who": "a", "salary": 100},
                            valid_from="01/01/80", valid_to="06/01/80")

    def test_open_ended_passes(self):
        database, _ = fresh(constraints=[ValidityDuration(at_least=7,
                                                          at_most=10000)])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80")

    def test_coalesced_before_checking(self):
        # Two adjacent 5-day pieces of the same fact coalesce to 10 days,
        # satisfying a 7-day minimum.
        database, _ = fresh(constraints=[ValidityDuration(at_least=7)])
        with database.begin() as txn:
            database.insert("pay", {"who": "a", "salary": 100},
                            valid_from="01/01/80", valid_to="01/06/80",
                            txn=txn)
            database.insert("pay", {"who": "a", "salary": 100},
                            valid_from="01/06/80", valid_to="01/11/80",
                            txn=txn)

    def test_requires_some_bound(self):
        with pytest.raises(ValueError):
            ValidityDuration()


class TestKindRouting:
    def test_temporal_database_checks_current_state(self):
        clock = SimulatedClock("01/01/80")
        database = TemporalDatabase(clock=clock)
        database.define("pay", payroll_schema(),
                        constraints=[ContiguousHistory(["who"])])
        database.insert("pay", {"who": "a", "salary": 100},
                        valid_from="01/01/80", valid_to="01/01/81")
        with pytest.raises(ConstraintViolation):
            database.insert("pay", {"who": "a", "salary": 200},
                            valid_from="06/01/81")
        # The failed commit appended nothing to the temporal store.
        assert len(database.temporal("pay")) == 1

    def test_static_database_rejects_temporal_constraints(self):
        clock = SimulatedClock("01/01/80")
        database = StaticDatabase(clock=clock)
        with pytest.raises(HistoricalNotSupportedError):
            database.define("pay", payroll_schema(),
                            constraints=[ContiguousHistory(["who"])])

    def test_mixed_with_ordinary_constraints(self):
        from repro.relational import CheckConstraint, attr
        database, _ = fresh(constraints=[
            ContiguousHistory(["who"]),
            CheckConstraint(attr("salary") > 0, name="positive"),
        ])
        with pytest.raises(ConstraintViolation, match="positive"):
            database.insert("pay", {"who": "a", "salary": -5},
                            valid_from="01/01/80")
