"""Unit tests for cross-kind temporal operations."""

import pytest

from repro.core import (HistoricalRelation, changed_instants,
                        rollback_equivalent, snapshot_equivalent,
                        temporal_timeslice_matrix, when_join)
from repro.core.historical import HistoricalRow
from repro.relational import Domain, Schema, Tuple
from repro.time import Instant, Period

from tests.conftest import build_faculty, faculty_schema
from repro.core import RollbackDatabase, TemporalDatabase


def hrel(rows):
    schema = faculty_schema()
    return HistoricalRelation(schema, [
        HistoricalRow(Tuple(schema, {"name": name, "rank": rank}),
                      Period(start, end))
        for name, rank, start, end in rows
    ])


class TestWhenJoin:
    LEFT = hrel([("A", "full", "01/01/80", "01/01/84"),
                 ("B", "assistant", "01/01/82", "forever")])
    RIGHT = hrel([("C", "associate", "01/01/83", "01/01/85")])

    def test_overlap_join_intersects_validity(self):
        joined = when_join(self.LEFT, self.RIGHT,
                           when=lambda a, b: a.overlaps(b))
        assert len(joined) == 2
        periods = sorted(str(row.valid) for row in joined.rows)
        assert periods == ["[1983-01-01, 1984-01-01)",
                           "[1983-01-01, 1985-01-01)"]

    def test_precede_join(self):
        joined = when_join(self.LEFT, self.RIGHT,
                           when=lambda a, b: a.precedes(b),
                           validity="left")
        # Only A [80,84) does not precede C [83,85); B is open-ended.
        assert len(joined) == 0
        reversed_join = when_join(self.RIGHT, self.LEFT,
                                  when=lambda a, b: b.precedes(a),
                                  validity="left")
        assert len(reversed_join) == 0

    def test_where_filter(self):
        joined = when_join(self.LEFT, self.RIGHT,
                           when=lambda a, b: a.overlaps(b),
                           where=lambda l, r: l["rank"] == "full")
        assert len(joined) == 1

    def test_validity_rules(self):
        for rule, expected in (("left", "[1980-01-01, 1984-01-01)"),
                               ("right", "[1983-01-01, 1985-01-01)"),
                               ("extend", "[1980-01-01, 1985-01-01)")):
            joined = when_join(
                self.LEFT, self.RIGHT,
                when=lambda a, b: a.overlaps(b),
                where=lambda l, r: l["name"] == "A",
                validity=rule)
            assert [str(row.valid) for row in joined.rows] == [expected], rule

    def test_unknown_validity_rule(self):
        with pytest.raises(ValueError):
            when_join(self.LEFT, self.RIGHT, when=lambda a, b: True,
                      validity="bogus")

    def test_prefixed_schema(self):
        joined = when_join(self.LEFT, self.RIGHT,
                           when=lambda a, b: a.overlaps(b),
                           prefix_left="f1", prefix_right="f2")
        assert joined.schema.names == ("f1.name", "f1.rank",
                                       "f2.name", "f2.rank")


class TestEquivalences:
    def test_snapshot_equivalent_exact_vs_probed(self):
        relation = hrel([("A", "full", "01/01/80", "01/01/82"),
                         ("A", "full", "01/01/82", "01/01/84")])
        coalesced = relation.coalesce()
        assert snapshot_equivalent(relation, coalesced)
        probes = changed_instants(relation)
        assert snapshot_equivalent(relation, coalesced, probes=probes)

    def test_snapshot_inequivalence_detected(self):
        a = hrel([("A", "full", "01/01/80", "01/01/82")])
        b = hrel([("A", "full", "01/01/80", "01/01/83")])
        assert not snapshot_equivalent(a, b)
        assert not snapshot_equivalent(a, b, probes=changed_instants(b))

    def test_rollback_equivalent_on_paper_scenario(self):
        interval_db, _ = build_faculty(RollbackDatabase)
        states_db, _ = build_faculty(RollbackDatabase,
                                     representation="states")
        probes = [Instant.parse(p) for p in
                  ("01/01/77", "08/25/77", "12/06/82", "12/10/82",
                   "12/15/82", "06/01/83", "03/01/84", "01/01/85")]
        assert rollback_equivalent(interval_db.store("faculty"),
                                   states_db.store("faculty"), probes)

    def test_changed_instants_bracket_boundaries(self):
        relation = hrel([("A", "full", "01/01/80", "01/01/82")])
        probes = changed_instants(relation)
        start = Instant.parse("01/01/80")
        end = Instant.parse("01/01/82")
        assert start in probes and start - 1 in probes
        assert end in probes and end - 1 in probes


class TestDiffStates:
    def test_rollback_database_diff(self):
        from repro.core import diff_states
        database, _ = build_faculty(RollbackDatabase)
        appeared, disappeared = diff_states(database, "faculty",
                                            "12/06/82", "12/20/82")
        assert {(r["name"], r["rank"]) for r in appeared} == {
            ("Tom", "associate"), ("Merrie", "full")}
        assert {(r["name"], r["rank"]) for r in disappeared} == {
            ("Tom", "full"), ("Merrie", "associate")}

    def test_temporal_database_diff_shows_beliefs(self):
        from repro.core import diff_states
        database, _ = build_faculty(TemporalDatabase)
        appeared, disappeared = diff_states(database, "faculty",
                                            "12/10/82", "12/20/82")
        # The retroactive promotion: one belief abandoned, two adopted.
        assert {(r.data["rank"], str(r.valid)) for r in disappeared.rows} \
            == {("associate", "[1977-09-01, ∞)")}
        assert {(r.data["rank"], str(r.valid)) for r in appeared.rows} == {
            ("associate", "[1977-09-01, 1982-12-01)"),
            ("full", "[1982-12-01, ∞)")}

    def test_identical_instants_diff_empty(self):
        from repro.core import diff_states
        database, _ = build_faculty(RollbackDatabase)
        appeared, disappeared = diff_states(database, "faculty",
                                            "12/10/82", "12/10/82")
        assert appeared.is_empty and disappeared.is_empty

    def test_rejected_without_transaction_time(self):
        from repro.core import HistoricalDatabase, diff_states
        from repro.errors import RollbackNotSupportedError
        database, _ = build_faculty(HistoricalDatabase)
        with pytest.raises(RollbackNotSupportedError):
            diff_states(database, "faculty", "12/10/82", "12/20/82")


class TestTimesliceMatrix:
    def test_matrix_over_paper_scenario(self):
        database, _ = build_faculty(TemporalDatabase)
        relation = database.temporal("faculty")
        valid_probes = [Instant.parse("12/06/82")]
        txn_probes = [Instant.parse("12/06/82"), Instant.parse("12/20/82")]
        matrix = temporal_timeslice_matrix(relation, valid_probes, txn_probes)
        # Believed on 12/06: Tom full.  Believed on 12/20: Tom associate,
        # Merrie full (retroactive promotion recorded 12/15).
        early = matrix[(valid_probes[0], txn_probes[0])]
        late = matrix[(valid_probes[0], txn_probes[1])]
        ranks_early = {row["name"]: row["rank"] for row in early}
        ranks_late = {row["name"]: row["rank"] for row in late}
        assert ranks_early == {"Merrie": "associate", "Tom": "full"}
        assert ranks_late == {"Merrie": "full", "Tom": "associate"}
