"""Unit tests for vacuuming (the controlled forget-the-past extension)."""

import pytest

from repro.core import (RollbackDatabase, TemporalDatabase, vacuum_rollback,
                        vacuum_states, vacuum_temporal)
from repro.errors import AppendOnlyViolation
from repro.time import Instant

from tests.conftest import build_faculty

CUTOFF = "01/01/83"


class TestVacuumRollback:
    def test_recent_rollbacks_unchanged(self, rollback_faculty):
        database, _ = rollback_faculty
        store = database.store("faculty")
        vacuumed = vacuum_rollback(store, CUTOFF)
        for probe in ("01/01/83", "06/01/83", "03/01/84", "01/01/85"):
            assert vacuumed.rollback(probe) == store.rollback(probe), probe

    def test_old_rollbacks_see_null_relation(self, rollback_faculty):
        database, _ = rollback_faculty
        store = database.store("faculty")
        vacuumed = vacuum_rollback(store, CUTOFF)
        assert vacuumed.rollback("12/10/82").is_empty
        # At the cutoff itself, the answer is intact.
        assert vacuumed.rollback(CUTOFF) == store.rollback(CUTOFF)

    def test_storage_shrinks(self, rollback_faculty):
        database, _ = rollback_faculty
        store = database.store("faculty")
        vacuumed = vacuum_rollback(store, "01/01/84")
        assert vacuumed.storage_cells() < store.storage_cells()

    def test_future_cutoff_rejected(self, rollback_faculty):
        database, _ = rollback_faculty
        with pytest.raises(AppendOnlyViolation, match="never the present"):
            vacuum_rollback(database.store("faculty"), "01/01/99")

    def test_infinite_cutoff_rejected(self, rollback_faculty):
        database, _ = rollback_faculty
        with pytest.raises(AppendOnlyViolation, match="finite"):
            vacuum_rollback(database.store("faculty"), "forever")


class TestVacuumStates:
    def test_equivalent_after_cutoff(self, rollback_faculty_states):
        database, _ = rollback_faculty_states
        store = database.store("faculty")
        vacuumed = vacuum_states(store, CUTOFF)
        for probe in ("01/01/83", "01/10/83", "06/01/84"):
            assert vacuumed.rollback(probe) == store.rollback(probe), probe

    def test_state_count_shrinks(self, rollback_faculty_states):
        database, _ = rollback_faculty_states
        store = database.store("faculty")
        assert len(vacuum_states(store, CUTOFF)) < len(store)

    def test_old_rollback_sees_null_relation(self, rollback_faculty_states):
        database, _ = rollback_faculty_states
        store = database.store("faculty")
        vacuumed = vacuum_states(store, CUTOFF)
        assert vacuumed.rollback("12/10/82").is_empty
        assert vacuumed.rollback(CUTOFF) == store.rollback(CUTOFF)


class TestVacuumTemporal:
    def test_recent_rollbacks_unchanged(self, temporal_faculty):
        database, _ = temporal_faculty
        relation = database.temporal("faculty")
        vacuumed = vacuum_temporal(relation, CUTOFF)
        for probe in ("06/01/83", "03/01/84", "01/01/85"):
            assert vacuumed.rollback(probe) == relation.rollback(probe), probe

    def test_valid_time_untouched(self, temporal_faculty):
        database, _ = temporal_faculty
        relation = database.temporal("faculty")
        vacuumed = vacuum_temporal(relation, CUTOFF)
        # The current historical state (reality) is identical.
        assert vacuumed.current() == relation.current()

    def test_row_count_shrinks(self, temporal_faculty):
        database, _ = temporal_faculty
        relation = database.temporal("faculty")
        vacuumed = vacuum_temporal(relation, "01/01/84")
        assert len(vacuumed) < len(relation)

    def test_future_cutoff_rejected(self, temporal_faculty):
        database, _ = temporal_faculty
        with pytest.raises(AppendOnlyViolation):
            vacuum_temporal(database.temporal("faculty"), "01/01/99")
