"""Unit tests for static databases (§4.1)."""

import pytest

from repro.core import DatabaseKind, StaticDatabase
from repro.errors import (ConstraintViolation, DuplicateRelationError,
                          HistoricalNotSupportedError,
                          RollbackNotSupportedError, UnknownRelationError)
from repro.relational import Domain, Schema, attr
from repro.time import Instant, SimulatedClock

from tests.conftest import faculty_schema


def fresh():
    clock = SimulatedClock("01/01/80")
    database = StaticDatabase(clock=clock)
    database.define("faculty", faculty_schema())
    return database, clock


class TestKind:
    def test_kind_and_capabilities(self):
        database = StaticDatabase(clock=SimulatedClock("01/01/80"))
        assert database.kind is DatabaseKind.STATIC
        assert not database.supports_rollback
        assert not database.supports_historical_queries

    def test_rollback_rejected(self, static_faculty):
        database, _ = static_faculty
        with pytest.raises(RollbackNotSupportedError, match="static"):
            database.rollback("faculty", "12/10/82")

    def test_timeslice_rejected(self, static_faculty):
        database, _ = static_faculty
        with pytest.raises(HistoricalNotSupportedError, match="static"):
            database.timeslice("faculty", "12/10/82")


class TestDDL:
    def test_define_and_names(self):
        database, _ = fresh()
        assert database.relation_names() == ["faculty"]
        assert "faculty" in database
        assert database.schema("faculty").names == ("name", "rank")

    def test_define_duplicate(self):
        database, _ = fresh()
        with pytest.raises(DuplicateRelationError):
            database.define("faculty", faculty_schema())

    def test_drop(self):
        database, _ = fresh()
        database.drop("faculty")
        assert "faculty" not in database
        with pytest.raises(UnknownRelationError):
            database.snapshot("faculty")

    def test_ddl_is_journaled(self):
        database, _ = fresh()
        assert database.log.records[0].operations[0].action == "define"


class TestDML:
    def test_insert_and_snapshot(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "Merrie", "rank": "full"})
        assert database.snapshot("faculty").to_dicts() == [
            {"name": "Merrie", "rank": "full"}]

    def test_past_states_forgotten(self, static_faculty):
        # "past states of the database ... are discarded and forgotten
        # completely" — only the final snapshot exists.
        database, _ = static_faculty
        snapshot = database.snapshot("faculty")
        assert snapshot.to_dicts() == [
            {"name": "Merrie", "rank": "full"},
            {"name": "Tom", "rank": "associate"},
        ]

    def test_delete_by_match(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"})
        database.insert("faculty", {"name": "B", "rank": "full"})
        database.delete("faculty", {"name": "A"})
        assert database.snapshot("faculty").column("name") == ["B"]

    def test_delete_all(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"})
        database.delete("faculty")
        assert database.snapshot("faculty").is_empty

    def test_delete_where_predicate(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"})
        database.insert("faculty", {"name": "B", "rank": "assistant"})
        database.delete_where("faculty", attr("rank") == "assistant")
        assert database.snapshot("faculty").column("name") == ["A"]

    def test_replace(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "assistant"})
        database.replace("faculty", {"name": "A"}, {"rank": "associate"})
        assert database.snapshot("faculty").column("rank") == ["associate"]

    def test_insert_validates_domain(self):
        database, _ = fresh()
        with pytest.raises(Exception):
            database.insert("faculty", {"name": "A", "rank": "janitor"})

    def test_insert_unknown_relation(self):
        database, _ = fresh()
        with pytest.raises(UnknownRelationError):
            database.insert("nowhere", {"name": "A", "rank": "full"})


class TestTransactions:
    def test_multi_op_transaction_is_atomic(self):
        database, _ = fresh()
        with database.begin() as txn:
            database.insert("faculty", {"name": "A", "rank": "full"}, txn=txn)
            database.insert("faculty", {"name": "B", "rank": "full"}, txn=txn)
        assert database.snapshot("faculty").cardinality == 2
        # Both inserts share one commit record.
        assert len(database.log.records[-1].operations) == 2

    def test_abort_leaves_state_untouched(self):
        database, _ = fresh()
        txn = database.begin()
        database.insert("faculty", {"name": "A", "rank": "full"}, txn=txn)
        txn.abort()
        assert database.snapshot("faculty").is_empty

    def test_failed_constraint_aborts_whole_batch(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"})
        txn = database.begin()
        database.insert("faculty", {"name": "B", "rank": "full"}, txn=txn)
        database.insert("faculty", {"name": "A", "rank": "assistant"},
                        txn=txn)  # key violation
        with pytest.raises(ConstraintViolation):
            txn.commit()
        # Neither insert took effect.
        assert database.snapshot("faculty").column("name") == ["A"]

    def test_key_constraint_enforced(self):
        database, _ = fresh()
        database.insert("faculty", {"name": "A", "rank": "full"})
        with pytest.raises(ConstraintViolation, match="duplicate key"):
            database.insert("faculty", {"name": "A", "rank": "assistant"})

    def test_commit_times_recorded(self):
        database, clock = fresh()
        clock.set("06/01/80")
        when = database.insert("faculty", {"name": "A", "rank": "full"})
        assert when == Instant.parse("06/01/80")
        assert database.log.last().commit_time == when
