"""End-to-end at non-day granularities.

The paper's examples use calendar days, but nothing in the taxonomy is
day-specific: these tests run a full bitemporal scenario at SECOND
granularity (a monitoring/audit use case, echoing Snodgrass's monitoring
thesis the paper cites) and a trend scenario at MONTH granularity.
"""

import pytest

from repro.core import TemporalDatabase, HistoricalDatabase, history_series
from repro.errors import GranularityError
from repro.relational import Domain, Schema
from repro.relational.aggregate import count
from repro.time import Granularity, Instant, Period, SimulatedClock


def second(text):
    return Instant.parse(text, Granularity.SECOND)


class TestSecondGranularity:
    def build(self):
        clock = SimulatedClock(second("1984-03-01 09:00:00"),
                               Granularity.SECOND)
        database = TemporalDatabase(clock=clock)
        database.define("sensors", Schema.of(
            key=["sensor"], sensor=Domain.STRING, status=Domain.STRING))
        database.insert("sensors", {"sensor": "s1", "status": "up"},
                        valid_from=second("1984-03-01 09:00:00"))
        clock.set(second("1984-03-01 09:05:30"))
        # Retroactive: s1 actually failed 90 seconds before we noticed.
        database.replace("sensors", {"sensor": "s1"}, {"status": "down"},
                         valid_from=second("1984-03-01 09:04:00"))
        return database, clock

    def test_bitemporal_at_seconds(self):
        database, clock = self.build()
        # Reality: s1 was down at 09:04:30...
        now_slice = database.timeslice("sensors",
                                       second("1984-03-01 09:04:30"))
        assert now_slice.column("status") == ["down"]
        # ...but as of 09:05:00 the database still believed it was up.
        then = database.timeslice("sensors", second("1984-03-01 09:04:30"),
                                  as_of=second("1984-03-01 09:05:00"))
        assert then.column("status") == ["up"]

    def test_transaction_times_at_second_resolution(self):
        database, _ = self.build()
        commits = [record.commit_time for record in database.log]
        assert all(commit.granularity is Granularity.SECOND
                   for commit in commits)
        assert commits[-1] == second("1984-03-01 09:05:30")

    def test_detection_lag_is_queryable(self):
        # How long was the database wrong? The difference between the
        # correction's transaction time and the failure's valid time.
        database, _ = self.build()
        down_row = next(row for row in database.temporal("sensors").rows
                        if row.data["status"] == "down")
        lag_seconds = down_row.tt.start - down_row.valid.start
        assert lag_seconds == 90

    def test_cross_granularity_mixing_rejected(self):
        database, _ = self.build()
        with pytest.raises(GranularityError):
            database.timeslice("sensors", Instant.parse("03/01/84"))


class TestMonthGranularity:
    def test_headcount_trend_by_month(self):
        clock = SimulatedClock(Instant.from_chronon(1980 * 12,
                                                    Granularity.MONTH))
        database = HistoricalDatabase(clock=clock)
        database.define("staff", Schema.of(key=["who"], who=Domain.STRING))

        def month(year, month_number):
            return Instant.from_chronon(year * 12 + month_number - 1,
                                        Granularity.MONTH)

        database.insert("staff", {"who": "a"}, valid_from=month(1980, 3))
        database.insert("staff", {"who": "b"}, valid_from=month(1980, 6),
                        valid_to=month(1981, 2))
        series = history_series(database.history("staff"), [count()])
        assert series.timeslice(month(1980, 4)).column("count") == [1]
        assert series.timeslice(month(1980, 7)).column("count") == [2]
        assert series.timeslice(month(1981, 3)).column("count") == [1]

    def test_month_formatting(self):
        when = Instant.from_chronon(1982 * 12 + 11, Granularity.MONTH)
        assert when.isoformat() == "1982-12"
