"""The examples are part of the product: run each one and check its story.

Each test executes an example script in-process (fresh module namespace)
and asserts the key facts its narration prints — so a regression that
breaks a documented walkthrough fails the suite, not a user.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestQuickstart:
    def test_reproduces_all_four_kinds(self):
        output = run_example("quickstart.py")
        assert "STATIC database" in output
        assert "STATIC ROLLBACK database" in output
        assert "HISTORICAL database" in output
        assert "TEMPORAL database" in output

    def test_paper_answers_present(self):
        output = run_example("quickstart.py")
        # The as-of answer and both bitemporal answers.
        assert "associate" in output and "full" in output
        assert "08/25/77" in output  # Figure 8's transaction start
        # The taxonomy error demo at the end.
        assert "TQuelSemanticError" in output or "static" in output


class TestPayroll:
    def test_reconciliation_totals(self):
        output = run_example("payroll_retroactive.py")
        assert "back pay owed to alice: 800" in output
        assert "back pay owed to bob: 300" in output
        assert "back pay owed to carol: 500" in output

    def test_bitemporal_detail_rendered(self):
        output = run_example("payroll_retroactive.py")
        assert "transaction (start)" in output
        assert "4400" in output


class TestEngineeringVersions:
    def test_rollback_story(self):
        output = run_example("engineering_versions.py")
        assert "03/15/80" in output
        assert "stator is recalled" in output
        assert "stator is released" in output

    def test_storage_comparison_and_vacuum(self):
        output = run_example("engineering_versions.py")
        assert "stored cells" in output
        assert "rollback to 09/14/80 unchanged: True" in output
        assert "rollback to 03/15/80 now empty: True" in output


class TestUniversityRegistry:
    def test_when_join_answer(self):
        output = run_example("university_registry.py")
        assert "Merrie" in output  # chair during Ilsoo's studies
        assert "Ursula" in output

    def test_trend_and_events(self):
        output = run_example("university_registry.py")
        assert "valid (at)" in output  # the event-relation rendering
        assert "▇" in output           # the head-count trend bars


class TestAdoptionPath:
    def test_migration_checks_pass(self):
        output = run_example("adoption_path.py")
        assert "the old rollback answers survive the upgrade: True" in output
        assert "current history carried over: True" in output
        assert "cannot roll back: True" in output

    def test_lossy_migration_refused_by_default(self):
        output = run_example("adoption_path.py")
        assert "refused by default" in output
        assert "allow_loss=True" in output


class TestAuditTrail:
    def test_replay_checks_all_pass(self):
        output = run_example("audit_trail.py")
        assert output.count(": OK") >= 3
        assert "FAILED" not in output

    def test_audit_answers(self):
        output = run_example("audit_trail.py")
        assert "...as of 02/15/84: 500" in output
        assert "...as of 04/05/84: 550" in output
        assert "reload identical: True" in output
