"""Property-based tests for relational algebra laws."""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational import Domain, Relation, Schema, attr

SCHEMA = Schema.of(name=Domain.STRING, grade=Domain.INTEGER)

names = st.sampled_from(["A", "B", "C", "D"])
grades = st.integers(min_value=0, max_value=3)
rows = st.lists(st.tuples(names, grades), max_size=10)


def relation(pairs) -> Relation:
    return Relation.from_rows(SCHEMA, [list(pair) for pair in pairs])


class TestSetLaws:
    @given(rows, rows)
    def test_union_commutative(self, a, b):
        assert relation(a).union(relation(b)) == relation(b).union(relation(a))

    @given(rows, rows, rows)
    def test_union_associative(self, a, b, c):
        left = relation(a).union(relation(b)).union(relation(c))
        right = relation(a).union(relation(b).union(relation(c)))
        assert left == right

    @given(rows)
    def test_union_idempotent(self, a):
        assert relation(a).union(relation(a)) == relation(a)

    @given(rows, rows)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        result = relation(a).difference(relation(b))
        assert result.intersect(relation(b)).is_empty

    @given(rows, rows)
    def test_intersection_via_difference(self, a, b):
        # a ∩ b == a − (a − b)
        ra, rb = relation(a), relation(b)
        assert ra.intersect(rb) == ra.difference(ra.difference(rb))

    @given(rows, rows)
    def test_cardinality_inclusion_exclusion(self, a, b):
        ra, rb = relation(a), relation(b)
        assert (ra.union(rb).cardinality
                == ra.cardinality + rb.cardinality - ra.intersect(rb).cardinality)


class TestSelectLaws:
    @given(rows, grades)
    def test_select_commutes(self, a, threshold):
        ra = relation(a)
        p = attr("grade") >= threshold
        q = attr("name") == "A"
        assert ra.select(p).select(q) == ra.select(q).select(p)

    @given(rows, grades)
    def test_select_conjunction_is_composition(self, a, threshold):
        ra = relation(a)
        p = attr("grade") >= threshold
        q = attr("name") == "A"
        assert ra.select(p & q) == ra.select(p).select(q)

    @given(rows, rows, grades)
    def test_select_distributes_over_union(self, a, b, threshold):
        p = attr("grade") >= threshold
        ra, rb = relation(a), relation(b)
        assert ra.union(rb).select(p) == ra.select(p).union(rb.select(p))

    @given(rows)
    def test_select_true_is_identity(self, a):
        ra = relation(a)
        assert ra.select(lambda row: True) == ra

    @given(rows)
    def test_select_false_is_empty(self, a):
        assert relation(a).select(lambda row: False).is_empty


class TestProjectJoinLaws:
    @given(rows)
    def test_project_idempotent(self, a):
        ra = relation(a)
        assert ra.project(["name"]).project(["name"]) == ra.project(["name"])

    @given(rows)
    def test_project_full_is_identity(self, a):
        ra = relation(a)
        assert ra.project(["name", "grade"]) == ra

    @given(rows)
    def test_rename_roundtrip(self, a):
        ra = relation(a)
        assert ra.rename({"grade": "g"}).rename({"g": "grade"}) == ra

    @given(rows, rows)
    def test_natural_join_with_self_schema_is_intersection(self, a, b):
        # With identical schemas, every attribute is shared, so the natural
        # join degenerates to intersection.
        ra, rb = relation(a), relation(b)
        assert ra.natural_join(rb) == ra.intersect(rb)

    @given(rows)
    def test_product_cardinality(self, a):
        ra = relation(a)
        assert ra.product(ra, "l", "r").cardinality == ra.cardinality ** 2

    @given(rows, grades)
    def test_sort_preserves_content(self, a, _):
        ra = relation(a)
        assert ra.sort(["grade", "name"]) == ra
