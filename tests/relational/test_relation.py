"""Unit tests for relations and the relational algebra."""

import pytest

from repro.errors import SchemaError
from repro.relational import Attribute, Domain, Relation, Schema, Tuple, attr, const

RANK = Domain.enumeration("rank", "assistant", "associate", "full")


def faculty() -> Relation:
    schema = Schema.of(name=Domain.STRING, rank=RANK)
    return Relation.from_rows(schema, [
        {"name": "Merrie", "rank": "full"},
        {"name": "Tom", "rank": "associate"},
        {"name": "Mike", "rank": "assistant"},
    ])


def salaries() -> Relation:
    schema = Schema.of(name=Domain.STRING, salary=Domain.INTEGER)
    return Relation.from_rows(schema, [
        {"name": "Merrie", "salary": 60000},
        {"name": "Tom", "salary": 45000},
        {"name": "Ann", "salary": 50000},
    ])


class TestConstruction:
    def test_from_rows_dicts_and_sequences(self):
        schema = Schema.of(name=Domain.STRING, rank=RANK)
        relation = Relation.from_rows(schema, [
            {"name": "Merrie", "rank": "full"},
            ["Tom", "associate"],
        ])
        assert relation.cardinality == 2

    def test_duplicates_eliminated(self):
        schema = Schema.of(name=Domain.STRING)
        relation = Relation.from_rows(schema, [["Tom"], ["Tom"], ["Ann"]])
        assert relation.cardinality == 2

    def test_insertion_order_preserved(self):
        assert faculty().column("name") == ["Merrie", "Tom", "Mike"]

    def test_schema_mismatch_rejected(self):
        schema_a = Schema.of(name=Domain.STRING)
        schema_b = Schema.of(who=Domain.STRING)
        row = Tuple(schema_b, {"who": "Tom"})
        with pytest.raises(SchemaError):
            Relation(schema_a, [row])

    def test_empty(self):
        empty = Relation.empty(Schema.of(name=Domain.STRING))
        assert empty.is_empty and len(empty) == 0


class TestPointUpdates:
    def test_with_tuple(self):
        base = faculty()
        grown = base.insert_values(name="Ann", rank="assistant")
        assert grown.cardinality == 4
        assert base.cardinality == 3  # original untouched

    def test_without_tuple(self):
        base = faculty()
        tom = base.tuples[1]
        assert base.without_tuple(tom).column("name") == ["Merrie", "Mike"]

    def test_without_absent_tuple_is_noop(self):
        base = faculty()
        ghost = Tuple(base.schema, {"name": "Nobody", "rank": "full"})
        assert base.without_tuple(ghost) == base


class TestSelectProject:
    def test_select_expression(self):
        result = faculty().select(attr("rank") == "associate")
        assert result.column("name") == ["Tom"]

    def test_select_callable(self):
        result = faculty().select(lambda row: row["name"].startswith("M"))
        assert result.column("name") == ["Merrie", "Mike"]

    def test_project(self):
        result = faculty().project(["rank"])
        assert set(result.column("rank")) == {"full", "associate", "assistant"}

    def test_project_collapses_duplicates(self):
        schema = Schema.of(name=Domain.STRING, rank=RANK)
        relation = Relation.from_rows(schema, [["A", "full"], ["B", "full"]])
        assert relation.project(["rank"]).cardinality == 1

    def test_rename(self):
        result = faculty().rename({"rank": "position"})
        assert result.schema.names == ("name", "position")
        assert result.column("position") == ["full", "associate", "assistant"]


class TestSetOperations:
    def test_union(self):
        extra = Relation.from_rows(faculty().schema, [["Ann", "assistant"],
                                                      ["Merrie", "full"]])
        merged = faculty().union(extra)
        assert merged.cardinality == 4  # Merrie deduplicated

    def test_difference(self):
        tom_only = Relation.from_rows(faculty().schema, [["Tom", "associate"]])
        assert faculty().difference(tom_only).column("name") == ["Merrie", "Mike"]

    def test_intersect(self):
        other = Relation.from_rows(faculty().schema, [["Tom", "associate"],
                                                      ["Ann", "full"]])
        assert faculty().intersect(other).column("name") == ["Tom"]

    def test_incompatible_schemas_rejected(self):
        with pytest.raises(SchemaError, match="union"):
            faculty().union(salaries())


class TestJoins:
    def test_product_with_prefixes(self):
        product = faculty().product(faculty(), "f1", "f2")
        assert product.cardinality == 9
        assert "f1.name" in product.schema

    def test_theta_join(self):
        pairs = faculty().theta_join(
            faculty(), attr("f1.rank") == attr("f2.rank"), "f1", "f2")
        assert pairs.cardinality == 3  # only self-pairs share a rank

    def test_natural_join(self):
        joined = faculty().natural_join(salaries())
        assert joined.schema.names == ("name", "rank", "salary")
        assert joined.cardinality == 2  # Merrie and Tom
        merrie = joined.select(attr("name") == "Merrie")
        assert merrie.column("salary") == [60000]

    def test_natural_join_no_common_attributes_is_product(self):
        left = Relation.from_rows(Schema.of(a=Domain.INTEGER), [[1], [2]])
        right = Relation.from_rows(Schema.of(b=Domain.INTEGER), [[10], [20]])
        assert left.natural_join(right).cardinality == 4


class TestSortAndDisplay:
    def test_sort(self):
        assert faculty().sort(["name"]).column("name") == ["Merrie", "Mike", "Tom"]

    def test_sort_reverse(self):
        assert faculty().sort(["name"], reverse=True).column("name") == [
            "Tom", "Mike", "Merrie"]

    def test_pretty_contains_all_values(self):
        text = faculty().pretty("faculty")
        assert "faculty" in text
        for name in ("Merrie", "Tom", "Mike", "rank"):
            assert name in text

    def test_pretty_renders_null_as_dash(self):
        schema = Schema([Attribute("nick", Domain.STRING, nullable=True)])
        relation = Relation.from_rows(schema, [[None]])
        assert "-" in relation.pretty()


class TestEquality:
    def test_set_semantics(self):
        reordered = Relation(faculty().schema, reversed(faculty().tuples))
        assert reordered == faculty()
        assert hash(reordered) == hash(faculty())

    def test_contains(self):
        tom = faculty().tuples[1]
        assert tom in faculty()

    def test_to_dicts(self):
        assert faculty().to_dicts()[0] == {"name": "Merrie", "rank": "full"}
