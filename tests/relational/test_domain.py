"""Unit tests for value domains, including user-defined time."""

import pytest

from repro.errors import DomainError
from repro.relational.domain import Domain
from repro.time import Instant


class TestBuiltins:
    def test_string(self):
        assert Domain.STRING.contains("hello")
        assert not Domain.STRING.contains(42)
        assert Domain.STRING.parse("x") == "x"

    def test_integer(self):
        assert Domain.INTEGER.contains(42)
        assert not Domain.INTEGER.contains(4.2)
        assert not Domain.INTEGER.contains(True)  # bools are not ints here
        assert Domain.INTEGER.parse("42") == 42

    def test_integer_parse_garbage(self):
        with pytest.raises(DomainError):
            Domain.INTEGER.parse("forty-two")

    def test_float(self):
        assert Domain.FLOAT.contains(4.2)
        assert Domain.FLOAT.contains(42)  # ints are acceptable floats
        assert not Domain.FLOAT.contains("4.2")
        assert Domain.FLOAT.parse("4.2") == 4.2

    def test_float_parse_garbage(self):
        with pytest.raises(DomainError):
            Domain.FLOAT.parse("pi")

    def test_boolean(self):
        assert Domain.BOOLEAN.contains(True)
        assert not Domain.BOOLEAN.contains(1)
        assert Domain.BOOLEAN.parse("yes") is True
        assert Domain.BOOLEAN.parse("F") is False

    def test_boolean_parse_garbage(self):
        with pytest.raises(DomainError):
            Domain.BOOLEAN.parse("maybe")

    def test_date(self):
        assert Domain.DATE.contains(Instant.parse("12/15/82"))
        assert not Domain.DATE.contains("12/15/82")
        assert Domain.DATE.parse("12/15/82") == Instant.parse("12/15/82")
        assert Domain.DATE.format(Instant.parse("12/15/82")) == "1982-12-15"


class TestEnumeration:
    def test_membership(self):
        rank = Domain.enumeration("rank", "assistant", "associate", "full")
        assert rank.contains("full")
        assert not rank.contains("emeritus")

    def test_parse_validates(self):
        rank = Domain.enumeration("rank", "assistant", "associate")
        assert rank.parse("assistant") == "assistant"
        with pytest.raises(DomainError, match="rank"):
            rank.parse("full")

    def test_check_raises_with_attribute_name(self):
        rank = Domain.enumeration("rank", "assistant")
        with pytest.raises(DomainError, match="position"):
            rank.check("dean", attribute="position")


class TestUserDefinedTime:
    def test_values_are_instants(self):
        effective = Domain.user_defined_time("effective date")
        assert effective.contains(Instant.parse("09/01/77"))
        assert not effective.contains("09/01/77")

    def test_io_functions(self):
        # §4.5: "all that is needed is an internal representation and input
        # and output functions".
        effective = Domain.user_defined_time("effective date")
        value = effective.parse("09/01/77")
        assert value == Instant.parse("09/01/77")
        assert effective.format(value) == "09/01/77"

    def test_flagged(self):
        assert Domain.user_defined_time().is_user_defined_time
        assert not Domain.DATE.is_user_defined_time

    def test_infinity_parses(self):
        effective = Domain.user_defined_time()
        assert effective.format(effective.parse("forever")) == "∞"


class TestEquality:
    def test_by_name(self):
        assert Domain.STRING == Domain("string", lambda v: True)
        assert Domain.STRING != Domain.INTEGER

    def test_user_defined_time_distinct_from_plain(self):
        assert Domain.user_defined_time("date") != Domain("date", lambda v: True)

    def test_hashable(self):
        assert len({Domain.STRING, Domain.INTEGER, Domain.STRING}) == 2

    def test_format_without_formatter(self):
        bare = Domain("bare", lambda v: True)
        assert bare.format(42) == "42"

    def test_parse_without_parser_raises(self):
        bare = Domain("bare", lambda v: True)
        with pytest.raises(DomainError):
            bare.parse("42")
