"""Unit tests for schemas and tuples."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational import Attribute, Domain, Schema, Tuple

RANK = Domain.enumeration("rank", "assistant", "associate", "full")


def faculty_schema() -> Schema:
    return Schema.of(key=["name"], name=Domain.STRING, rank=RANK)


class TestAttribute:
    def test_basic(self):
        attribute = Attribute("name", Domain.STRING)
        assert attribute.name == "name"
        assert not attribute.nullable

    def test_check(self):
        attribute = Attribute("name", Domain.STRING)
        assert attribute.check("Merrie") == "Merrie"
        with pytest.raises(Exception):
            attribute.check(42)

    def test_null_rejected_unless_nullable(self):
        strict = Attribute("name", Domain.STRING)
        with pytest.raises(SchemaError, match="not nullable"):
            strict.check(None)
        loose = Attribute("name", Domain.STRING, nullable=True)
        assert loose.check(None) is None

    def test_renamed(self):
        attribute = Attribute("name", Domain.STRING, nullable=True)
        renamed = attribute.renamed("title")
        assert renamed.name == "title"
        assert renamed.domain == Domain.STRING
        assert renamed.nullable

    def test_names_with_spaces_allowed(self):
        # The paper's column headings ("effective date") are legal.
        assert Attribute("effective date", Domain.DATE).name == "effective date"

    def test_qualified_names_allowed(self):
        assert Attribute("f1.rank", RANK).name == "f1.rank"

    @pytest.mark.parametrize("bad", ["", "1abc", "a-b", "a..b", "."])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(SchemaError):
            Attribute(bad, Domain.STRING)


class TestSchema:
    def test_of(self):
        schema = faculty_schema()
        assert schema.names == ("name", "rank")
        assert schema.key == ("name",)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Attribute("x", Domain.STRING), Attribute("x", Domain.INTEGER)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_key_must_exist(self):
        with pytest.raises(SchemaError, match="key"):
            Schema.of(key=["id"], name=Domain.STRING)

    def test_key_must_be_distinct(self):
        with pytest.raises(SchemaError, match="distinct"):
            Schema([Attribute("a", Domain.STRING)], key=["a", "a"])

    def test_attribute_lookup(self):
        schema = faculty_schema()
        assert schema.attribute("rank").domain == RANK
        with pytest.raises(UnknownAttributeError, match="salary"):
            schema.attribute("salary")

    def test_contains_iter_len(self):
        schema = faculty_schema()
        assert "name" in schema and "salary" not in schema
        assert [a.name for a in schema] == ["name", "rank"]
        assert len(schema) == 2

    def test_project(self):
        projected = faculty_schema().project(["rank"])
        assert projected.names == ("rank",)
        assert projected.key == ()  # key dropped: 'name' not kept

    def test_project_keeps_key_when_included(self):
        projected = faculty_schema().project(["name"])
        assert projected.key == ("name",)

    def test_rename(self):
        renamed = faculty_schema().rename({"rank": "position"})
        assert renamed.names == ("name", "position")
        assert renamed.key == ("name",)

    def test_rename_key_attribute(self):
        renamed = faculty_schema().rename({"name": "who"})
        assert renamed.key == ("who",)

    def test_rename_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            faculty_schema().rename({"salary": "pay"})

    def test_concat_with_prefixes(self):
        schema = faculty_schema()
        combined = schema.concat(schema, "f1", "f2")
        assert combined.names == ("f1.name", "f1.rank", "f2.name", "f2.rank")

    def test_concat_collision_without_prefixes_raises(self):
        schema = faculty_schema()
        with pytest.raises(SchemaError):
            schema.concat(schema)

    def test_key_of(self):
        schema = faculty_schema()
        assert schema.key_of({"name": "Tom", "rank": "associate"}) == ("Tom",)

    def test_equality_and_hash(self):
        assert faculty_schema() == faculty_schema()
        assert hash(faculty_schema()) == hash(faculty_schema())
        assert faculty_schema() != faculty_schema().rename({"rank": "r"})


class TestTuple:
    def test_basic(self):
        row = Tuple(faculty_schema(), {"name": "Merrie", "rank": "full"})
        assert row["name"] == "Merrie"
        assert row.values == ("Merrie", "full")
        assert dict(row) == {"name": "Merrie", "rank": "full"}

    def test_from_sequence(self):
        row = Tuple.from_sequence(faculty_schema(), ["Tom", "associate"])
        assert row["rank"] == "associate"

    def test_from_sequence_wrong_arity(self):
        with pytest.raises(SchemaError):
            Tuple.from_sequence(faculty_schema(), ["Tom"])

    def test_missing_value_rejected(self):
        with pytest.raises(SchemaError, match="missing"):
            Tuple(faculty_schema(), {"name": "Tom"})

    def test_extra_value_rejected(self):
        with pytest.raises(SchemaError, match="unknown"):
            Tuple(faculty_schema(), {"name": "Tom", "rank": "full", "age": 40})

    def test_domain_checked(self):
        with pytest.raises(Exception):
            Tuple(faculty_schema(), {"name": "Tom", "rank": "janitor"})

    def test_unknown_attribute_access(self):
        row = Tuple(faculty_schema(), {"name": "Tom", "rank": "full"})
        with pytest.raises(UnknownAttributeError):
            _ = row["salary"]

    def test_key(self):
        row = Tuple(faculty_schema(), {"name": "Tom", "rank": "full"})
        assert row.key() == ("Tom",)

    def test_project(self):
        row = Tuple(faculty_schema(), {"name": "Tom", "rank": "full"})
        assert dict(row.project(["rank"])) == {"rank": "full"}

    def test_replace(self):
        row = Tuple(faculty_schema(), {"name": "Tom", "rank": "associate"})
        promoted = row.replace(rank="full")
        assert promoted["rank"] == "full"
        assert row["rank"] == "associate"  # original untouched

    def test_replace_is_checked(self):
        row = Tuple(faculty_schema(), {"name": "Tom", "rank": "associate"})
        with pytest.raises(Exception):
            row.replace(rank="janitor")

    def test_equality_and_hash(self):
        a = Tuple(faculty_schema(), {"name": "Tom", "rank": "full"})
        b = Tuple(faculty_schema(), {"name": "Tom", "rank": "full"})
        c = Tuple(faculty_schema(), {"name": "Tom", "rank": "associate"})
        assert a == b and a != c
        assert len({a, b, c}) == 2

    def test_mapping_protocol(self):
        row = Tuple(faculty_schema(), {"name": "Tom", "rank": "full"})
        assert list(row) == ["name", "rank"]
        assert len(row) == 2
        assert row.get("name") == "Tom"
