"""Unit tests for indexes, constraints and the catalog."""

import pytest

from repro.errors import (ConstraintViolation, DuplicateRelationError,
                          UnknownAttributeError, UnknownRelationError)
from repro.relational import (
    Attribute, Catalog, CheckConstraint, Domain, KeyConstraint,
    NotNullConstraint, Relation, Schema, attr,
)
from repro.relational.index import HashIndex, OrderedIndex
from repro.time import Instant


def events() -> Relation:
    schema = Schema([
        Attribute("name", Domain.STRING),
        Attribute("when", Domain.DATE, nullable=True),
    ])
    return Relation.from_rows(schema, [
        ["hired", Instant.parse("09/01/77")],
        ["promoted", Instant.parse("12/01/82")],
        ["left", Instant.parse("03/01/84")],
        ["unknown", None],
    ])


class TestHashIndex:
    def test_lookup(self):
        index = HashIndex(events(), ["name"])
        assert [dict(t)["name"] for t in index.lookup("hired")] == ["hired"]
        assert index.lookup("fired") == []

    def test_contains(self):
        index = HashIndex(events(), ["name"])
        assert index.contains("promoted")
        assert not index.contains("demoted")

    def test_multi_attribute(self):
        index = HashIndex(events(), ["name", "when"])
        assert len(index.lookup("hired", Instant.parse("09/01/77"))) == 1

    def test_arity_checked(self):
        index = HashIndex(events(), ["name", "when"])
        with pytest.raises(UnknownAttributeError):
            index.lookup("hired")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(UnknownAttributeError):
            HashIndex(events(), ["nowhere"])

    def test_len_and_keys(self):
        index = HashIndex(events(), ["name"])
        assert len(index) == 4
        assert len(list(index.distinct_keys())) == 4


class TestOrderedIndex:
    def test_range(self):
        index = OrderedIndex(events(), "when")
        hits = index.range(Instant.parse("01/01/80"), Instant.parse("01/01/83"))
        assert [t["name"] for t in hits] == ["promoted"]

    def test_at_most_is_as_of_scan(self):
        index = OrderedIndex(events(), "when")
        hits = index.at_most(Instant.parse("12/01/82"))
        assert [t["name"] for t in hits] == ["hired", "promoted"]

    def test_inclusive_high(self):
        index = OrderedIndex(events(), "when")
        exclusive = index.range(None, Instant.parse("12/01/82"))
        inclusive = index.range(None, Instant.parse("12/01/82"), inclusive_high=True)
        assert len(inclusive) == len(exclusive) + 1

    def test_nulls_excluded(self):
        index = OrderedIndex(events(), "when")
        assert len(index) == 3

    def test_first_last(self):
        index = OrderedIndex(events(), "when")
        assert index.first()["name"] == "hired"
        assert index.last()["name"] == "left"

    def test_empty(self):
        empty = Relation.empty(events().schema)
        index = OrderedIndex(empty, "when")
        assert index.first() is None and index.last() is None
        assert index.range() == []


class TestConstraints:
    def test_key_constraint(self):
        schema = Schema.of(name=Domain.STRING, rank=Domain.STRING)
        good = Relation.from_rows(schema, [["A", "x"], ["B", "x"]])
        KeyConstraint(["name"]).check(good)
        bad = Relation.from_rows(schema, [["A", "x"], ["A", "y"]])
        with pytest.raises(ConstraintViolation, match="duplicate key"):
            KeyConstraint(["name"]).check(bad)

    def test_key_constraint_unknown_attribute(self):
        schema = Schema.of(name=Domain.STRING)
        with pytest.raises(UnknownAttributeError):
            KeyConstraint(["id"]).check(Relation.empty(schema))

    def test_not_null_constraint(self):
        schema = Schema([Attribute("x", Domain.STRING, nullable=True)])
        with pytest.raises(ConstraintViolation, match="null"):
            NotNullConstraint(["x"]).check(Relation.from_rows(schema, [[None]]))

    def test_check_constraint(self):
        schema = Schema.of(age=Domain.INTEGER)
        adult = CheckConstraint(attr("age") >= 18, name="adult")
        adult.check(Relation.from_rows(schema, [[21]]))
        with pytest.raises(ConstraintViolation, match="adult"):
            adult.check(Relation.from_rows(schema, [[12]]))


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        schema = Schema.of(key=["name"], name=Domain.STRING)
        catalog.create("faculty", schema)
        assert catalog.get("faculty").is_empty
        assert "faculty" in catalog
        assert catalog.names() == ["faculty"]

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        schema = Schema.of(name=Domain.STRING)
        catalog.create("faculty", schema)
        with pytest.raises(DuplicateRelationError):
            catalog.create("faculty", schema)

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError, match="nowhere"):
            Catalog().get("nowhere")

    def test_schema_key_becomes_constraint(self):
        catalog = Catalog()
        catalog.create("faculty", Schema.of(key=["name"], name=Domain.STRING,
                                            rank=Domain.STRING))
        relation = catalog.get("faculty")
        dup = (relation.insert_values(name="A", rank="x")
                       .insert_values(name="A", rank="y"))
        with pytest.raises(ConstraintViolation):
            catalog.replace("faculty", dup)

    def test_replace_checks_constraints(self):
        catalog = Catalog()
        schema = Schema.of(age=Domain.INTEGER)
        catalog.create("people", schema,
                       constraints=[CheckConstraint(attr("age") >= 0)])
        bad = Relation.from_rows(schema, [[-1]])
        with pytest.raises(ConstraintViolation):
            catalog.replace("people", bad)
        # skip_constraints bypasses (used by the temporal kinds).
        catalog.replace("people", bad, skip_constraints=True)
        assert catalog.get("people").cardinality == 1

    def test_replace_schema_mismatch(self):
        catalog = Catalog()
        catalog.create("a", Schema.of(x=Domain.INTEGER))
        other = Relation.empty(Schema.of(y=Domain.INTEGER))
        with pytest.raises(UnknownRelationError):
            catalog.replace("a", other)

    def test_drop(self):
        catalog = Catalog()
        catalog.create("a", Schema.of(x=Domain.INTEGER))
        catalog.drop("a")
        assert "a" not in catalog
        with pytest.raises(UnknownRelationError):
            catalog.drop("a")

    def test_constraints_accessor(self):
        catalog = Catalog()
        catalog.create("a", Schema.of(key=["x"], x=Domain.INTEGER))
        assert any(isinstance(c, KeyConstraint) for c in catalog.constraints("a"))
