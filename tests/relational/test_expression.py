"""Unit tests for the expression AST and evaluator."""

import pytest

from repro.errors import ExpressionError
from repro.relational import Attribute, Domain, Schema, Tuple, attr, const
from repro.relational.expression import (
    And, AttrRef, BinaryOp, Comparison, Const, IsNull, Not, Or,
)

SCHEMA = Schema([
    Attribute("name", Domain.STRING),
    Attribute("age", Domain.INTEGER),
    Attribute("nick", Domain.STRING, nullable=True),
])

ROW = Tuple(SCHEMA, {"name": "Merrie", "age": 40, "nick": None})


class TestLeaves:
    def test_const(self):
        assert const(42).evaluate(ROW) == 42
        assert const("x").references() == frozenset()

    def test_unqualified_attr(self):
        assert attr("name").evaluate(ROW) == "Merrie"
        assert attr("age").references() == frozenset({(None, "age")})

    def test_qualified_attr(self):
        env = {"f": ROW}
        assert attr("f", "name").evaluate(env) == "Merrie"
        assert attr("f", "name").references() == frozenset({("f", "name")})

    def test_unbound_variable(self):
        with pytest.raises(ExpressionError, match="not bound"):
            attr("g", "name").evaluate({"f": ROW})

    def test_unknown_attribute(self):
        with pytest.raises(ExpressionError, match="salary"):
            attr("salary").evaluate(ROW)


class TestComparison:
    def test_operators(self):
        assert (attr("age") == const(40)).evaluate(ROW)
        assert (attr("age") != const(39)).evaluate(ROW)
        assert (attr("age") < const(41)).evaluate(ROW)
        assert (attr("age") <= const(40)).evaluate(ROW)
        assert (attr("age") > const(39)).evaluate(ROW)
        assert (attr("age") >= const(40)).evaluate(ROW)

    def test_lifting_plain_values(self):
        assert (attr("age") == 40).evaluate(ROW)
        assert (attr("name") == "Merrie").evaluate(ROW)

    def test_null_comparisons_false(self):
        assert not (attr("nick") == "Mo").evaluate(ROW)
        assert not (attr("nick") != "Mo").evaluate(ROW)
        assert not (attr("nick") < "Mo").evaluate(ROW)

    def test_is_null(self):
        assert attr("nick").is_null().evaluate(ROW)
        assert not attr("name").is_null().evaluate(ROW)

    def test_type_mismatch_raises(self):
        with pytest.raises(ExpressionError, match="compare"):
            (attr("age") < "forty").evaluate(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~=", const(1), const(2))


class TestBoolean:
    def test_and_or_not(self):
        assert ((attr("age") == 40) & (attr("name") == "Merrie")).evaluate(ROW)
        assert not ((attr("age") == 40) & (attr("name") == "Tom")).evaluate(ROW)
        assert ((attr("age") == 99) | (attr("name") == "Merrie")).evaluate(ROW)
        assert (~(attr("age") == 99)).evaluate(ROW)

    def test_references_union(self):
        expression = (attr("age") == 40) & (attr("f", "name") == "x")
        assert expression.references() == frozenset({(None, "age"), ("f", "name")})


class TestArithmetic:
    def test_operators(self):
        assert (attr("age") + 2).evaluate(ROW) == 42
        assert (attr("age") - 2).evaluate(ROW) == 38
        assert (attr("age") * 2).evaluate(ROW) == 80
        assert (attr("age") / 4).evaluate(ROW) == 10

    def test_string_concat(self):
        assert (attr("name") + "!").evaluate(ROW) == "Merrie!"

    def test_null_propagates(self):
        assert (attr("nick") + "!").evaluate(ROW) is None

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            (attr("age") / 0).evaluate(ROW)

    def test_nested(self):
        assert ((attr("age") + 2) == 42).evaluate(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("**", const(2), const(3))


class TestRepr:
    """repr is the canonical structural identity used by parser tests."""

    def test_stable(self):
        a = (attr("f", "age") == 40) & ~(attr("name") == "Tom")
        b = (attr("f", "age") == 40) & ~(attr("name") == "Tom")
        assert repr(a) == repr(b)

    def test_distinguishes(self):
        assert repr(attr("age") == 40) != repr(attr("age") != 40)
        assert repr(And(const(1), const(2))) != repr(Or(const(1), const(2)))
        assert "is null" in repr(IsNull(attr("nick")))
