"""Unit tests for aggregation and grouping."""

import pytest

from repro.errors import ExpressionError, UnknownAttributeError
from repro.relational import Domain, Relation, Schema
from repro.relational.aggregate import (
    agg_avg, agg_max, agg_min, agg_sum, aggregate, count, count_unique,
)


def staff() -> Relation:
    schema = Schema.of(name=Domain.STRING, dept=Domain.STRING,
                       salary=Domain.INTEGER)
    return Relation.from_rows(schema, [
        ["Merrie", "cs", 60000],
        ["Tom", "cs", 45000],
        ["Ann", "math", 50000],
        ["Bob", "math", 50000],
    ])


class TestUngrouped:
    def test_count_rows(self):
        assert aggregate(staff(), [count()]).to_dicts() == [{"count": 4}]

    def test_count_empty_relation_is_zero(self):
        empty = Relation.empty(staff().schema)
        assert aggregate(empty, [count()]).to_dicts() == [{"count": 0}]

    def test_sum(self):
        assert aggregate(staff(), [agg_sum("salary")]).to_dicts() == [
            {"sum_salary": 205000}]

    def test_avg(self):
        assert aggregate(staff(), [agg_avg("salary")]).to_dicts() == [
            {"avg_salary": 51250.0}]

    def test_avg_of_empty_is_null(self):
        empty = Relation.empty(staff().schema)
        assert aggregate(empty, [agg_avg("salary")]).to_dicts() == [
            {"avg_salary": None}]

    def test_min_max(self):
        result = aggregate(staff(), [agg_min("salary"), agg_max("salary")])
        assert result.to_dicts() == [{"min_salary": 45000, "max_salary": 60000}]

    def test_count_unique(self):
        assert aggregate(staff(), [count_unique("salary")]).to_dicts() == [
            {"countu_salary": 3}]

    def test_multiple_functions(self):
        result = aggregate(staff(), [count(), agg_sum("salary")])
        assert result.to_dicts() == [{"count": 4, "sum_salary": 205000}]


class TestGrouped:
    def test_group_by_dept(self):
        result = aggregate(staff(), [count(), agg_avg("salary")], by=["dept"])
        rows = {row["dept"]: row for row in result.to_dicts()}
        assert rows["cs"]["count"] == 2
        assert rows["cs"]["avg_salary"] == 52500.0
        assert rows["math"]["avg_salary"] == 50000.0

    def test_result_composes_with_algebra(self):
        from repro.relational import attr
        result = aggregate(staff(), [count()], by=["dept"])
        big = result.select(attr("count") > 1)
        assert big.cardinality == 2


class TestNulls:
    def test_nulls_skipped(self):
        from repro.relational import Attribute
        schema = Schema([Attribute("x", Domain.INTEGER, nullable=True)])
        relation = Relation.from_rows(schema, [[1], [None], [3]])
        result = aggregate(relation, [count("x"), agg_sum("x")])
        assert result.to_dicts() == [{"count_x": 2, "sum_x": 4}]


class TestErrors:
    def test_no_functions(self):
        with pytest.raises(ExpressionError):
            aggregate(staff(), [])

    def test_unknown_group_attribute(self):
        with pytest.raises(UnknownAttributeError):
            aggregate(staff(), [count()], by=["nowhere"])

    def test_unknown_aggregated_attribute(self):
        with pytest.raises(UnknownAttributeError):
            aggregate(staff(), [agg_sum("nowhere")])
