"""Unit tests for rendering and unparsing."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.tquel import parse, unparse
from repro.tquel.printer import (render, render_historical, render_rollback,
                                 render_static, render_temporal,
                                 unparse_expression)

from tests.conftest import build_faculty


class TestRenderFigures:
    def test_static_table(self, static_faculty):
        database, _ = static_faculty
        text = render_static(database.snapshot("faculty"), "faculty")
        assert "faculty" in text and "Merrie" in text and "full" in text

    def test_rollback_table_has_double_bar_and_infinity(self,
                                                        rollback_faculty):
        database, _ = rollback_faculty
        text = render_rollback(database.store("faculty"))
        assert "‖" in text
        assert "transaction (start)" in text
        assert "∞" in text
        assert "08/25/77" in text  # the paper's date style

    def test_historical_table(self, historical_faculty):
        database, _ = historical_faculty
        text = render_historical(database.history("faculty"))
        assert "valid (from)" in text and "(to)" in text
        assert "09/01/77" in text

    def test_historical_event_style(self, historical_faculty):
        database, _ = historical_faculty
        text = render_historical(database.history("faculty"), event=True)
        assert "valid (at)" in text and "(to)" not in text

    def test_temporal_table_has_both_axes(self, temporal_faculty):
        database, _ = temporal_faculty
        text = render_temporal(database.temporal("faculty"))
        assert "valid (from)" in text
        assert "transaction (start)" in text
        assert text.count("‖") >= 2 * 7  # two bars per data row

    def test_render_dispatch(self, temporal_faculty):
        database, _ = temporal_faculty
        assert "transaction" in render(database.temporal("faculty"))
        assert "valid" in render(database.history("faculty"))
        assert render(None) == "(no result)"

    def test_null_cell_renders_dash(self):
        from repro.relational import Attribute, Domain, Relation, Schema
        schema = Schema([Attribute("x", Domain.STRING, nullable=True)])
        assert "-" in render_static(Relation.from_rows(schema, [[None]]))


class TestUnparse:
    STATEMENTS = [
        "range of f is faculty",
        'retrieve (rank = f.rank) where (f.name = "Merrie")',
        "retrieve into r unique (rank = f.rank) sort by rank",
        'retrieve (rank = f1.rank) when f1 overlap start of f2 '
        'as of "12/10/82"',
        "retrieve (rank = f.rank) valid from start of f to forever",
        "retrieve (rank = f.rank) valid at end of f",
        'retrieve (n = count(f.name), m = avg(f.salary))',
        'append to faculty (name = "Tom", rank = "associate") '
        'valid from "12/05/82"',
        'delete f where (f.name = "Mike") valid from "03/01/84"',
        'replace f (rank = "full") where (f.name = "Merrie") '
        'valid from "12/01/82"',
        "create faculty2 (name = string, rank = string) key (name)",
        "create event promotion (name = string, sent = date)",
        "destroy faculty",
    ]

    @pytest.mark.parametrize("source", STATEMENTS)
    def test_roundtrip(self, source):
        statement = parse(source)
        again = parse(unparse(statement))
        assert again == statement

    def test_unparse_idempotent(self):
        source = ('retrieve (rank = f1.rank) where (f1.name = "M") '
                  'when f1 overlap f2')
        once = unparse(parse(source))
        assert unparse(parse(once)) == once

    def test_string_escaping(self):
        statement = parse(r'retrieve (x = f.name) where f.name = "a\"b"')
        assert parse(unparse(statement)) == statement

    def test_complex_when_roundtrip(self):
        source = ("retrieve (rank = f1.rank) when f1 overlap f2 and not "
                  "(extend(f1, f2) precede f3 or f1 equal f2)")
        assert parse(unparse(parse(source))) == parse(source)

    def test_unparse_expression_values(self):
        from repro.relational import attr, const
        assert unparse_expression(const("x")) == '"x"'
        assert unparse_expression(const(42)) == "42"
        assert unparse_expression(attr("f", "rank")) == "f.rank"
        assert unparse_expression(attr("rank")) == "rank"
