"""Tests for the TQuel extensions: `as of ... through` and the
Allen-style when-operators."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import TQuelSemanticError
from repro.tquel import Session, parse, unparse
from repro.tquel.ast import TConst

from tests.conftest import build_faculty


def session_for(db_class):
    database, clock = build_faculty(db_class)
    session = Session(database)
    for variable in ("f", "f1", "f2"):
        session.execute(f"range of {variable} is faculty")
    return session, clock


class TestAsOfThroughParsing:
    def test_parse(self):
        stmt = parse('retrieve (f.rank) as of "12/02/82" through "12/20/82"')
        assert stmt.as_of == TConst("12/02/82")
        assert stmt.as_of_through == TConst("12/20/82")

    def test_through_requires_as_of(self):
        with pytest.raises(Exception):
            parse('retrieve (f.rank) through "12/20/82"')

    def test_unparse_roundtrip(self):
        source = ('retrieve (rank = f.rank) as of "12/02/82" '
                  'through "12/20/82"')
        assert parse(unparse(parse(source))) == parse(source)

    def test_analyzer_enforces_transaction_time(self):
        session, _ = session_for(HistoricalDatabase)
        with pytest.raises(TQuelSemanticError, match="transaction time"):
            session.execute('retrieve (f.rank) as of "12/02/82" '
                            'through "12/20/82"')

    def test_analyzer_rejects_variables_in_through(self):
        session, _ = session_for(TemporalDatabase)
        with pytest.raises(TQuelSemanticError, match="not allowed"):
            session.execute('retrieve (f.rank) as of "12/02/82" '
                            "through start of f")


class TestAsOfThroughEvaluation:
    def test_rollback_union(self):
        session, _ = session_for(RollbackDatabase)
        result = session.query('retrieve (f.name, f.rank) '
                               'as of "12/02/82" through "12/20/82"')
        assert {(row["name"], row["rank"]) for row in result} == {
            ("Merrie", "associate"), ("Merrie", "full"),
            ("Tom", "full"), ("Tom", "associate")}

    def test_temporal_keeps_transaction_times(self):
        session, _ = session_for(TemporalDatabase)
        result = session.query('retrieve (f.rank) where f.name = "Tom" '
                               'as of "12/02/82" through "12/20/82"')
        pairs = sorted((row.data["rank"], row.tt.start.paper_format())
                       for row in result.rows)
        assert pairs == [("associate", "12/07/82"), ("full", "12/01/82")]

    def test_degenerate_range_equals_point_as_of(self):
        session, _ = session_for(RollbackDatabase)
        point = session.query('retrieve (f.rank) where f.name = "Merrie" '
                              'as of "12/10/82"')
        ranged = session.query('retrieve (f.rank) where f.name = "Merrie" '
                               'as of "12/10/82" through "12/10/82"')
        assert point == ranged

    def test_backwards_range_rejected(self):
        session, _ = session_for(RollbackDatabase)
        with pytest.raises(TQuelSemanticError, match="backwards"):
            session.execute('retrieve (f.rank) as of "12/20/82" '
                            'through "12/02/82"')

    def test_through_forever_covers_everything(self):
        session, _ = session_for(RollbackDatabase)
        result = session.query('retrieve (f.name) as of "01/01/77" '
                               "through forever")
        assert set(result.column("name")) == {"Merrie", "Tom", "Mike"}


class TestIsNull:
    def build(self):
        from repro.core import StaticDatabase
        from repro.relational import Attribute, Domain, Schema
        from repro.time import SimulatedClock
        database = StaticDatabase(clock=SimulatedClock("01/01/80"))
        database.define("people", Schema([
            Attribute("name", Domain.STRING),
            Attribute("nick", Domain.STRING, nullable=True)]))
        database.insert("people", {"name": "a", "nick": None})
        database.insert("people", {"name": "b", "nick": "bee"})
        session = Session(database)
        session.execute("range of p is people")
        return session

    def test_is_null(self):
        session = self.build()
        result = session.query("retrieve (p.name) where p.nick is null")
        assert result.column("name") == ["a"]

    def test_is_not_null(self):
        session = self.build()
        result = session.query("retrieve (p.name) where p.nick is not null")
        assert result.column("name") == ["b"]

    def test_roundtrip(self):
        for source in ("retrieve (name = p.name) where (p.nick is null)",
                       "retrieve (name = p.name) where (not (p.nick is null))"):
            assert parse(unparse(parse(source))) == parse(source)

    def test_combines_with_other_predicates(self):
        session = self.build()
        result = session.query(
            'retrieve (p.name) where p.nick is null or p.name = "b"')
        assert set(result.column("name")) == {"a", "b"}

    def test_equality_with_null_stays_false(self):
        # `= null` has no syntax; comparisons against a null *value* are
        # false either way — is null is the only true null test.
        session = self.build()
        result = session.query('retrieve (p.name) where p.nick = "bee"')
        assert result.column("name") == ["b"]


class TestExtendedWhenOperators:
    """meets / before / after / during / starts / finishes."""

    def test_parse_and_roundtrip(self):
        for op in ("meets", "before", "after", "during", "starts",
                   "finishes"):
            source = f"retrieve (rank = f1.rank) when f1 {op} f2"
            assert parse(unparse(parse(source))) == parse(source)

    def test_meets(self):
        # Merrie-associate [09/01/77, 12/01/82) meets Merrie-full
        # [12/01/82, ∞) — but those are the same variable; use constants.
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (f.rank) where f.name = "Merrie" '
            'when f meets "12/01/82" valid from start of f')
        assert [row.data["rank"] for row in result.rows] == ["associate"]

    def test_before_is_strict(self):
        session, _ = session_for(HistoricalDatabase)
        # Merrie-associate ends 12/01/82; 'precede' a period starting
        # exactly there holds, 'before' (needs a gap) does not.
        precede = session.query(
            'retrieve (f.rank) where f.name = "Merrie" '
            'when f precede "12/01/82" valid from start of f')
        before = session.query(
            'retrieve (f.rank) where f.name = "Merrie" '
            'when f before "12/01/82" valid from start of f')
        assert [row.data["rank"] for row in precede.rows] == ["associate"]
        assert before.is_empty

    def test_after(self):
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (f.name) when f after "12/25/82" '
            "valid from start of f")
        assert {row.data["name"] for row in result.rows} == {"Mike"}
        # 'after' is strict: a period meeting the reference does not count.
        meeting = session.query(
            'retrieve (f.name) when f after "12/31/82" '
            "valid from start of f")
        assert meeting.is_empty

    def test_during(self):
        session, _ = session_for(HistoricalDatabase)
        # Mike [01/01/83, 03/01/84) lies during Tom [12/05/82, ∞).
        result = session.query(
            'retrieve (a = f1.name) where f2.name = "Tom" '
            "when f1 during f2 valid from start of f1")
        assert {"Mike"} <= {row.data["a"] for row in result.rows}

    def test_starts_and_finishes(self):
        session, _ = session_for(HistoricalDatabase)
        starts = session.query(
            'retrieve (f.name) when f starts "01/01/83" '
            "valid from start of f")
        # Nothing starts exactly at the single chronon 01/01/83 while also
        # fitting inside it (Mike's period is longer).
        assert starts.is_empty
        finishes = session.query(
            'retrieve (f.rank) where f.name = "Merrie" '
            'when "11/30/82" finishes f valid from start of f')
        # The chronon 11/30/82 is the last chronon of Merrie-associate
        # [09/01/77, 12/01/82).
        assert [row.data["rank"] for row in finishes.rows] == ["associate"]

    def test_static_database_still_rejects_when(self):
        session, _ = session_for(StaticDatabase)
        with pytest.raises(TQuelSemanticError, match="valid time"):
            session.execute("retrieve (f1.rank) when f1 during f2")
