"""Unit + property tests for selection pushdown in the evaluator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StaticDatabase
from repro.relational import Domain, Schema, attr, const
from repro.relational.expression import And, Or
from repro.time import Instant, SimulatedClock
from repro.tquel import Session
from repro.tquel.evaluator import partition_pushdown, split_conjuncts


class TestSplitting:
    def test_none(self):
        assert split_conjuncts(None) == []

    def test_flat(self):
        expr = (attr("f", "a") == 1) & (attr("g", "b") == 2) & \
               (attr("f", "c") == 3)
        assert len(split_conjuncts(expr)) == 3

    def test_or_not_split(self):
        expr = (attr("f", "a") == 1) | (attr("f", "b") == 2)
        assert len(split_conjuncts(expr)) == 1

    def test_partition(self):
        expr = ((attr("f", "a") == 1)
                & (attr("g", "b") == 2)
                & (attr("f", "c") == attr("g", "d"))
                & ((attr("g", "e") == 3) | (attr("g", "e") == 4)))
        pushdown, residual = partition_pushdown(expr)
        assert set(pushdown) == {"f", "g"}
        assert len(pushdown["f"]) == 1
        assert len(pushdown["g"]) == 2  # the simple one and the Or
        assert len(residual) == 1       # the cross-variable join conjunct

    def test_constant_conjunct_stays_residual(self):
        pushdown, residual = partition_pushdown(const(True) & (attr("f", "a") == 1))
        assert len(residual) == 1
        assert len(pushdown["f"]) == 1


class TestPushdownCorrectness:
    """The rewrite must be invisible: results identical to the naive plan."""

    names = st.sampled_from(["a", "b", "c"])
    grades = st.integers(min_value=0, max_value=3)
    rows = st.lists(st.tuples(names, grades, grades), max_size=8)

    def build(self, raw):
        database = StaticDatabase(
            clock=SimulatedClock(Instant.parse("01/01/80")))
        database.define("r", Schema.of(name=Domain.STRING,
                                       x=Domain.INTEGER, y=Domain.INTEGER))
        for name, x, y in raw:
            database.insert("r", {"name": name, "x": x, "y": y})
        session = Session(database)
        session.execute("range of u is r")
        session.execute("range of v is r")
        return session, database

    @given(rows, grades)
    @settings(max_examples=60, deadline=None)
    def test_join_with_mixed_conjuncts(self, raw, threshold):
        session, database = self.build(raw)
        result = session.query(
            f"retrieve (a = u.name, b = v.name) "
            f"where u.x >= {threshold} and u.y = v.y and v.x < 3")
        snapshot = database.snapshot("r")
        expected = set()
        for left in snapshot:
            for right in snapshot:
                if (left["x"] >= threshold and left["y"] == right["y"]
                        and right["x"] < 3):
                    expected.add((left["name"], right["name"]))
        assert {(row["a"], row["b"]) for row in result} == expected

    @given(rows, grades)
    @settings(max_examples=40, deadline=None)
    def test_or_conjuncts_pushed_safely(self, raw, pivot):
        session, database = self.build(raw)
        result = session.query(
            f"retrieve (u.name) where (u.x = {pivot} or u.y = {pivot})")
        expected = {row["name"] for row in database.snapshot("r")
                    if row["x"] == pivot or row["y"] == pivot}
        assert set(result.column("name")) == expected

    def test_null_semantics_preserved(self):
        from repro.relational import Attribute, Relation
        database = StaticDatabase(
            clock=SimulatedClock(Instant.parse("01/01/80")))
        schema = Schema([Attribute("name", Domain.STRING),
                         Attribute("x", Domain.INTEGER, nullable=True)])
        database.define("r", schema)
        database.insert("r", {"name": "a", "x": None})
        database.insert("r", {"name": "b", "x": 1})
        session = Session(database)
        session.execute("range of u is r")
        # Comparisons with null are false — pushed or not.
        result = session.query("retrieve (u.name) where u.x < 5")
        assert result.column("name") == ["b"]
