"""The as-of result cache: flavors, invalidation, and the staleness bar.

The contract (docs/QUERY_PLANNING.md): an entry is **immutable** only
when the pinned instant is at or before the relation's last commit and
every cached row's transaction period is closed; everything else is
**epoch-bound** and dies with the next commit to its relation.  The
load-bearing test is `test_commit_never_serves_stale_result` — a commit
to an open store must be visible to the very next query, cached or not.
"""

import pytest

from repro.core import TemporalDatabase
from repro.core.resultcache import ResultCache
from repro.tquel import Session

from tests.conftest import build_faculty


def faculty_session(**db_kwargs):
    database, clock = build_faculty(TemporalDatabase, **db_kwargs)
    session = Session(database)
    session.execute("range of f is faculty")
    return session, database, clock


class TestFlavors:
    def test_closed_pin_is_cached_immutably(self):
        # Every row Merrie contributes as of 12/10/82 was later closed,
        # and the pin is before the last commit: cache forever.
        session, database, _ = faculty_session()
        query = 'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"'
        session.query(query)
        described = database.result_cache.describe()
        assert described == {**described, "immutable_entries": 1,
                             "epoch_entries": 0}
        session.query(query)
        assert database.result_cache.hits == 1

    def test_open_candidate_forces_epoch_entry(self):
        # Tom's rank=associate row is still open (tt [12/07/82, inf)):
        # a later commit would rewrite its period, so even a past pin
        # cannot be immutable.
        session, database, _ = faculty_session()
        session.query('retrieve (f.rank) where f.name = "Tom" '
                      'as of "12/10/82"')
        described = database.result_cache.describe()
        assert described["immutable_entries"] == 0
        assert described["epoch_entries"] == 1

    def test_default_state_query_is_epoch_bound(self):
        session, database, _ = faculty_session()
        session.query("retrieve (f.name, f.rank)")
        assert database.result_cache.describe()["epoch_entries"] == 1

    def test_now_dependent_when_stays_correct_across_clock_advance(self):
        # The cache may reuse the candidate *stream* (epoch-bound), but
        # a now-dependent `when` is never baked into a cached entry —
        # advancing the clock with NO commit must still change the
        # answer.  Mike's validity ends 03/01/84.
        session, database, clock = faculty_session()
        query = "retrieve (f.name) when f overlap now"
        before = {row.data["name"] for row in session.query(query).rows}
        assert "Mike" in before
        clock.set("06/01/84")
        after = {row.data["name"] for row in session.query(query).rows}
        assert "Mike" not in after
        assert after == before - {"Mike"}


class TestInvalidation:
    def test_commit_never_serves_stale_result(self):
        session, database, clock = faculty_session()
        query = "retrieve (f.name, f.rank)"
        before = {tuple(row.data.values) for row in session.query(query).rows}
        assert session.query(query) is not None  # warm: entry now cached
        clock.set("03/01/84")
        database.insert("faculty", {"name": "Jane", "rank": "assistant"},
                        valid_from="03/01/84")
        after = {tuple(row.data.values) for row in session.query(query).rows}
        assert after == before | {("Jane", "assistant")}
        assert database.result_cache.invalidations >= 1

    def test_commit_keeps_immutable_entries_live(self):
        session, database, clock = faculty_session()
        query = 'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"'
        first = session.query(query)
        clock.set("03/01/84")
        database.insert("faculty", {"name": "Jane", "rank": "assistant"},
                        valid_from="03/01/84")
        hits_before = database.result_cache.hits
        again = session.query(query)
        assert database.result_cache.hits == hits_before + 1
        assert [r.data["rank"] for r in again.rows] == \
            [r.data["rank"] for r in first.rows]

    def test_commit_to_other_relation_does_not_invalidate(self):
        session, database, clock = faculty_session()
        session.execute("create course (title = string) key (title)")
        session.query("retrieve (f.name, f.rank)")
        clock.set("03/01/84")
        database.insert("course", {"title": "Databases"},
                        valid_from="03/01/84")
        hits_before = database.result_cache.hits
        session.query("retrieve (f.name, f.rank)")
        assert database.result_cache.hits == hits_before + 1
        assert database.result_cache.invalidations == 0

    def test_ddl_purges_even_immutable_entries(self):
        session, database, _ = faculty_session()
        session.query('retrieve (f.rank) where f.name = "Merrie" '
                      'as of "12/10/82"')
        assert database.result_cache.describe()["immutable_entries"] == 1
        database.drop("faculty")
        assert len(database.result_cache) == 0

    def test_forced_plans_bypass_the_cache(self):
        for mode in ("naive", "index", "columnar"):
            database, _ = build_faculty(TemporalDatabase)
            session = Session(database, plan=mode)
            session.execute("range of f is faculty")
            session.query('retrieve (f.rank) where f.name = "Merrie" '
                          'as of "12/10/82"')
            assert len(database.result_cache) == 0, mode


class TestLRU:
    def test_capacity_evicts_least_recently_used(self):
        database, _ = build_faculty(TemporalDatabase)
        cache = ResultCache(database, capacity=2)
        cache.put("faculty", "a", "p", 1, immutable=True)
        cache.put("faculty", "b", "p", 2, immutable=True)
        assert cache.get("faculty", "a", "p") == 1  # refresh a
        cache.put("faculty", "c", "p", 3, immutable=True)
        assert cache.evictions == 1
        assert cache.get("faculty", "b", "p") is None  # b was LRU
        assert cache.get("faculty", "a", "p") == 1
        assert cache.get("faculty", "c", "p") == 3

    def test_capacity_must_be_positive(self):
        database, _ = build_faculty(TemporalDatabase)
        with pytest.raises(ValueError):
            ResultCache(database, capacity=0)

    def test_purge_counts_invalidations(self):
        database, _ = build_faculty(TemporalDatabase)
        cache = ResultCache(database, capacity=8)
        cache.put("faculty", "a", "p", 1, immutable=True)
        cache.put("other", "a", "p", 2, immutable=True)
        assert cache.purge("faculty") == 1
        assert cache.invalidations == 1
        assert cache.get("other", "a", "p") == 2
