"""The cost-based planner: choices, forcing, and the explain contract."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.tquel import Session
from repro.tquel.planner import (COSTS, AccessPlan, Clauses, PLAN_MODES,
                                 RelationProfile, choose, estimate_rows)

from tests.conftest import build_faculty


def prof(total=10_000, open_rows=50, has_tt=True, index=True,
         columnar=True, ready=False):
    return RelationProfile("facts", total, open_rows, has_tt, index,
                           columnar, ready)


def clauses(as_of=False, through=False, pushed=0, vectorizable=0,
            when=False):
    return Clauses(as_of, through, pushed, vectorizable, when)


class TestChoose:
    def test_tiny_relation_stays_naive(self):
        plan = choose(prof(total=6, open_rows=3), clauses(as_of=True))
        assert plan.path == "naive"
        assert plan.reason.startswith("min cost (")

    def test_selective_as_of_stab_picks_index(self):
        plan = choose(prof(), clauses(as_of=True))
        assert plan.path == "index"

    def test_predicate_heavy_scan_picks_columnar(self):
        # A through-range keeps half the closed log: too many survivors
        # for the probe to win, and the vectorized predicates make the
        # scan cheap per cell.
        plan = choose(prof(ready=True),
                      clauses(through=True, pushed=2, vectorizable=2),
                      vectorized_kernels=True)
        assert plan.path == "columnar"

    def test_missing_index_is_not_offered(self):
        plan = choose(prof(index=False), clauses(as_of=True),
                      vectorized_kernels=True)
        assert plan.costs["index"] is None
        assert plan.path != "index"

    def test_fallback_kernels_cost_more(self):
        fast = choose(prof(), clauses(), vectorized_kernels=True)
        slow = choose(prof(), clauses(), vectorized_kernels=False)
        assert slow.costs["columnar"] > fast.costs["columnar"]

    def test_first_build_pays_packing(self):
        cold = choose(prof(ready=False), clauses())
        warm = choose(prof(ready=True), clauses())
        assert cold.costs["columnar"] - warm.costs["columnar"] == \
            pytest.approx(COSTS["C_PACK"] * 10_000)

    def test_forced_mode_skips_costing(self):
        plan = choose(prof(total=6, open_rows=3), clauses(),
                      mode="columnar")
        assert plan.path == "columnar"
        assert plan.reason == "forced plan 'columnar'"

    def test_forced_unavailable_degrades_to_naive(self):
        plan = choose(prof(index=False, columnar=False), clauses(),
                      mode="index")
        assert plan.path == "naive"
        assert plan.reason == "forced plan 'index' unavailable here; using naive"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="plan must be one of"):
            choose(prof(), clauses(), mode="quantum")

    def test_reason_renders_every_cost(self):
        plan = choose(prof(columnar=False), clauses(as_of=True))
        assert "columnar=n/a" in plan.reason
        assert "naive=" in plan.reason and "index=" in plan.reason


class TestEstimateRows:
    def test_default_state_is_exactly_the_open_partition(self):
        assert estimate_rows(prof(), clauses()) == 50

    def test_as_of_keeps_a_thin_closed_slice(self):
        assert estimate_rows(prof(), clauses(as_of=True)) == \
            50 + (10_000 - 50) // 8

    def test_through_keeps_half_the_closed_log(self):
        assert estimate_rows(prof(), clauses(through=True)) == \
            50 + (10_000 - 50) // 2

    def test_no_transaction_time_selects_everything(self):
        assert estimate_rows(prof(has_tt=False), clauses(as_of=True)) == \
            10_000


class TestSessionKnob:
    def test_invalid_plan_rejected_with_modes_listed(self):
        database, _ = build_faculty(TemporalDatabase)
        with pytest.raises(ValueError) as err:
            Session(database, plan="speedy")
        assert str(err.value) == \
            f"plan must be one of {', '.join(PLAN_MODES)}; got 'speedy'"

    def test_plan_property_roundtrips(self):
        database, _ = build_faculty(TemporalDatabase)
        session = Session(database)
        assert session.plan == "auto"
        session.plan = "columnar"
        assert session.plan == "columnar"


class TestExplainContract:
    def session(self, db_class, plan="auto"):
        database, _ = build_faculty(db_class)
        session = Session(database, plan=plan)
        session.execute("range of f is faculty")
        return session

    def test_plan_keys_present_per_variable(self):
        session = self.session(TemporalDatabase)
        plan = session.explain_plan(
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"')
        info = plan["variables"]["f"]
        assert info["plan"] in ("naive", "index", "columnar")
        assert isinstance(info["estimated_rows"], int)
        assert info["plan_reason"].startswith("min cost (")
        assert plan["planner_mode"] == "auto"

    def test_explain_reports_forced_mode(self):
        session = self.session(TemporalDatabase, plan="columnar")
        plan = session.explain_plan('retrieve (f.rank) as of "12/10/82"')
        assert plan["planner_mode"] == "columnar"
        assert plan["variables"]["f"]["plan"] == "columnar"
        assert plan["variables"]["f"]["plan_reason"] == \
            "forced plan 'columnar'"

    def test_explain_reports_degradation(self):
        session = self.session(StaticDatabase, plan="columnar")
        plan = session.explain_plan("retrieve (f.rank)")
        assert plan["variables"]["f"]["plan"] == "naive"
        assert "unavailable here" in plan["variables"]["f"]["plan_reason"]

    def test_timings_false_is_verbatim_stable(self):
        # The doc-sync transcripts in docs/QUERY_PLANNING.md rely on
        # this exact rendering; keep the two in lockstep.
        session = self.session(TemporalDatabase)
        text = session.explain(
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"',
            timings=False)
        assert text == session.explain(
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"',
            timings=False)
        lines = text.splitlines()
        assert lines[0] == ("retrieve on a temporal database -> "
                            "temporal result (planner: auto)")
        assert lines[1] == ("  f over faculty: 2 candidates -> 1, "
                            "1 conjunct(s) pushed")
        assert lines[2] == \
            "    access path: bitemporal index: transaction-time stab"
        assert lines[3].startswith(
            "    plan: naive — estimated 4 row(s), actual 2 (min cost "
            "(naive=11.2, index=19.1, columnar=")
        assert lines[4] == \
            "  product of 1 combination(s), 0 residual conjunct(s)"
        assert lines[5] == "  temporal clauses: as of 1982-12-10"
        assert "phases" not in text

    def test_timings_true_appends_phases(self):
        session = self.session(TemporalDatabase)
        plan = session.explain_plan('retrieve (f.rank) as of "12/10/82"')
        assert list(plan["phases"]) == ["lex", "parse", "analyze", "plan"]

    def test_explain_has_no_cache_side_effects(self):
        session = self.session(TemporalDatabase)
        session.explain_plan(
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"')
        assert len(session.database.result_cache) == 0

    def test_plan_counts_match_on_every_kind(self):
        for db_class in (StaticDatabase, RollbackDatabase,
                         HistoricalDatabase, TemporalDatabase):
            session = self.session(db_class)
            plan = session.explain_plan("retrieve (f.name)")
            info = plan["variables"]["f"]
            assert info["plan"] in ("naive", "index", "columnar"), db_class
            assert info["estimated_rows"] >= 0
