"""Unit tests for the TQuel lexer."""

import pytest

from repro.errors import TQuelSyntaxError
from repro.tquel.lexer import Lexer, TokenType, tokenize


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive(self):
        assert kinds("RETRIEVE Retrieve retrieve") == [
            (TokenType.KEYWORD, "retrieve")] * 3

    def test_identifiers(self):
        assert kinds("faculty f1 _x") == [
            (TokenType.IDENT, "faculty"),
            (TokenType.IDENT, "f1"),
            (TokenType.IDENT, "_x"),
        ]

    def test_keyword_vs_identifier(self):
        # 'ranged' is an identifier even though it starts with 'range'.
        assert kinds("ranged")[0] == (TokenType.IDENT, "ranged")

    def test_paper_query_tokens(self):
        source = 'retrieve (f.rank) where f.name = "Merrie"'
        values = [t.value for t in tokenize(source)[:-1]]
        assert values == ["retrieve", "(", "f", ".", "rank", ")", "where",
                          "f", ".", "name", "=", "Merrie"]


class TestStrings:
    def test_string_literal(self):
        assert kinds('"Merrie"') == [(TokenType.STRING, "Merrie")]

    def test_date_string(self):
        assert kinds('"12/10/82"') == [(TokenType.STRING, "12/10/82")]

    def test_escapes(self):
        assert kinds(r'"a\"b"') == [(TokenType.STRING, 'a"b')]
        assert kinds(r'"a\\b"') == [(TokenType.STRING, "a\\b")]

    def test_unterminated_string(self):
        with pytest.raises(TQuelSyntaxError, match="unterminated"):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(TQuelSyntaxError):
            tokenize('"line\nbreak"')


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_float(self):
        assert kinds("4.25") == [(TokenType.NUMBER, "4.25")]

    def test_dot_not_swallowed(self):
        # 'f.rank' is ident dot ident, not a float.
        assert kinds("f.rank")[1] == (TokenType.SYMBOL, ".")


class TestSymbols:
    def test_two_char_symbols(self):
        assert kinds("!= <= >=") == [(TokenType.SYMBOL, "!="),
                                     (TokenType.SYMBOL, "<="),
                                     (TokenType.SYMBOL, ">=")]

    def test_maximal_munch(self):
        assert kinds("<=") == [(TokenType.SYMBOL, "<=")]
        assert kinds("< =") == [(TokenType.SYMBOL, "<"),
                                (TokenType.SYMBOL, "=")]

    def test_unexpected_character(self):
        with pytest.raises(TQuelSyntaxError, match="unexpected"):
            tokenize("@")


class TestCommentsAndPositions:
    def test_hash_comment(self):
        assert kinds("retrieve # comment\n(") == [
            (TokenType.KEYWORD, "retrieve"), (TokenType.SYMBOL, "(")]

    def test_block_comment(self):
        assert kinds("a /* hidden */ b") == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(TQuelSyntaxError, match="comment"):
            tokenize("/* oops")

    def test_positions(self):
        tokens = tokenize("range of\n  f")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (1, 7)
        assert (tokens[2].line, tokens[2].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("\n\n  @")
        except TQuelSyntaxError as error:
            assert error.line == 3 and error.column == 3
        else:  # pragma: no cover
            pytest.fail("expected an error")

    def test_token_helpers(self):
        token = tokenize("retrieve")[0]
        assert token.is_keyword("retrieve")
        assert not token.is_keyword("range")
        assert not token.is_symbol("(")
