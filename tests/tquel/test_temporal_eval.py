"""Direct unit tests for temporal expression/predicate evaluation."""

import pytest

from repro.errors import TQuelSemanticError
from repro.time import Instant, NEG_INF, POS_INF, Period
from repro.tquel.ast import (TConst, TEndOf, TExtend, TNow, TOverlap,
                             TPAnd, TPCompare, TPNot, TPOr, TStartOf, TVar)
from repro.tquel.evaluator import (eval_bound, eval_period,
                                   eval_temporal_predicate)

NOW = Instant.parse("06/01/83")
PERIODS = {
    "f": Period("01/01/80", "01/01/82"),
    "g": Period("06/01/81", "forever"),
}


class TestEvalPeriod:
    def test_variable(self):
        assert eval_period(TVar("f"), PERIODS, NOW) == PERIODS["f"]

    def test_constant_is_single_chronon(self):
        period = eval_period(TConst("12/15/82"), PERIODS, NOW)
        assert period == Period.at("12/15/82")

    def test_now(self):
        assert eval_period(TNow(), PERIODS, NOW) == Period.at(NOW)

    def test_start_of_and_end_of(self):
        assert eval_period(TStartOf(TVar("f")), PERIODS, NOW) == \
            Period.at("01/01/80")
        end = eval_period(TEndOf(TVar("f")), PERIODS, NOW)
        assert end == Period.at(Instant.parse("01/01/82") - 1)

    def test_end_of_unbounded_raises(self):
        with pytest.raises(TQuelSemanticError, match="unbounded"):
            eval_period(TEndOf(TVar("g")), PERIODS, NOW)

    def test_overlap_intersection(self):
        period = eval_period(TOverlap(TVar("f"), TVar("g")), PERIODS, NOW)
        assert period == Period("06/01/81", "01/01/82")

    def test_overlap_empty_is_none(self):
        disjoint = {"a": Period("01/01/80", "01/01/81"),
                    "b": Period("06/01/82", "01/01/83")}
        assert eval_period(TOverlap(TVar("a"), TVar("b")),
                           disjoint, NOW) is None

    def test_none_propagates(self):
        disjoint = {"a": Period("01/01/80", "01/01/81"),
                    "b": Period("06/01/82", "01/01/83")}
        assert eval_period(TStartOf(TOverlap(TVar("a"), TVar("b"))),
                           disjoint, NOW) is None

    def test_extend_cover(self):
        period = eval_period(TExtend(TVar("f"), TConst("06/01/83")),
                             PERIODS, NOW)
        assert period == Period("01/01/80", Instant.parse("06/01/83") + 1)

    def test_forever_rejected_outside_bounds(self):
        with pytest.raises(TQuelSemanticError, match="bound"):
            eval_period(TConst("forever"), PERIODS, NOW)


class TestEvalBound:
    def test_plain_bound_is_start(self):
        assert eval_bound(TConst("12/15/82"), PERIODS, NOW) == \
            Instant.parse("12/15/82")
        assert eval_bound(TVar("f"), PERIODS, NOW) == Instant.parse("01/01/80")

    def test_end_of_resolves_to_exclusive_end(self):
        assert eval_bound(TEndOf(TVar("f")), PERIODS, NOW) == \
            Instant.parse("01/01/82")

    def test_end_of_unbounded_is_forever(self):
        assert eval_bound(TEndOf(TVar("g")), PERIODS, NOW) is POS_INF

    def test_infinity_tokens(self):
        assert eval_bound(TConst("forever"), PERIODS, NOW) is POS_INF
        assert eval_bound(TConst("beginning"), PERIODS, NOW) is NEG_INF

    def test_empty_overlap_is_none(self):
        disjoint = {"a": Period("01/01/80", "01/01/81"),
                    "b": Period("06/01/82", "01/01/83")}
        assert eval_bound(TOverlap(TVar("a"), TVar("b")),
                          disjoint, NOW) is None


class TestEvalPredicate:
    def check(self, predicate):
        return eval_temporal_predicate(predicate, PERIODS, NOW)

    def test_compare_operators(self):
        assert self.check(TPCompare("overlap", TVar("f"), TVar("g")))
        assert not self.check(TPCompare("precede", TVar("f"), TVar("g")))
        assert self.check(TPCompare("equal", TVar("f"), TVar("f")))

    def test_boolean_combinators(self):
        overlap = TPCompare("overlap", TVar("f"), TVar("g"))
        precede = TPCompare("precede", TVar("f"), TVar("g"))
        assert self.check(TPAnd(overlap, TPNot(precede)))
        assert self.check(TPOr(precede, overlap))
        assert not self.check(TPAnd(overlap, precede))

    def test_empty_operand_makes_compare_false(self):
        disjoint = {"a": Period("01/01/80", "01/01/81"),
                    "b": Period("06/01/82", "01/01/83")}
        predicate = TPCompare("overlap", TOverlap(TVar("a"), TVar("b")),
                              TVar("a"))
        assert not eval_temporal_predicate(predicate, disjoint, NOW)

    def test_extended_operators(self):
        inner = {"big": Period("01/01/80", "01/01/85"),
                 "small": Period("06/01/81", "06/01/82")}
        assert eval_temporal_predicate(
            TPCompare("during", TVar("small"), TVar("big")), inner, NOW)
        assert not eval_temporal_predicate(
            TPCompare("during", TVar("big"), TVar("small")), inner, NOW)
        assert eval_temporal_predicate(
            TPCompare("meets", TConst("12/31/79"), TVar("big")), inner, NOW)
