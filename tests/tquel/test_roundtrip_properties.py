"""Property-based tests: parse/unparse round-trips over generated TQuel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tquel import parse, unparse

identifiers = st.sampled_from(["f", "f1", "f2", "g"])
attributes = st.sampled_from(["name", "rank", "salary"])
strings = st.text(alphabet="abcXYZ019 /", min_size=0, max_size=8)
numbers = st.integers(min_value=0, max_value=9999)


@st.composite
def scalar_exprs(draw, depth=2):
    """Concrete-syntax scalar expressions."""
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return f"{draw(identifiers)}.{draw(attributes)}"
        if choice == 1:
            value = draw(strings).replace("\\", "").replace('"', "")
            return f'"{value}"'
        return str(draw(numbers))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = draw(scalar_exprs(depth=depth - 1))
    right = draw(scalar_exprs(depth=depth - 1))
    return f"({left} {op} {right})"


@st.composite
def predicates(draw, depth=2):
    comparator = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    base = (f"{draw(scalar_exprs(depth=1))} {comparator} "
            f"{draw(scalar_exprs(depth=1))}")
    if depth == 0 or draw(st.booleans()):
        return base
    connective = draw(st.sampled_from(["and", "or"]))
    other = draw(predicates(depth=depth - 1))
    combined = f"({base} {connective} {other})"
    if draw(st.booleans()):
        return f"not {combined}"
    return combined


@st.composite
def temporal_exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return draw(identifiers)
        if choice == 1:
            return '"12/10/82"'
        return "now"
    form = draw(st.integers(min_value=0, max_value=3))
    inner = draw(temporal_exprs(depth=depth - 1))
    other = draw(temporal_exprs(depth=depth - 1))
    if form == 0:
        return f"start of {inner}"
    if form == 1:
        return f"end of {inner}"
    if form == 2:
        return f"overlap({inner}, {other})"
    return f"extend({inner}, {other})"


@st.composite
def when_clauses(draw):
    op = draw(st.sampled_from(["overlap", "precede", "equal"]))
    return (f"{draw(temporal_exprs(depth=1))} {op} "
            f"{draw(temporal_exprs(depth=1))}")


@st.composite
def retrieves(draw):
    target = f"x = {draw(scalar_exprs())}"
    clauses = [f"retrieve ({target})"]
    if draw(st.booleans()):
        clauses.append(f"where {draw(predicates())}")
    if draw(st.booleans()):
        clauses.append(f"when {draw(when_clauses())}")
    if draw(st.booleans()):
        clauses.append(f"valid from {draw(temporal_exprs(depth=1))}")
    if draw(st.booleans()):
        clauses.append('as of "12/10/82"')
    return " ".join(clauses)


class TestRoundTrip:
    @given(retrieves())
    @settings(max_examples=150, deadline=None)
    def test_parse_unparse_parse_fixpoint(self, source):
        statement = parse(source)
        assert parse(unparse(statement)) == statement

    @given(retrieves())
    @settings(max_examples=100, deadline=None)
    def test_unparse_is_stable(self, source):
        once = unparse(parse(source))
        assert unparse(parse(once)) == once

    @given(scalar_exprs())
    @settings(max_examples=100, deadline=None)
    def test_expressions_roundtrip_inside_targets(self, expr_source):
        source = f"retrieve (x = {expr_source})"
        statement = parse(source)
        assert parse(unparse(statement)) == statement
