"""Unit tests for Session.explain / Evaluator.explain."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import TQuelSemanticError
from repro.tquel import Session

from tests.conftest import build_faculty


def session_for(db_class):
    database, _ = build_faculty(db_class)
    session = Session(database)
    session.execute("range of f is faculty")
    session.execute("range of f1 is faculty")
    session.execute("range of f2 is faculty")
    return session


class TestExplain:
    def test_shows_pushdown_effect(self):
        session = session_for(StaticDatabase)
        text = session.explain('retrieve (f.rank) where f.name = "Merrie"')
        assert "f over faculty: 2 candidates -> 1, 1 conjunct(s) pushed" in text
        assert "static result" in text

    def test_join_product_size(self):
        session = session_for(StaticDatabase)
        text = session.explain(
            'retrieve (a = f1.name, b = f2.name) where f1.rank = f2.rank')
        assert "product of 4 combination(s)" in text
        assert "1 residual conjunct(s)" in text

    def test_temporal_clauses_reported(self):
        session = session_for(TemporalDatabase)
        text = session.explain(
            'retrieve (f1.rank) when f1 overlap f2 as of "12/10/82"')
        assert "temporal result" in text
        assert "when" in text
        assert "as of 1982-12-10" in text

    def test_through_reported(self):
        session = session_for(RollbackDatabase)
        text = session.explain(
            'retrieve (f.name) as of "12/02/82" through "12/20/82"')
        assert "through 1982-12-20" in text

    def test_historical_candidates_are_facts(self):
        session = session_for(HistoricalDatabase)
        text = session.explain("retrieve (f.name)")
        # Figure 6 has four fact rows.
        assert "4 candidates" in text
        assert "historical result" in text

    def test_aggregate_result_kind(self):
        session = session_for(StaticDatabase)
        text = session.explain("retrieve (n = count(f.name))")
        assert "static (aggregate) result" in text

    def test_explain_is_side_effect_free(self):
        session = session_for(StaticDatabase)
        before = len(session.database.log)
        session.explain('retrieve (f.rank) where f.name = "Merrie"')
        assert len(session.database.log) == before

    def test_explain_still_enforces_taxonomy(self):
        session = session_for(StaticDatabase)
        with pytest.raises(TQuelSemanticError, match="transaction time"):
            session.explain('retrieve (f.rank) as of "12/10/82"')

    def test_only_retrieve_explained(self):
        session = session_for(StaticDatabase)
        with pytest.raises(Exception):
            session.explain("delete f")
