"""Unit tests for the analyzer — the taxonomy as a type system."""

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import TQuelSemanticError
from repro.time import SimulatedClock
from repro.tquel.analyzer import analyze
from repro.tquel.parser import parse

from tests.conftest import faculty_schema


def make(db_class):
    database = db_class(clock=SimulatedClock("01/01/80"))
    database.define("faculty", faculty_schema())
    return database

RANGES = {"f": "faculty", "f1": "faculty", "f2": "faculty"}


def check(db_class, source, ranges=RANGES):
    analyze(parse(source), make(db_class), ranges)


def rejected(db_class, source, match, ranges=RANGES):
    with pytest.raises(TQuelSemanticError, match=match):
        check(db_class, source, ranges)


class TestTaxonomyEnforcement:
    """Figure 11 enforced statically, with the database kind in the message."""

    def test_as_of_rejected_on_static(self):
        rejected(StaticDatabase,
                 'retrieve (f.rank) as of "12/10/82"', "static database")

    def test_as_of_rejected_on_historical(self):
        rejected(HistoricalDatabase,
                 'retrieve (f.rank) as of "12/10/82"', "historical database")

    def test_as_of_allowed_on_rollback_and_temporal(self):
        check(RollbackDatabase, 'retrieve (f.rank) as of "12/10/82"')
        check(TemporalDatabase, 'retrieve (f.rank) as of "12/10/82"')

    def test_when_rejected_on_static(self):
        rejected(StaticDatabase,
                 "retrieve (f1.rank) when f1 overlap f2", "static database")

    def test_when_rejected_on_rollback(self):
        rejected(RollbackDatabase,
                 "retrieve (f1.rank) when f1 overlap f2",
                 "static rollback database")

    def test_when_allowed_on_historical_and_temporal(self):
        check(HistoricalDatabase, "retrieve (f1.rank) when f1 overlap f2")
        check(TemporalDatabase, "retrieve (f1.rank) when f1 overlap f2")

    def test_valid_rejected_on_static_and_rollback(self):
        rejected(StaticDatabase,
                 'retrieve (f.rank) valid from "01/01/80"', "valid time")
        rejected(RollbackDatabase,
                 'retrieve (f.rank) valid from "01/01/80"', "valid time")

    def test_valid_clause_on_append_rejected_for_static(self):
        rejected(StaticDatabase,
                 'append to faculty (name = "A", rank = "full") '
                 'valid from "01/01/80"', "valid time")

    def test_append_without_valid_rejected_for_historical(self):
        rejected(HistoricalDatabase,
                 'append to faculty (name = "A", rank = "full")',
                 "requires a valid clause")

    def test_event_create_rejected_on_static(self):
        rejected(StaticDatabase, "create event p (name = string)",
                 "valid time")


class TestVariableAndAttributeChecks:
    def test_undeclared_range_variable(self):
        rejected(StaticDatabase, "retrieve (g.rank)", "not declared")

    def test_unknown_attribute(self):
        rejected(StaticDatabase, "retrieve (f.salary)", "no attribute")

    def test_unqualified_reference_rejected(self):
        rejected(StaticDatabase, "retrieve (x = rank)", "qualified")

    def test_unknown_relation_in_range(self):
        rejected(StaticDatabase, "range of x is nowhere", "unknown relation")

    def test_tvar_must_be_declared(self):
        rejected(HistoricalDatabase,
                 "retrieve (f1.rank) when g overlap f1", "not declared")

    def test_as_of_cannot_reference_variables(self):
        rejected(TemporalDatabase, "retrieve (f.rank) as of start of f",
                 "not allowed")

    def test_update_valid_must_be_constant(self):
        rejected(HistoricalDatabase,
                 'delete f valid from start of f', "not allowed")

    def test_bad_date_literal_in_temporal_expr(self):
        rejected(TemporalDatabase,
                 'retrieve (f.rank) as of "13/45/99"', "invalid date")

    def test_delete_where_other_variable_rejected(self):
        rejected(StaticDatabase, 'delete f where f2.rank = "full"',
                 "only 'f'")


class TestRetrieveChecks:
    def test_duplicate_target_names(self):
        rejected(StaticDatabase, "retrieve (f.rank, f.rank)", "duplicate")

    def test_into_existing_relation(self):
        rejected(StaticDatabase, "retrieve into faculty (f.rank)",
                 "already exists")

    def test_sort_by_unknown_target(self):
        rejected(StaticDatabase, "retrieve (f.rank) sort by name",
                 "not a target")

    def test_aggregate_mixed_with_when_rejected(self):
        rejected(HistoricalDatabase,
                 "retrieve (n = count(f1.name)) when f1 overlap f2",
                 "aggregate")

    def test_nested_aggregate_rejected(self):
        rejected(StaticDatabase, "retrieve (x = count(f.name) + 1)",
                 "top level")


class TestUpdateChecks:
    def test_append_unknown_attribute(self):
        rejected(StaticDatabase,
                 'append to faculty (name = "A", rank = "full", age = 3)',
                 "no attribute")

    def test_append_missing_attribute(self):
        rejected(StaticDatabase, 'append to faculty (name = "A")', "misses")

    def test_append_attribute_twice(self):
        rejected(StaticDatabase,
                 'append to faculty (name = "A", name = "B", rank = "full")',
                 "twice")

    def test_append_values_must_be_constant(self):
        rejected(StaticDatabase,
                 'append to faculty (name = f.name, rank = "full")',
                 "constant")

    def test_replace_unknown_attribute(self):
        rejected(StaticDatabase, 'replace f (salary = 3)', "no attribute")

    def test_create_duplicate_relation(self):
        rejected(StaticDatabase, "create faculty (name = string)",
                 "already exists")

    def test_create_duplicate_attributes(self):
        rejected(StaticDatabase, "create r (a = string, a = integer)",
                 "duplicate")

    def test_create_key_not_declared(self):
        rejected(StaticDatabase, "create r (a = string) key (b)",
                 "not declared")

    def test_destroy_unknown(self):
        rejected(StaticDatabase, "destroy nowhere", "unknown")


class TestEventRelationChecks:
    def make_with_event(self, db_class):
        database = make(db_class)
        from repro.relational import Domain, Schema
        database.define("promotion", Schema.of(name=Domain.STRING),
                        event=True)
        return database

    def test_event_append_requires_valid_at(self):
        database = self.make_with_event(HistoricalDatabase)
        with pytest.raises(TQuelSemanticError, match="valid at"):
            analyze(parse('append to promotion (name = "M") '
                          'valid from "01/01/80"'), database, {})

    def test_interval_append_rejects_valid_at(self):
        database = make(HistoricalDatabase)
        with pytest.raises(TQuelSemanticError, match="interval relation"):
            analyze(parse('append to faculty (name = "M", rank = "full") '
                          'valid at "01/01/80"'), database, {})

    def test_event_append_accepted(self):
        database = self.make_with_event(TemporalDatabase)
        analyze(parse('append to promotion (name = "M") valid at "01/01/80"'),
                database, {})
