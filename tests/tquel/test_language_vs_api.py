"""Property tests: TQuel queries agree with the direct Python API.

For randomly generated stores and simple queries, the language must give
exactly the answer the algebra gives — the evaluator is a convenience,
never a different semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HistoricalDatabase, StaticDatabase, TemporalDatabase
from repro.relational import Domain, Schema, attr
from repro.time import Instant, SimulatedClock
from repro.tquel import Session

BASE = Instant.parse("01/01/80").chronon

names = st.sampled_from(["a", "b", "c", "d"])
grades = st.integers(min_value=0, max_value=3)
static_rows = st.lists(st.tuples(names, grades), max_size=8)


@st.composite
def historical_facts(draw):
    facts = []
    used = set()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        name = draw(names.filter(lambda n: n not in used))
        used.add(name)
        start = draw(st.integers(min_value=0, max_value=30))
        length = draw(st.integers(min_value=1, max_value=20))
        facts.append((name, draw(grades), start, start + length))
    return facts


def static_db(rows):
    database = StaticDatabase(clock=SimulatedClock(BASE))
    database.define("r", Schema.of(name=Domain.STRING, grade=Domain.INTEGER))
    for name, grade in dict(rows).items():  # dedup names to one row each
        database.insert("r", {"name": name, "grade": grade})
    return database


def session_over(database):
    session = Session(database)
    session.execute("range of v is r")
    return session


class TestStaticAgreement:
    @given(static_rows, grades)
    @settings(max_examples=60, deadline=None)
    def test_select_project(self, rows, threshold):
        database = static_db(rows)
        session = session_over(database)
        via_language = session.query(
            f"retrieve (v.name) where v.grade >= {threshold}")
        via_api = database.snapshot("r").select(
            attr("grade") >= threshold).project(["name"])
        assert via_language == via_api

    @given(static_rows)
    @settings(max_examples=40, deadline=None)
    def test_count_agreement(self, rows):
        database = static_db(rows)
        session = session_over(database)
        via_language = session.query("retrieve (n = count(v.name))")
        assert via_language.to_dicts() == [
            {"n": database.snapshot("r").cardinality}]

    @given(static_rows, grades)
    @settings(max_examples=40, deadline=None)
    def test_delete_agreement(self, rows, threshold):
        db_language = static_db(rows)
        db_api = static_db(rows)
        session = session_over(db_language)
        session.execute(f"delete v where v.grade >= {threshold}")
        db_api.delete_where("r", attr("grade") >= threshold)
        assert db_language.snapshot("r") == db_api.snapshot("r")


class TestHistoricalAgreement:
    def build(self, db_class, facts):
        database = db_class(clock=SimulatedClock(BASE - 10))
        database.define("r", Schema.of(key=["name"], name=Domain.STRING,
                                       grade=Domain.INTEGER))
        clock = database.manager.clock.source
        for name, grade, start, end in facts:
            clock.advance(1)
            database.insert("r", {"name": name, "grade": grade},
                            valid_from=Instant.from_chronon(BASE + start),
                            valid_to=Instant.from_chronon(BASE + end))
        return database

    @given(historical_facts(), st.integers(min_value=-5, max_value=55))
    @settings(max_examples=60, deadline=None)
    def test_when_overlap_constant_is_timeslice(self, facts, probe_offset):
        database = self.build(HistoricalDatabase, facts)
        session = session_over(database)
        probe = Instant.from_chronon(BASE + probe_offset)
        via_language = session.query(
            f'retrieve (v.name) when v overlap "{probe.isoformat()}" '
            "valid from start of v")
        data_names = {row.data["name"] for row in via_language.rows}
        api_names = set(database.timeslice("r", probe).column("name"))
        assert data_names == api_names

    @given(historical_facts())
    @settings(max_examples=40, deadline=None)
    def test_temporal_and_historical_agree_via_language(self, facts):
        historical_session = session_over(
            self.build(HistoricalDatabase, facts))
        temporal_session = session_over(self.build(TemporalDatabase, facts))
        query = "retrieve (v.name, v.grade)"
        historical_result = historical_session.query(query)
        temporal_result = temporal_session.query(query)
        assert frozenset(
            (row.data, row.valid) for row in historical_result.rows
        ) == frozenset(
            (row.data, row.valid) for row in temporal_result.rows)
