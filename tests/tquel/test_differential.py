"""Differential proof: plan choice never changes results.

Every query here runs once under each forced access path (``naive``,
``index``, ``columnar``) and once under ``auto``, and the canonical row
sets must be identical.  The workloads are seeded-random histories and
seeded-random query shapes across all four database kinds, plus the
paper's §4 faculty queries — and the whole module runs twice, once with
NumPy kernels and once with the pure-Python fallback, because CI has no
numpy and the two kernel shapes owe the same answers.
"""

import random

import pytest

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase, columnar)
from repro.relational import Domain, Schema
from repro.time import Instant, SimulatedClock
from repro.tquel import Session

from tests.conftest import build_faculty

MODES = ("naive", "index", "columnar", "auto")
BASE = Instant.parse("01/01/80")


@pytest.fixture(params=["numpy", "python"])
def kernels(request, monkeypatch):
    if request.param == "python":
        monkeypatch.setattr(columnar, "_np", None)
    elif columnar._np is None:
        pytest.skip("numpy not installed in this environment")
    return request.param


def canonical(result):
    """Order-insensitive fingerprint of a query result.

    Snapshot results are plain relations of ``Tuple`` mappings;
    temporal flavors carry ``.rows`` of period-stamped rows.
    """
    rows = getattr(result, "rows", None)
    if rows is None:
        return sorted((tuple(sorted(row.items())), None, None)
                      for row in result)
    return sorted(
        (tuple(sorted(row.data.items())),
         str(getattr(row, "valid", None)),
         str(getattr(row, "tt", None)))
        for row in rows)


def assert_plans_agree(build_database, statements, query):
    """Run *query* under every plan mode on a fresh database each time."""
    reference = None
    for mode in MODES:
        database, clock = build_database()
        session = Session(database, plan=mode)
        for statement in statements:
            session.execute(statement)
        rows = canonical(session.query(query))
        if reference is None:
            reference = (rows, mode)
        else:
            assert rows == reference[0], (
                f"plan {mode!r} disagrees with {reference[1]!r} "
                f"on {query!r}")


def random_history(rng, db_class, keys=12, commits=60):
    """A seeded insert/replace/delete narrative over *keys* entities."""
    clock = SimulatedClock(BASE)
    database = db_class(clock=clock)
    database.define("facts", Schema.of(key=["k"], k=Domain.STRING,
                                       v=Domain.STRING))
    historical = database.kind.supports_historical_queries

    def args(step):
        # Valid times advance in lockstep with the clock: any jitter
        # can overlap per-key valid periods across consecutive commits
        # (a sequenced key violation).  Retro/proactive shapes are
        # exercised by the faculty fixtures instead.
        if not historical:
            return {}
        return {"valid_from": BASE + step}

    live = set()
    for step in range(commits):
        clock.set(BASE + step)
        key = f"k{rng.randrange(keys)}"
        action = rng.random()
        if key not in live:
            database.insert("facts", {"k": key, "v": f"v{step}"},
                            **args(step))
            live.add(key)
        elif action < 0.6:
            database.replace("facts", {"k": key}, {"v": f"v{step}"},
                             **args(step))
        else:
            database.delete("facts", {"k": key}, **args(step))
            live.discard(key)
    clock.set(BASE + commits + 5)
    return database, clock


def random_query(rng, database, keys=12, commits=60):
    """A seeded retrieve whose clauses match the database's kind."""
    target = "(f.k, f.v)" if rng.random() < 0.5 else "(f.v)"
    parts = [f"retrieve {target}"]
    if rng.random() < 0.5:
        parts.append(f'where f.k = "k{rng.randrange(keys)}"')
    kind = database.kind
    if kind.supports_historical_queries and rng.random() < 0.6:
        probe = BASE + rng.randrange(commits + 5)
        op = rng.choice(["overlap", "precede", "meets", "before", "after",
                         "during", "equal", "starts", "finishes"])
        parts.append(f'when f {op} "{probe}"')
    if kind.supports_rollback and rng.random() < 0.6:
        pin = BASE + rng.randrange(commits + 5)
        if rng.random() < 0.3:
            parts.append(f'as of "{pin}" through "{pin + 10}"')
        else:
            parts.append(f'as of "{pin}"')
    return " ".join(parts)


KINDS = (StaticDatabase, RollbackDatabase, HistoricalDatabase,
         TemporalDatabase)


class TestRandomizedDifferential:
    @pytest.mark.parametrize("db_class", KINDS,
                             ids=[c.__name__ for c in KINDS])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_queries_agree_across_plans(self, kernels, db_class,
                                               seed):
        statements = ["range of f is facts"]
        query_rng = random.Random(2000 + seed)
        queries = [random_query(query_rng,
                                random_history(random.Random(1000 + seed),
                                               db_class)[0])
                   for _ in range(5)]
        for query in queries:
            assert_plans_agree(
                lambda: random_history(random.Random(1000 + seed),
                                       db_class),
                statements, query)

    def test_plan_sessions_share_one_database(self, kernels):
        # Same database object, four sessions: caches warmed by one
        # plan must not leak wrong rows into another.
        database, _ = random_history(random.Random(7), TemporalDatabase)
        query = ('retrieve (f.k, f.v) where f.k = "k3" '
                 f'as of "{BASE + 30}"')
        reference = None
        for mode in MODES:
            session = Session(database, plan=mode)
            session.execute("range of f is facts")
            rows = canonical(session.query(query))
            if reference is None:
                reference = rows
            else:
                assert rows == reference, mode


class TestFacultyDifferential:
    """The paper's §4 queries, plan-for-plan identical."""

    QUERIES = {
        TemporalDatabase: [
            "retrieve (f.name, f.rank)",
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"',
            'retrieve (f.name) as of "12/10/82" through "12/20/82"',
            'retrieve (f.name) when f overlap "06/01/80"',
            'retrieve (f.name, f.rank) when f during '
            '"01/01/83" as of "01/15/83"',
            'retrieve (f.rank) where f.name = "Tom" when f meets '
            '"12/05/82"',
        ],
        HistoricalDatabase: [
            "retrieve (f.name, f.rank)",
            'retrieve (f.name) when f overlap "06/01/80"',
            'retrieve (f.rank) where f.name = "Merrie" when f starts '
            '"12/01/82"',
        ],
        RollbackDatabase: [
            "retrieve (f.name, f.rank)",
            'retrieve (f.rank) where f.name = "Tom" as of "12/10/82"',
            'retrieve (f.name) as of "12/02/82" through "12/20/82"',
        ],
        StaticDatabase: [
            "retrieve (f.name, f.rank)",
            'retrieve (f.rank) where f.name = "Tom"',
        ],
    }

    @pytest.mark.parametrize("db_class", KINDS,
                             ids=[c.__name__ for c in KINDS])
    def test_faculty_queries_agree_across_plans(self, kernels, db_class):
        for query in self.QUERIES[db_class]:
            assert_plans_agree(lambda: build_faculty(db_class),
                               ["range of f is faculty"], query)

    def test_two_variable_product_agrees(self, kernels):
        query = ('retrieve (f1.name) where f1.rank = f2.rank and '
                 'f2.name = "Tom" when f1 overlap start of f2')
        assert_plans_agree(
            lambda: build_faculty(TemporalDatabase),
            ["range of f1 is faculty", "range of f2 is faculty"], query)

    def test_now_dependent_when_agrees(self, kernels):
        assert_plans_agree(lambda: build_faculty(TemporalDatabase),
                           ["range of f is faculty"],
                           "retrieve (f.name) when f overlap now")
