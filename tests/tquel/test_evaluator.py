"""Unit tests for the TQuel evaluator across all four database kinds."""

import pytest

from repro.core import (HistoricalDatabase, HistoricalRelation,
                        RollbackDatabase, StaticDatabase, TemporalDatabase,
                        TemporalRelation)
from repro.errors import TQuelSemanticError
from repro.relational import Relation
from repro.time import Instant, Period, SimulatedClock
from repro.tquel import Session

from tests.conftest import build_faculty


def session_for(db_class, **kwargs):
    database, clock = build_faculty(db_class, **kwargs)
    session = Session(database)
    session.execute("range of f is faculty")
    session.execute("range of f1 is faculty")
    session.execute("range of f2 is faculty")
    return session, clock


class TestStaticRetrieve:
    def test_result_is_static_relation(self):
        session, _ = session_for(StaticDatabase)
        result = session.query('retrieve (f.rank) where f.name = "Merrie"')
        assert isinstance(result, Relation)
        assert result.to_dicts() == [{"rank": "full"}]

    def test_projection_collapses_duplicates(self):
        session, _ = session_for(StaticDatabase)
        session.execute('append to faculty (name = "Another", rank = "full")')
        result = session.query("retrieve (f.rank)")
        assert result.cardinality == 2  # full, associate

    def test_multi_variable_join(self):
        session, _ = session_for(StaticDatabase)
        result = session.query(
            "retrieve (a = f1.name, b = f2.name) where f1.rank = f2.rank "
            'and f1.name != f2.name')
        assert result.is_empty  # everyone has a distinct rank now

    def test_constant_target(self):
        session, _ = session_for(StaticDatabase)
        result = session.query('retrieve (who = f.name, marker = 1)')
        assert all(row["marker"] == 1 for row in result)

    def test_sort_by(self):
        session, _ = session_for(StaticDatabase)
        result = session.query("retrieve (f.name) sort by name")
        assert result.column("name") == ["Merrie", "Tom"]

    def test_into_materializes(self):
        session, _ = session_for(StaticDatabase)
        session.execute('retrieve into full_profs (f.name) '
                        'where f.rank = "full"')
        assert "full_profs" in session.database
        result = session.query("range of p is full_profs") \
            if False else session.database.snapshot("full_profs")
        assert result.column("name") == ["Merrie"]


class TestRollbackRetrieve:
    def test_as_of_query(self):
        session, _ = session_for(RollbackDatabase)
        result = session.query(
            'retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"')
        assert isinstance(result, Relation)
        assert result.to_dicts() == [{"rank": "associate"}]

    def test_without_as_of_uses_current(self):
        session, _ = session_for(RollbackDatabase)
        result = session.query('retrieve (f.rank) where f.name = "Merrie"')
        assert result.to_dicts() == [{"rank": "full"}]

    def test_as_of_now(self):
        session, _ = session_for(RollbackDatabase)
        result = session.query(
            'retrieve (f.rank) where f.name = "Merrie" as of now')
        assert result.to_dicts() == [{"rank": "full"}]

    def test_as_of_before_everything(self):
        session, _ = session_for(RollbackDatabase)
        result = session.query('retrieve (f.name) as of "01/01/70"')
        assert result.is_empty


class TestHistoricalRetrieve:
    def test_result_is_historical_relation(self):
        session, _ = session_for(HistoricalDatabase)
        result = session.query('retrieve (f.rank) where f.name = "Merrie"')
        assert isinstance(result, HistoricalRelation)

    def test_paper_when_query(self):
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (f1.rank) where f1.name = "Merrie" and '
            'f2.name = "Tom" when f1 overlap start of f2')
        assert len(result) == 1
        row = result.rows[0]
        assert row.data["rank"] == "full"
        assert row.valid == Period("12/01/82", "forever")

    def test_default_validity_is_target_variable_period(self):
        # Only f1 appears in the target list, so the derived validity is
        # f1's period, not its intersection with f2's.
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (f1.name) where f2.name = "Mike" when f1 overlap f2')
        for row in result.rows:
            assert row.valid.end.is_pos_inf or \
                row.valid.end == Instant.parse("03/01/84")

    def test_explicit_valid_clause(self):
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (f.rank) where f.name = "Merrie" '
            'valid from "01/01/83" to "01/01/84"')
        assert all(row.valid == Period("01/01/83", "01/01/84")
                   for row in result.rows)

    def test_valid_clause_with_variable(self):
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (f.rank) where f.name = "Tom" '
            'valid from start of f to forever')
        assert result.rows[0].valid == Period("12/05/82", "forever")

    def test_when_precede(self):
        # With `precede` the operand periods are disjoint, so the *default*
        # derived validity (their intersection) would be empty; an explicit
        # valid clause is required, exactly as in TQuel.
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (early = f1.name, late = f2.name) '
            'when f1 precede f2 valid from start of f1 to forever')
        pairs = {(row.data["early"], row.data["late"])
                 for row in result.rows}
        # Merrie-associate [77..82) precedes Tom [82..) and Mike [83..84).
        assert ("Merrie", "Tom") in pairs
        assert ("Merrie", "Mike") in pairs

    def test_when_precede_default_validity_is_empty(self):
        session, _ = session_for(HistoricalDatabase)
        result = session.query(
            'retrieve (early = f1.name, late = f2.name) when f1 precede f2')
        assert result.is_empty

    def test_derived_relation_queryable_again(self):
        # Closure: retrieve into a new relation, then query it historically.
        session, _ = session_for(HistoricalDatabase)
        session.execute('retrieve into merrie_history (f.rank) '
                        'where f.name = "Merrie"')
        session.execute("range of m is merrie_history")
        result = session.query('retrieve (m.rank) when m overlap "06/01/80"')
        assert {row.data["rank"] for row in result.rows} == {"associate"}

    def test_empty_intersection_filters_row(self):
        session, _ = session_for(HistoricalDatabase)
        # Merrie's associate period and Mike's period never overlap, so a
        # two-variable target over them yields only overlapping pairs.
        result = session.query(
            'retrieve (a = f1.rank, b = f2.name) where f1.name = "Merrie" '
            'and f2.name = "Mike"')
        for row in result.rows:
            assert row.data["a"] == "full"  # associate ∩ Mike = ∅


class TestTemporalRetrieve:
    def test_result_is_temporal_relation(self):
        session, _ = session_for(TemporalDatabase)
        result = session.query('retrieve (f.rank) where f.name = "Merrie"')
        assert isinstance(result, TemporalRelation)

    def test_paper_bitemporal_query_as_of_12_10(self):
        session, _ = session_for(TemporalDatabase)
        result = session.query(
            'retrieve (f1.rank) where f1.name = "Merrie" and '
            'f2.name = "Tom" when f1 overlap start of f2 as of "12/10/82"')
        assert len(result) == 1
        row = result.rows[0]
        assert row.data["rank"] == "associate"
        assert row.valid == Period("09/01/77", "forever")
        assert row.tt == Period("08/25/77", "12/15/82")  # kept, not clipped

    def test_paper_bitemporal_query_as_of_12_20(self):
        session, _ = session_for(TemporalDatabase)
        result = session.query(
            'retrieve (f1.rank) where f1.name = "Merrie" and '
            'f2.name = "Tom" when f1 overlap start of f2 as of "12/20/82"')
        assert [row.data["rank"] for row in result.rows] == ["full"]

    def test_default_as_of_now(self):
        session, _ = session_for(TemporalDatabase)
        result = session.query('retrieve (f.rank) where f.name = "Tom"')
        assert [row.data["rank"] for row in result.rows] == ["associate"]

    def test_into_materializes_current_history(self):
        # `retrieve into` on a temporal DB stores the derived data with its
        # valid times; transaction time is restamped at materialization.
        session, _ = session_for(TemporalDatabase)
        session.execute('retrieve into merrie (f.rank) '
                        'where f.name = "Merrie"')
        stored = session.database.history("merrie")
        periods = sorted((row.data["rank"], str(row.valid))
                         for row in stored.rows)
        assert periods == [("associate", "[1977-09-01, 1982-12-01)"),
                           ("full", "[1982-12-01, ∞)")]
        session.execute("range of m is merrie")
        again = session.query('retrieve (m.rank) when m overlap "06/01/80"')
        assert [row.data["rank"] for row in again.rows] == ["associate"]


class TestAggregates:
    def test_count_on_static(self):
        session, _ = session_for(StaticDatabase)
        result = session.query("retrieve (n = count(f.name))")
        assert result.to_dicts() == [{"n": 2}]

    def test_group_by_non_aggregate_targets(self):
        session, _ = session_for(StaticDatabase)
        session.execute('append to faculty (name = "Ann", rank = "full")')
        result = session.query("retrieve (f.rank, n = count(f.name))")
        counts = {row["rank"]: row["n"] for row in result}
        assert counts == {"full": 2, "associate": 1}

    def test_count_unique(self):
        session, _ = session_for(StaticDatabase)
        session.execute('append to faculty (name = "Ann", rank = "full")')
        result = session.query("retrieve (n = count(unique f.rank))")
        assert result.to_dicts() == [{"n": 2}]

    def test_count_empty(self):
        session, _ = session_for(StaticDatabase)
        result = session.query(
            'retrieve (n = count(f.name)) where f.rank = "assistant"')
        assert result.to_dicts() == [{"n": 0}]

    def test_aggregates_on_historical_count_facts(self):
        # Aggregate retrieves on a historical DB range over the recorded
        # facts — every (tuple, validity) row, i.e. the rows of Figure 6.
        session, _ = session_for(HistoricalDatabase)
        result = session.query("retrieve (n = count(f.name))")
        assert result.to_dicts() == [{"n": 4}]  # the 4 rows of Figure 6


class TestUpdatesThroughTQuel:
    def test_append_and_retrieve_roundtrip(self):
        session, clock = session_for(StaticDatabase)
        session.execute('append to faculty (name = "Ann", rank = "full")')
        result = session.query('retrieve (f.rank) where f.name = "Ann"')
        assert result.to_dicts() == [{"rank": "full"}]

    def test_delete_where(self):
        session, _ = session_for(StaticDatabase)
        session.execute('delete f where f.rank = "associate"')
        result = session.query("retrieve (f.name)")
        assert result.column("name") == ["Merrie"]

    def test_delete_all(self):
        session, _ = session_for(StaticDatabase)
        session.execute("delete f")
        assert session.query("retrieve (f.name)").is_empty

    def test_replace_with_computed_expression(self):
        session, _ = session_for(StaticDatabase)
        session.execute('replace f (name = f.name + "!") '
                        'where f.rank = "full"')
        result = session.query("retrieve (f.name) sort by name")
        assert "Merrie!" in result.column("name")

    def test_historical_delete_with_valid_clause(self):
        session, clock = session_for(HistoricalDatabase)
        clock.set("06/01/84")
        session.execute('delete f where f.name = "Tom" '
                        'valid from "01/01/85"')
        history = session.database.history("faculty")
        tom = [row for row in history.rows if row.data["name"] == "Tom"]
        assert [str(row.valid) for row in tom] == ["[1982-12-05, 1985-01-01)"]

    def test_create_with_date_is_user_defined_time(self):
        session, _ = session_for(StaticDatabase)
        session.execute("create letters (who = string, sent = date)")
        schema = session.database.schema("letters")
        assert schema.attribute("sent").domain.is_user_defined_time

    def test_create_and_destroy(self):
        session, _ = session_for(StaticDatabase)
        session.execute("create temp (x = integer)")
        assert "temp" in session.database
        session.execute("destroy temp")
        assert "temp" not in session.database

    def test_string_dates_coerced_into_date_domains(self):
        session, clock = session_for(TemporalDatabase)
        session.execute("create event letters (who = string, sent = date)")
        session.execute('append to letters (who = "M", sent = "12/11/82") '
                        'valid at "12/11/82"')
        rows = session.database.history("letters").rows
        assert rows[0].data["sent"] == Instant.parse("12/11/82")


class TestSessionBehaviour:
    def test_query_on_update_raises(self):
        session, _ = session_for(StaticDatabase)
        with pytest.raises(TypeError):
            session.query('append to faculty (name = "X", rank = "full")')

    def test_render_none(self):
        session, _ = session_for(StaticDatabase)
        assert session.render(None) == "(no result)"

    def test_execute_script(self):
        session, _ = session_for(StaticDatabase)
        results = session.execute_script("""
            create r2 (x = string)
            append to r2 (x = "hello")
            range of r is r2
            retrieve (r.x)
        """)
        assert results[-1].to_dicts() == [{"x": "hello"}]

    def test_ranges_property(self):
        session, _ = session_for(StaticDatabase)
        assert session.ranges["f"] == "faculty"

    def test_show_renders_table(self):
        session, _ = session_for(StaticDatabase)
        text = session.show('retrieve (f.rank) where f.name = "Merrie"')
        assert "full" in text and "|" in text
