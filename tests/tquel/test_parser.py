"""Unit tests for the TQuel parser."""

import pytest

from repro.errors import TQuelSyntaxError
from repro.tquel.ast import (
    AggCall, AppendStmt, CreateStmt, DeleteStmt, DestroyStmt, RangeStmt,
    ReplaceStmt, RetrieveStmt, TConst, TEndOf, TExtend, TNow, TOverlap, TPAnd,
    TPCompare, TPNot, TPOr, TStartOf, TVar,
)
from repro.tquel.parser import parse, parse_script


class TestRange:
    def test_basic(self):
        stmt = parse("range of f is faculty")
        assert stmt == RangeStmt("f", "faculty")

    def test_missing_is(self):
        with pytest.raises(TQuelSyntaxError, match="'is'"):
            parse("range of f faculty")


class TestRetrieve:
    def test_paper_static_query(self):
        stmt = parse('retrieve (f.rank) where f.name = "Merrie"')
        assert isinstance(stmt, RetrieveStmt)
        assert stmt.targets[0].name == "rank"
        assert repr(stmt.where) == "(AttrRef(f.name) = Const('Merrie'))"

    def test_named_target(self):
        stmt = parse("retrieve (position = f.rank)")
        assert stmt.targets[0].name == "position"

    def test_multiple_targets(self):
        stmt = parse("retrieve (f.name, f.rank)")
        assert [t.name for t in stmt.targets] == ["name", "rank"]

    def test_duplicate_target_name_needs_rename(self):
        # Parses fine; the analyzer rejects duplicates.
        stmt = parse("retrieve (a = f.rank, b = f.rank)")
        assert len(stmt.targets) == 2

    def test_constant_target_needs_name(self):
        with pytest.raises(TQuelSyntaxError, match="explicit"):
            parse("retrieve (42)")

    def test_into_and_unique(self):
        stmt = parse("retrieve into result unique (f.rank)")
        assert stmt.into == "result" and stmt.unique

    def test_as_of(self):
        stmt = parse('retrieve (f.rank) as of "12/10/82"')
        assert stmt.as_of == TConst("12/10/82")

    def test_as_of_now(self):
        stmt = parse("retrieve (f.rank) as of now")
        assert stmt.as_of == TNow()

    def test_when_paper_query(self):
        stmt = parse("retrieve (f1.rank) when f1 overlap start of f2")
        assert stmt.when == TPCompare("overlap", TVar("f1"),
                                      TStartOf(TVar("f2")))

    def test_when_boolean_structure(self):
        stmt = parse("retrieve (f1.rank) when f1 overlap f2 "
                     "and not (f1 precede f3 or f1 equal f2)")
        assert isinstance(stmt.when, TPAnd)
        assert isinstance(stmt.when.right, TPNot)
        assert isinstance(stmt.when.right.operand, TPOr)

    def test_when_function_form_operands(self):
        stmt = parse("retrieve (f1.rank) when overlap(f1, f2) precede "
                     "extend(f1, f3)")
        assert stmt.when == TPCompare(
            "precede", TOverlap(TVar("f1"), TVar("f2")),
            TExtend(TVar("f1"), TVar("f3")))

    def test_valid_interval(self):
        stmt = parse('retrieve (f.rank) valid from start of f to "12/31/99"')
        assert stmt.valid.from_ == TStartOf(TVar("f"))
        assert stmt.valid.to == TConst("12/31/99")
        assert not stmt.valid.is_event

    def test_valid_from_forever_bounds(self):
        stmt = parse("retrieve (f.rank) valid from beginning to forever")
        assert stmt.valid.from_ == TConst("beginning")
        assert stmt.valid.to == TConst("forever")

    def test_valid_event(self):
        stmt = parse("retrieve (f.rank) valid at end of f")
        assert stmt.valid.is_event
        assert stmt.valid.at == TEndOf(TVar("f"))

    def test_sort_by(self):
        stmt = parse("retrieve (f.name, f.rank) sort by rank, name")
        assert stmt.sort_by == ("rank", "name")

    def test_all_clauses_together(self):
        stmt = parse('retrieve into r (f1.rank) where f1.name = "M" '
                     'when f1 overlap f2 valid from start of f1 '
                     'as of "12/10/82" sort by rank')
        assert stmt.into == "r" and stmt.where is not None
        assert stmt.when is not None and stmt.valid is not None
        assert stmt.as_of is not None and stmt.sort_by == ("rank",)

    def test_duplicate_clause_rejected(self):
        with pytest.raises(TQuelSyntaxError, match="duplicate"):
            parse("retrieve (f.rank) where f.a = 1 where f.b = 2")

    def test_aggregates(self):
        stmt = parse("retrieve (n = count(f.name), avg(f.salary))")
        assert stmt.targets[0].expr == AggCall("count",
                                               stmt.targets[0].expr.operand)
        assert stmt.targets[1].name == "avg_salary"

    def test_count_unique(self):
        stmt = parse("retrieve (n = count(unique f.rank))")
        assert stmt.targets[0].expr.unique

    def test_bare_count(self):
        stmt = parse("retrieve (n = count())")
        assert stmt.targets[0].expr.operand is None

    def test_sum_needs_operand(self):
        with pytest.raises(TQuelSyntaxError, match="operand"):
            parse("retrieve (s = sum())")

    def test_arithmetic_precedence(self):
        stmt = parse("retrieve (x = f.a + f.b * 2)")
        assert repr(stmt.targets[0].expr) == \
            "(AttrRef(f.a) + (AttrRef(f.b) * Const(2)))"

    def test_unary_minus(self):
        stmt = parse("retrieve (x = -f.a)")
        assert repr(stmt.targets[0].expr) == "(Const(0) - AttrRef(f.a))"

    def test_parenthesized_where(self):
        stmt = parse("retrieve (f.a) where (f.a = 1 or f.a = 2) and f.b = 3")
        assert repr(stmt.where).startswith("(((")


class TestUpdates:
    def test_append(self):
        stmt = parse('append to faculty (name = "Tom", rank = "associate") '
                     'valid from "12/05/82"')
        assert isinstance(stmt, AppendStmt)
        assert stmt.relation == "faculty"
        assert [name for name, _ in stmt.assignments] == ["name", "rank"]
        assert stmt.valid.from_ == TConst("12/05/82")

    def test_append_without_valid(self):
        stmt = parse('append to faculty (name = "Tom", rank = "full")')
        assert stmt.valid is None

    def test_append_event(self):
        stmt = parse('append to promotion (name = "M") valid at "12/11/82"')
        assert stmt.valid.is_event

    def test_delete(self):
        stmt = parse('delete f where f.name = "Mike" valid from "03/01/84"')
        assert isinstance(stmt, DeleteStmt)
        assert stmt.variable == "f"
        assert stmt.valid is not None

    def test_delete_bare(self):
        stmt = parse("delete f")
        assert stmt.where is None and stmt.valid is None

    def test_replace(self):
        stmt = parse('replace f (rank = "full") where f.name = "Merrie" '
                     'valid from "12/01/82"')
        assert isinstance(stmt, ReplaceStmt)
        assert stmt.assignments[0][0] == "rank"

    def test_replace_computed(self):
        stmt = parse("replace f (salary = f.salary * 2)")
        assert repr(stmt.assignments[0][1]) == "(AttrRef(f.salary) * Const(2))"


class TestDDL:
    def test_create(self):
        stmt = parse("create faculty (name = string, rank = string) "
                     "key (name)")
        assert stmt == CreateStmt("faculty",
                                  (("name", "string"), ("rank", "string")),
                                  ("name",), False)

    def test_create_event(self):
        stmt = parse("create event promotion (name = string, when_ = date)")
        assert stmt.event
        assert stmt.attributes[1] == ("when_", "date")

    def test_create_types(self):
        stmt = parse("create r (a = integer, b = float, c = boolean, "
                      "d = date, e = string)")
        assert [t for _, t in stmt.attributes] == [
            "integer", "float", "boolean", "date", "string"]

    def test_create_unknown_type(self):
        with pytest.raises(TQuelSyntaxError, match="unknown type"):
            parse("create r (a = blob)")

    def test_destroy(self):
        assert parse("destroy faculty") == DestroyStmt("faculty")


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_script("""
            create r (a = string)
            range of x is r ;
            retrieve (x.a)
        """)
        assert len(statements) == 3

    def test_trailing_garbage_rejected_by_parse(self):
        with pytest.raises(TQuelSyntaxError, match="unexpected input"):
            parse("destroy faculty extra")

    def test_empty_script(self):
        assert parse_script("  \n # just a comment\n") == []

    def test_semicolons_optional(self):
        assert len(parse_script("destroy a; destroy b;; destroy c")) == 3
