"""The exception hierarchy: one base class, sensible taxonomy of its own."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        exception_types = [
            value for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(exception_types) > 15
        for exception_type in exception_types:
            assert issubclass(exception_type, errors.ReproError), exception_type

    def test_time_errors(self):
        for exc in (errors.InvalidInstantError, errors.InvalidPeriodError,
                    errors.GranularityError, errors.ClockError):
            assert issubclass(exc, errors.TimeError)

    def test_relational_errors(self):
        for exc in (errors.SchemaError, errors.DomainError,
                    errors.ConstraintViolation, errors.UnknownAttributeError,
                    errors.UnknownRelationError,
                    errors.DuplicateRelationError, errors.ExpressionError):
            assert issubclass(exc, errors.RelationalError)

    def test_taxonomy_errors(self):
        assert issubclass(errors.RollbackNotSupportedError,
                          errors.TemporalSupportError)
        assert issubclass(errors.HistoricalNotSupportedError,
                          errors.TemporalSupportError)
        assert issubclass(errors.AppendOnlyViolation,
                          errors.TemporalSupportError)

    def test_tquel_errors_carry_positions(self):
        error = errors.TQuelSyntaxError("boom", 3, 7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_tquel_errors_without_positions(self):
        error = errors.TQuelSemanticError("boom")
        assert error.line is None
        assert "line" not in str(error)

    def test_one_except_clause_catches_all(self):
        from repro.core import StaticDatabase
        from repro.time import SimulatedClock
        database = StaticDatabase(clock=SimulatedClock("01/01/80"))
        caught = []
        for action in (
            lambda: database.snapshot("nowhere"),
            lambda: database.rollback("nowhere", "01/01/80"),
            lambda: database.timeslice("nowhere", "01/01/80"),
        ):
            try:
                action()
            except errors.ReproError as error:
                caught.append(type(error).__name__)
        assert len(caught) == 3

    def test_concurrency_errors_are_transaction_errors(self):
        for exc in (errors.ConflictError, errors.DeadlineExceeded,
                    errors.Overloaded):
            assert issubclass(exc, errors.ConcurrencyError)
        assert issubclass(errors.ConcurrencyError, errors.TransactionError)


class TestRetryableTriage:
    """The ``retryable`` bit: the retry layer's one-line triage rule."""

    def test_base_errors_are_not_retryable(self):
        assert errors.ReproError("x").retryable is False
        assert errors.ConstraintViolation("x").retryable is False
        assert errors.TransactionStateError("x").retryable is False

    def test_transient_concurrency_errors_are_retryable(self):
        assert errors.ConflictError("x").retryable is True
        assert errors.Overloaded("x").retryable is True

    def test_deadline_exceeded_is_final(self):
        # Retrying past a deadline would defeat the deadline.
        assert errors.DeadlineExceeded("x").retryable is False

    def test_conflict_error_names_the_stale_relations(self):
        error = errors.ConflictError("lost", relations=("b", "a"))
        assert error.relations == ("b", "a")
        assert error.retryable

    def test_overloaded_carries_the_retry_after_hint(self):
        assert errors.Overloaded("full").retry_after is None
        assert errors.Overloaded("full", retry_after=0.2).retry_after == 0.2
