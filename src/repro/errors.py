"""Exception hierarchy for the repro temporal database library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The hierarchy mirrors the layers of
the system: time values, the relational substrate, transactions, the four
database kinds, and the TQuel language.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    :attr:`retryable` is the session layer's triage bit: ``True`` means
    the failure is transient — re-running the same transaction closure
    may succeed (optimistic-concurrency conflicts, admission-control
    overload).  Semantic errors stay ``False`` and are never retried
    (docs/CONCURRENCY.md).
    """

    #: True when re-running the failed operation may succeed.
    retryable = False


# ---------------------------------------------------------------------------
# Time substrate
# ---------------------------------------------------------------------------

class TimeError(ReproError):
    """Base class for errors concerning time values."""


class InvalidInstantError(TimeError):
    """An instant literal could not be parsed or is out of range."""


class InvalidPeriodError(TimeError):
    """A period was constructed with end before start, or is otherwise malformed."""


class GranularityError(TimeError):
    """Two time values of incompatible granularities were combined."""


class ClockError(TimeError):
    """A clock was asked to move backwards or produced a non-monotone reading."""


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------

class RelationalError(ReproError):
    """Base class for errors in the relational substrate."""


class SchemaError(RelationalError):
    """A schema is malformed: duplicate attributes, unknown domains, bad keys."""


class DomainError(RelationalError):
    """A value does not belong to its attribute's domain."""


class ConstraintViolation(RelationalError):
    """An integrity constraint (key, not-null, check) was violated."""


class UnknownAttributeError(RelationalError):
    """An expression referenced an attribute not present in the schema."""


class UnknownRelationError(RelationalError):
    """A statement referenced a relation not present in the catalog."""


class DuplicateRelationError(RelationalError):
    """A relation with the same name already exists in the catalog."""


class ExpressionError(RelationalError):
    """A scalar or predicate expression is ill-typed or cannot be evaluated."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transaction-machinery errors."""


class TransactionStateError(TransactionError):
    """An operation was attempted in the wrong transaction state."""


class JournalError(TransactionError):
    """The append-only journal is corrupt or was used incorrectly."""


class ChainError(JournalError):
    """The commit hash chain is broken: history was tampered with.

    Distinct from frame-level damage (torn tails, CRC failures): the
    bytes on disk are internally valid, but they are not the bytes the
    chain committed to — a record was rewritten (``kind="tamper"``) or
    removed/reordered/substituted (``kind="break"``).  CRC alone cannot
    catch a rewrite that recomputes the checksum; the chain does,
    because the *next* record's ``prev_hash`` pins the original content
    (docs/INTEGRITY.md).  Never retryable and never auto-truncated —
    repair re-fetches the damaged suffix from a healthy peer.
    """

    def __init__(self, message: str, kind: str = "break") -> None:
        #: ``"break"`` (link to wrong parent) or ``"tamper"`` (record
        #: body or chain fields rewritten in place).
        self.kind = kind
        super().__init__(message)


class ConcurrencyError(TransactionError):
    """Base class for the concurrent session layer (docs/CONCURRENCY.md)."""


class ConflictError(ConcurrencyError):
    """First-committer-wins validation failed: another transaction
    committed to a relation this one read or wrote since it began.

    Retryable by definition — the paper's serialized commit order is
    intact; this transaction merely lost the race and can re-run against
    the new state.  ``relations`` names the stale relations.
    """

    retryable = True

    def __init__(self, message: str, relations: tuple = ()) -> None:
        self.relations = tuple(relations)
        super().__init__(message)


class DeadlineExceeded(ConcurrencyError):
    """The transaction's deadline passed before it could commit.

    Raised instead of committing late (and instead of a retry sleep that
    would overshoot the deadline).  Not retryable: the deadline is an
    application promise, and only the application can extend it.
    """


class Overloaded(ConcurrencyError):
    """Admission control shed this transaction: the wait queue is full.

    Graceful degradation under load — the request is rejected *fast*
    with ``retry_after`` (seconds) as a back-pressure hint, instead of
    wedging the process behind an unbounded queue.  Retryable: capacity
    frees up as in-flight transactions commit.

    ``queued`` and ``active`` report the controller's depth at the
    moment of the shed, so the error itself carries the overload
    evidence — the serving layer forwards both on the wire and exports
    them per tenant (docs/SERVING.md).
    """

    retryable = True

    def __init__(self, message: str,
                 retry_after: "float | None" = None,
                 queued: "int | None" = None,
                 active: "int | None" = None) -> None:
        self.retry_after = retry_after
        self.queued = queued
        self.active = active
        super().__init__(message)


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

class ShardingError(TransactionError):
    """Base class for the sharded store (docs/SHARDING.md)."""


class ShardRoutingError(ShardingError):
    """An operation cannot be routed to a shard.

    Raised for updates that would move a row between shards — a
    ``replace`` whose updates rewrite a primary-key attribute — because
    rows live on the shard their key hashes to and a silent migration
    would strand the row where later key lookups cannot find it.  Not
    retryable: the operation itself is malformed for a sharded store
    (use delete + insert).
    """


class ShardConfigError(ShardingError):
    """A sharded directory's layout disagrees with the request.

    Raised when the shard count or partitioning scheme recorded in the
    directory's ``shards.json`` does not match what the caller asked
    for — re-partitioning is an explicit migration, never an implicit
    reinterpretation of existing journal directories.
    """


# ---------------------------------------------------------------------------
# Replication
# ---------------------------------------------------------------------------

class ReplicationError(ReproError):
    """Base class for the replication layer (docs/REPLICATION.md)."""


class TransportError(ReplicationError):
    """A message was lost, mangled or mis-delivered in transit.

    Transport faults are transient by definition — the journal stream is
    sequence-numbered and idempotent, so the protocol recovers by
    re-requesting; every concrete transport failure is retryable.
    """

    retryable = True


class ReplicationGap(TransportError):
    """A replica saw a record beyond the next expected sequence number.

    The signature of a dropped or reordered message; the replica buffers
    what arrived and re-requests the missing range, so the condition
    heals itself — retryable.
    """


class DuplicateRecord(TransportError):
    """A record at or below the replica's applied sequence arrived again.

    Duplicated delivery (a retransmit that raced the original); the
    record is simply dropped — apply is idempotent by sequence number.
    """


class ReplicaLagging(ReplicationError):
    """A replica has not yet applied the records a read requires.

    Carries the read-your-writes ``token`` the caller demanded and the
    replica's current ``applied`` sequence.  Retryable: the replica
    converges as the stream (or a catch-up snapshot) is delivered.
    """

    retryable = True

    def __init__(self, message: str, token: "int | None" = None,
                 applied: "int | None" = None) -> None:
        self.token = token
        self.applied = applied
        super().__init__(message)


class FencedError(ReplicationError):
    """A record carried a stale epoch: its sender was fenced at failover.

    A zombie primary keeps streaming after a replica was promoted; epoch
    numbers on the stream let every replica reject it.  Not retryable —
    the fenced node must stand down, not resend.
    """


class DivergenceError(ReplicationError):
    """Digest exchange found a replica whose state differs at equal seq.

    Replay is deterministic, so divergence means corruption or a bug —
    never a transient.  The replica refuses further reads; rebuild it
    from a snapshot.  Not retryable.
    """


# ---------------------------------------------------------------------------
# Database kinds (the paper's taxonomy, enforced)
# ---------------------------------------------------------------------------

class TemporalSupportError(ReproError):
    """An operation requires a kind of time the database does not support.

    This is the taxonomy of the paper made executable: asking a *static*
    database to roll back, or a *static rollback* database to answer a
    historical query, raises this error with the database kind named in the
    message.
    """


class RollbackNotSupportedError(TemporalSupportError):
    """``as of`` / rollback requires transaction time (Figure 11 of the paper)."""


class HistoricalNotSupportedError(TemporalSupportError):
    """``when`` / ``valid`` requires valid time (Figure 11 of the paper)."""


class AppendOnlyViolation(TemporalSupportError):
    """A committed (past) state of a transaction-time database was altered.

    Transaction time is append-only (Figure 12 of the paper): once a
    transaction has completed, the static relations in the rollback store
    may not be altered.
    """


# ---------------------------------------------------------------------------
# TQuel language
# ---------------------------------------------------------------------------

class TQuelError(ReproError):
    """Base class for TQuel language errors."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class TQuelSyntaxError(TQuelError):
    """The statement could not be tokenized or parsed."""


class TQuelSemanticError(TQuelError):
    """The statement parsed but is ill-formed: unknown range variable,
    unknown attribute, or a temporal clause the target database kind cannot
    support."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Serialized data is malformed or of an unsupported version."""


class CheckpointError(StorageError):
    """A checkpoint file is damaged, of an unknown version, or missing.

    Recovery treats a damaged checkpoint as absent (falling back to an
    older checkpoint or a full journal replay); this error surfaces only
    when a checkpoint is read directly.
    """


# ---------------------------------------------------------------------------
# Serving (the network layer)
# ---------------------------------------------------------------------------

class ServingError(ReproError):
    """Base class for the network serving layer (docs/SERVING.md)."""


class ProtocolError(ServingError):
    """A wire frame violated the serving protocol.

    Truncated frames, oversized length prefixes, garbage bytes, frames
    whose payload is not a well-formed request — all of them land here
    as a *typed* reply so a misbehaving peer learns exactly what it
    sent, while the connection (and every other client) keeps working.
    Not retryable: resending the same malformed bytes cannot succeed.
    """


class DrainingError(ServingError):
    """The server is draining: it no longer accepts this request.

    Graceful shutdown's typed refusal — new requests get this instead
    of a hang or a reset, and in-flight requests aborted at the drain
    deadline get it too.  Retryable by definition: another endpoint (or
    the same one after restart) can serve the identical request, which
    is exactly what the client's failover path does.
    """

    retryable = True

    def __init__(self, message: str,
                 retry_after: "float | None" = None) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class RemoteError(ReproError):
    """An error type the client could not map back to a local class.

    The serving protocol round-trips every :class:`ReproError` subclass
    by name; a server newer than the client may name a type the client
    does not know.  The triage bit still travels — ``retryable`` is an
    *instance* attribute here, taken from the wire — so retry logic
    keeps working even for unknown errors.
    """

    def __init__(self, message: str, type_name: str = "ReproError",
                 retryable: bool = False) -> None:
        self.type_name = type_name
        self.retryable = retryable
        super().__init__(message)
