"""Periods (half-open intervals) and Allen's interval relations.

A :class:`Period` is a non-empty half-open interval ``[start, end)`` over
instants of one granularity.  The paper's ``(from, to)`` / ``(start, end)``
column pairs map directly: a tuple valid *from* 12/01/82 *to* ∞ is the
period ``[1982-12-01, ∞)``.

Allen's thirteen relations (:class:`AllenRelation`) are provided in full —
for any two periods exactly one relation holds, a property the test suite
checks exhaustively — and TQuel's coarser ``when`` predicates (``overlap``,
``precede``, ``start of``, ``end of``, ``extend``) are defined on top of
them, following the TQuel paper's semantics.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Optional, Union

from repro.errors import InvalidPeriodError
from repro.time.chronon import Granularity, require_same_granularity
from repro.time.instant import Instant, NEG_INF, POS_INF, instant as _coerce


class AllenRelation(enum.Enum):
    """Allen's thirteen basic interval relations.

    Named from the perspective of the first operand: ``a.allen(b) is
    BEFORE`` means *a* ends strictly before *b* begins.  The six inverse
    relations carry the ``_INV`` suffix.
    """

    BEFORE = "before"
    MEETS = "meets"
    OVERLAPS = "overlaps"
    STARTS = "starts"
    DURING = "during"
    FINISHES = "finishes"
    EQUALS = "equals"
    FINISHES_INV = "finished-by"
    DURING_INV = "contains"
    STARTS_INV = "started-by"
    OVERLAPS_INV = "overlapped-by"
    MEETS_INV = "met-by"
    AFTER = "after"

    @property
    def inverse(self) -> "AllenRelation":
        """The relation that holds with the operands swapped."""
        return _INVERSES[self]


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.MEETS: AllenRelation.MEETS_INV,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPS_INV,
    AllenRelation.STARTS: AllenRelation.STARTS_INV,
    AllenRelation.DURING: AllenRelation.DURING_INV,
    AllenRelation.FINISHES: AllenRelation.FINISHES_INV,
    AllenRelation.EQUALS: AllenRelation.EQUALS,
    AllenRelation.FINISHES_INV: AllenRelation.FINISHES,
    AllenRelation.DURING_INV: AllenRelation.DURING,
    AllenRelation.STARTS_INV: AllenRelation.STARTS,
    AllenRelation.OVERLAPS_INV: AllenRelation.OVERLAPS,
    AllenRelation.MEETS_INV: AllenRelation.MEETS,
    AllenRelation.AFTER: AllenRelation.BEFORE,
}

InstantLike = Union[Instant, str, int]


class Period:
    """A non-empty half-open interval ``[start, end)`` on the timeline.

    ``start`` must be strictly earlier than ``end``; empty periods are
    rejected at construction so every stored period denotes at least one
    chronon.  Periods are immutable and hashable.
    """

    __slots__ = ("_start", "_end")

    def __init__(self, start: InstantLike, end: InstantLike,
                 granularity: Granularity = Granularity.DAY) -> None:
        start_i = _coerce(start, granularity)
        end_i = _coerce(end, granularity)
        if start_i.is_finite and end_i.is_finite:
            require_same_granularity(start_i.granularity, end_i.granularity,
                                     "build a period")
        if not start_i < end_i:
            raise InvalidPeriodError(
                f"period start {start_i} must precede end {end_i} "
                f"(periods are half-open and non-empty)"
            )
        self._start = start_i
        self._end = end_i

    # -- constructors --------------------------------------------------------

    @classmethod
    def at(cls, when: InstantLike,
           granularity: Granularity = Granularity.DAY) -> "Period":
        """The single-chronon period containing *when* (used by event relations)."""
        point = _coerce(when, granularity)
        return cls(point, point + 1)

    @classmethod
    def always(cls) -> "Period":
        """The whole timeline, ``[-∞, ∞)``."""
        return cls(NEG_INF, POS_INF)

    @classmethod
    def from_inclusive(cls, first: InstantLike, last: InstantLike,
                       granularity: Granularity = Granularity.DAY) -> "Period":
        """Build from inclusive endpoints: ``[first, last]`` as chronons."""
        last_i = _coerce(last, granularity)
        return cls(_coerce(first, granularity),
                   last_i + 1 if last_i.is_finite else last_i)

    # -- accessors -------------------------------------------------------------

    @property
    def start(self) -> Instant:
        """The inclusive lower endpoint."""
        return self._start

    @property
    def end(self) -> Instant:
        """The exclusive upper endpoint."""
        return self._end

    @property
    def last(self) -> Instant:
        """The last chronon inside the period (``end - 1``)."""
        return self._end - 1

    @property
    def is_instantaneous(self) -> bool:
        """True if the period covers exactly one chronon."""
        return (self._start.is_finite and self._end.is_finite
                and self._end - self._start == 1)

    def duration(self) -> Optional[int]:
        """The number of chronons covered, or ``None`` if unbounded."""
        if self._start.is_finite and self._end.is_finite:
            return self._end - self._start
        return None

    # -- membership and relations ------------------------------------------------

    def contains(self, when: InstantLike) -> bool:
        """True if the instant lies inside ``[start, end)``."""
        point = _coerce(when)
        return self._start <= point < self._end

    def contains_period(self, other: "Period") -> bool:
        """True if *other* lies entirely inside this period."""
        return self._start <= other._start and other._end <= self._end

    def overlaps(self, other: "Period") -> bool:
        """True if the two periods share at least one chronon.

        This is TQuel's ``overlap`` predicate.
        """
        return self._start < other._end and other._start < self._end

    def precedes(self, other: "Period") -> bool:
        """True if this period ends at or before the other starts.

        This is TQuel's ``precede`` predicate: every chronon of ``self``
        comes before every chronon of ``other`` (meeting is allowed).
        """
        return self._end <= other._start

    def meets(self, other: "Period") -> bool:
        """True if this period ends exactly where the other starts."""
        return self._end == other._start

    def adjacent(self, other: "Period") -> bool:
        """True if the periods meet in either direction (no gap, no overlap)."""
        return self.meets(other) or other.meets(self)

    def allen(self, other: "Period") -> AllenRelation:
        """Classify the pair under Allen's thirteen relations.

        Exactly one relation holds for any two periods (tested exhaustively
        in the property suite).
        """
        if self._end < other._start:
            return AllenRelation.BEFORE
        if self._end == other._start:
            return AllenRelation.MEETS
        if other._end < self._start:
            return AllenRelation.AFTER
        if other._end == self._start:
            return AllenRelation.MEETS_INV
        # The periods overlap in at least one chronon.
        if self._start == other._start:
            if self._end == other._end:
                return AllenRelation.EQUALS
            if self._end < other._end:
                return AllenRelation.STARTS
            return AllenRelation.STARTS_INV
        if self._end == other._end:
            if self._start > other._start:
                return AllenRelation.FINISHES
            return AllenRelation.FINISHES_INV
        if self._start < other._start:
            if self._end > other._end:
                return AllenRelation.DURING_INV
            return AllenRelation.OVERLAPS
        if self._end < other._end:
            return AllenRelation.DURING
        return AllenRelation.OVERLAPS_INV

    # -- set-like operations -------------------------------------------------------

    def intersect(self, other: "Period") -> Optional["Period"]:
        """The common sub-period, or ``None`` if the periods are disjoint."""
        start = max(self._start, other._start)
        end = min(self._end, other._end)
        if start < end:
            return Period(start, end)
        return None

    def union(self, other: "Period") -> Optional["Period"]:
        """The merged period if the two overlap or meet, else ``None``."""
        if self.overlaps(other) or self.adjacent(other):
            return Period(min(self._start, other._start),
                          max(self._end, other._end))
        return None

    def difference(self, other: "Period") -> List["Period"]:
        """The parts of this period not covered by *other* (0, 1 or 2 pieces)."""
        pieces: List[Period] = []
        if other._start > self._start:
            left_end = min(other._start, self._end)
            if self._start < left_end:
                pieces.append(Period(self._start, left_end))
        if other._end < self._end:
            right_start = max(other._end, self._start)
            if right_start < self._end:
                pieces.append(Period(right_start, self._end))
        if not pieces and not self.overlaps(other):
            pieces.append(self)
        return pieces

    def clamp(self, bounds: "Period") -> Optional["Period"]:
        """Alias for :meth:`intersect`, reading better at call sites."""
        return self.intersect(bounds)

    def chronons(self) -> Iterator[Instant]:
        """Iterate the chronons of a bounded period (error if unbounded)."""
        if not (self._start.is_finite and self._end.is_finite):
            raise InvalidPeriodError(f"cannot enumerate unbounded period {self}")
        current = self._start
        while current < self._end:
            yield current
            current = current + 1

    # -- TQuel endpoint operators ------------------------------------------------

    def start_of(self) -> "Period":
        """TQuel's ``start of``: the single-chronon period at the start."""
        if not self._start.is_finite:
            raise InvalidPeriodError(f"start of {self} is unbounded")
        return Period(self._start, self._start + 1)

    def end_of(self) -> "Period":
        """TQuel's ``end of``: the single-chronon period at the last chronon."""
        if not self._end.is_finite:
            raise InvalidPeriodError(f"end of {self} is unbounded")
        return Period(self._end - 1, self._end)

    def extend(self, other: "Period") -> "Period":
        """TQuel's ``extend``: the smallest period covering both operands."""
        return Period(min(self._start, other._start),
                      max(self._end, other._end))

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Period):
            return NotImplemented
        return self._start == other._start and self._end == other._end

    def __hash__(self) -> int:
        return hash((self._start, self._end))

    def __lt__(self, other: "Period") -> bool:
        """Order by start, then end — the order used for coalescing."""
        if not isinstance(other, Period):
            return NotImplemented
        if self._start != other._start:
            return self._start < other._start
        return self._end < other._end

    def __contains__(self, when: object) -> bool:
        if isinstance(when, Period):
            return self.contains_period(when)
        return self.contains(when)  # type: ignore[arg-type]

    def __str__(self) -> str:
        return f"[{self._start}, {self._end})"

    def __repr__(self) -> str:
        return f"Period({self._start.isoformat()!r}, {self._end.isoformat()!r})"


def coalesce(periods: Iterable[Period]) -> List[Period]:
    """Merge overlapping and adjacent periods into a minimal sorted list.

    The result is the canonical form used by
    :class:`~repro.time.element.TemporalElement`: sorted, pairwise disjoint,
    with no two periods adjacent.  Coalescing is idempotent and insensitive
    to input order (property-tested).
    """
    ordered = sorted(periods)
    merged: List[Period] = []
    for period in ordered:
        if merged:
            combined = merged[-1].union(period)
            if combined is not None:
                merged[-1] = combined
                continue
        merged.append(period)
    return merged
