"""Time substrate for the temporal database reproduction.

The paper models time as a discrete line.  This package provides:

- :class:`~repro.time.chronon.Granularity` — the unit of the discrete
  timeline (day, second, month, ...), with conversions between calendar
  fields and integer *chronons*;
- :class:`~repro.time.instant.Instant` — a point on the timeline, including
  the two distinguished values ``NEG_INF`` and ``POS_INF`` (the paper's
  ``∞``), and parsing of the paper's ``MM/DD/YY`` date literals;
- :class:`~repro.time.period.Period` — a half-open interval ``[start, end)``
  together with Allen's thirteen interval relations, which back TQuel's
  ``when`` predicates (``overlap``, ``precede``, ...);
- :class:`~repro.time.element.TemporalElement` — a finite union of periods,
  closed under union, intersection, difference and complement;
- :class:`~repro.time.duration.Duration` — a signed span of chronons;
- :mod:`~repro.time.clock` — clocks, including the strictly monotone
  transaction clock that makes transaction time append-only and
  application-independent (Figure 12 of the paper).
"""

from repro.time.chronon import Granularity
from repro.time.instant import Instant, NEG_INF, POS_INF
from repro.time.period import AllenRelation, Period
from repro.time.element import TemporalElement
from repro.time.duration import Duration
from repro.time.clock import Clock, SimulatedClock, SystemClock, TransactionClock

__all__ = [
    "AllenRelation",
    "Clock",
    "Duration",
    "Granularity",
    "Instant",
    "NEG_INF",
    "POS_INF",
    "Period",
    "SimulatedClock",
    "SystemClock",
    "TemporalElement",
    "TransactionClock",
]
