"""Instants: points on the discrete timeline, with ``-∞`` and ``∞``.

An :class:`Instant` is either *finite* — an integer chronon at a
:class:`~repro.time.chronon.Granularity` — or one of the two distinguished
unbounded values :data:`NEG_INF` and :data:`POS_INF`.  ``POS_INF`` plays the
role of the paper's ``∞`` entries: an open-ended valid time (*until
changed*) or the transaction-time end of a tuple that is still current.

Instants are immutable, totally ordered within one granularity, hashable,
and support chronon arithmetic (``instant + 3`` is three chronons later;
arithmetic on the infinities is absorbing, like IEEE infinities).

Parsing accepts three families of literal:

- the paper's ``MM/DD/YY`` (and ``MM/DD/YYYY``) dates — two-digit years are
  pivoted at 70, so ``77`` means 1977 and ``69`` means 2069, matching the
  paper's 1977–1984 examples;
- ISO dates/datetimes (``1982-12-15``, ``1982-12-15 08:30:00``);
- the symbolic literals ``forever`` / ``infinity`` / ``∞`` and
  ``beginning`` / ``-∞``.
"""

from __future__ import annotations

import datetime as _dt
import enum
import functools
import re
from typing import Union

from repro.errors import InvalidInstantError
from repro.time.chronon import Granularity, require_same_granularity

_PAPER_DATE = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{2}|\d{4})$")
_ISO_DATE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_ISO_DATETIME = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})[ T](\d{2}):(\d{2})(?::(\d{2}))?$"
)

#: Two-digit years below the pivot are 20xx, at or above it 19xx.  The paper's
#: examples span 1977-1984, hence a pivot of 70.
TWO_DIGIT_YEAR_PIVOT = 70

_POS_TOKENS = frozenset({"forever", "infinity", "inf", "∞", "+∞"})
_NEG_TOKENS = frozenset({"beginning", "-infinity", "-inf", "-∞"})


class _Kind(enum.IntEnum):
    """Internal ordering tag: NEG_INF < any finite instant < POS_INF."""

    NEG_INF = -1
    FINITE = 0
    POS_INF = 1


@functools.total_ordering
class Instant:
    """A point on the discrete timeline.

    Construct finite instants with :meth:`parse`, :meth:`from_date`,
    :meth:`from_datetime` or :meth:`from_chronon`; the unbounded endpoints
    are the module-level singletons :data:`NEG_INF` and :data:`POS_INF`.
    """

    __slots__ = ("_kind", "_chronon", "_granularity")

    def __init__(self, chronon: int, granularity: Granularity = Granularity.DAY,
                 _kind: _Kind = _Kind.FINITE) -> None:
        if _kind is _Kind.FINITE and not isinstance(chronon, int):
            raise InvalidInstantError(
                f"chronon must be an int, got {type(chronon).__name__}"
            )
        self._kind = _kind
        self._chronon = chronon if _kind is _Kind.FINITE else 0
        self._granularity = granularity

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_chronon(cls, chronon: int,
                     granularity: Granularity = Granularity.DAY) -> "Instant":
        """Wrap a raw chronon integer."""
        return cls(chronon, granularity)

    @classmethod
    def from_date(cls, when: _dt.date,
                  granularity: Granularity = Granularity.DAY) -> "Instant":
        """Build an instant from a calendar date."""
        return cls(granularity.from_date(when), granularity)

    @classmethod
    def from_datetime(cls, when: _dt.datetime,
                      granularity: Granularity = Granularity.DAY) -> "Instant":
        """Build an instant from a calendar datetime."""
        return cls(granularity.from_datetime(when), granularity)

    @classmethod
    def parse(cls, text: str,
              granularity: Granularity = Granularity.DAY) -> "Instant":
        """Parse an instant literal.

        Accepts the paper's ``MM/DD/YY`` format, ISO dates and datetimes, and
        the symbolic infinity tokens (see module docstring).  Raises
        :class:`~repro.errors.InvalidInstantError` on anything else.
        """
        token = text.strip()
        lowered = token.lower()
        if lowered in _POS_TOKENS:
            return POS_INF
        if lowered in _NEG_TOKENS:
            return NEG_INF

        match = _PAPER_DATE.match(token)
        if match:
            month, day, year = (int(part) for part in match.groups())
            if year < 100:
                year += 1900 if year >= TWO_DIGIT_YEAR_PIVOT else 2000
            return cls._from_fields(year, month, day, granularity=granularity,
                                    literal=token)

        match = _ISO_DATE.match(token)
        if match:
            year, month, day = (int(part) for part in match.groups())
            return cls._from_fields(year, month, day, granularity=granularity,
                                    literal=token)

        match = _ISO_DATETIME.match(token)
        if match:
            year, month, day, hour, minute = (int(p) for p in match.groups()[:5])
            second = int(match.group(6) or 0)
            try:
                when = _dt.datetime(year, month, day, hour, minute, second)
            except ValueError as exc:
                raise InvalidInstantError(f"invalid datetime literal {token!r}") from exc
            return cls.from_datetime(when, granularity)

        raise InvalidInstantError(
            f"cannot parse instant literal {token!r}; expected MM/DD/YY, an "
            f"ISO date/datetime, or one of the infinity tokens"
        )

    @classmethod
    def _from_fields(cls, year: int, month: int, day: int, *,
                     granularity: Granularity, literal: str) -> "Instant":
        try:
            when = _dt.date(year, month, day)
        except ValueError as exc:
            raise InvalidInstantError(f"invalid date literal {literal!r}") from exc
        return cls.from_date(when, granularity)

    # -- accessors -----------------------------------------------------------

    @property
    def granularity(self) -> Granularity:
        """The granularity this instant is expressed in."""
        return self._granularity

    @property
    def chronon(self) -> int:
        """The underlying chronon integer; an error for the infinities."""
        if self._kind is not _Kind.FINITE:
            raise InvalidInstantError(f"{self} has no finite chronon")
        return self._chronon

    @property
    def is_finite(self) -> bool:
        """True for ordinary instants, False for ``NEG_INF`` and ``POS_INF``."""
        return self._kind is _Kind.FINITE

    @property
    def is_pos_inf(self) -> bool:
        """True only for :data:`POS_INF` (the paper's ``∞``)."""
        return self._kind is _Kind.POS_INF

    @property
    def is_neg_inf(self) -> bool:
        """True only for :data:`NEG_INF`."""
        return self._kind is _Kind.NEG_INF

    def to_datetime(self) -> _dt.datetime:
        """The calendar datetime at which this (finite) instant begins."""
        return self._granularity.to_datetime(self.chronon)

    def to_date(self) -> _dt.date:
        """The calendar date of this (finite) instant."""
        return self.to_datetime().date()

    # -- ordering and equality -------------------------------------------------

    def _check_comparable(self, other: "Instant") -> None:
        if self.is_finite and other.is_finite:
            require_same_granularity(self._granularity, other._granularity,
                                     "compare instants")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instant):
            return NotImplemented
        if self._kind is not other._kind:
            return False
        if self._kind is not _Kind.FINITE:
            return True
        return (self._chronon == other._chronon
                and self._granularity is other._granularity)

    def __lt__(self, other: "Instant") -> bool:
        if not isinstance(other, Instant):
            return NotImplemented
        self._check_comparable(other)
        if self._kind is not other._kind:
            return self._kind < other._kind
        if self._kind is not _Kind.FINITE:
            return False
        return self._chronon < other._chronon

    def __hash__(self) -> int:
        if self._kind is not _Kind.FINITE:
            return hash(self._kind)
        return hash((self._chronon, self._granularity))

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, chronons: int) -> "Instant":
        """The instant *chronons* later; infinities are absorbing."""
        if not isinstance(chronons, int):
            return NotImplemented
        if not self.is_finite:
            return self
        return Instant(self._chronon + chronons, self._granularity)

    def __sub__(self, other: Union[int, "Instant"]):
        """``instant - int`` shifts earlier; ``instant - instant`` is a chronon count."""
        if isinstance(other, int):
            return self + (-other)
        if isinstance(other, Instant):
            if not (self.is_finite and other.is_finite):
                raise InvalidInstantError(
                    "cannot take the difference of unbounded instants"
                )
            require_same_granularity(self._granularity, other._granularity,
                                     "subtract instants")
            return self._chronon - other._chronon
        return NotImplemented

    def successor(self) -> "Instant":
        """The next chronon (identity on the infinities)."""
        return self + 1

    def predecessor(self) -> "Instant":
        """The previous chronon (identity on the infinities)."""
        return self - 1

    # -- formatting --------------------------------------------------------------

    def isoformat(self) -> str:
        """ISO-style rendering; the infinities render as ``-∞`` / ``∞``."""
        if self._kind is _Kind.POS_INF:
            return "∞"
        if self._kind is _Kind.NEG_INF:
            return "-∞"
        return self._granularity.format(self._chronon)

    def paper_format(self) -> str:
        """Render as the paper does: ``MM/DD/YY`` for days, ``∞`` for infinity."""
        if self._kind is _Kind.POS_INF:
            return "∞"
        if self._kind is _Kind.NEG_INF:
            return "-∞"
        if self._granularity is Granularity.DAY:
            return self.to_date().strftime("%m/%d/%y")
        return self.isoformat()

    def __str__(self) -> str:
        return self.isoformat()

    def __repr__(self) -> str:
        if self._kind is _Kind.POS_INF:
            return "Instant(∞)"
        if self._kind is _Kind.NEG_INF:
            return "Instant(-∞)"
        return f"Instant({self.isoformat()!r})"


#: The unbounded past; strictly earlier than every finite instant.
NEG_INF = Instant(0, Granularity.DAY, _kind=_Kind.NEG_INF)

#: The unbounded future — the paper's ``∞``; strictly later than every
#: finite instant.  Used for open-ended valid times and for the transaction
#: end time of tuples that are still current.
POS_INF = Instant(0, Granularity.DAY, _kind=_Kind.POS_INF)


def instant(value: Union[str, int, _dt.date, _dt.datetime, Instant],
            granularity: Granularity = Granularity.DAY) -> Instant:
    """Coerce a convenient value to an :class:`Instant`.

    Accepts an existing instant (returned unchanged), a literal string, a raw
    chronon integer, or a calendar date/datetime.  This is the friendly entry
    point used throughout the public API so callers can write
    ``db.rollback("12/10/82")``.
    """
    if isinstance(value, Instant):
        return value
    if isinstance(value, str):
        return Instant.parse(value, granularity)
    if isinstance(value, bool):
        raise InvalidInstantError("bool is not a valid instant")
    if isinstance(value, int):
        return Instant.from_chronon(value, granularity)
    if isinstance(value, _dt.datetime):
        return Instant.from_datetime(value, granularity)
    if isinstance(value, _dt.date):
        return Instant.from_date(value, granularity)
    raise InvalidInstantError(
        f"cannot interpret {value!r} as an instant"
    )
