"""Granularities and chronon arithmetic.

A *chronon* is the indivisible unit of the discrete timeline: the library
represents every finite instant as an integer number of chronons at a given
:class:`Granularity`.  The paper's examples use calendar days (``12/15/82``),
so :attr:`Granularity.DAY` is the library default, but finer and coarser
granularities are supported for applications that need them.

Chronon encodings (all proleptic Gregorian, via :mod:`datetime`):

========== =====================================================
DAY        ``datetime.date.toordinal()`` (day 1 = 0001-01-01)
SECOND     seconds since 0001-01-01T00:00:00
MINUTE     minutes since 0001-01-01T00:00
HOUR       hours since 0001-01-01T00:00
MONTH      ``year * 12 + (month - 1)``
YEAR       ``year``
========== =====================================================

The encodings are only comparable within one granularity; mixing
granularities raises :class:`~repro.errors.GranularityError` at the
:class:`~repro.time.instant.Instant` level.
"""

from __future__ import annotations

import datetime as _dt
import enum

from repro.errors import GranularityError, InvalidInstantError

_EPOCH = _dt.datetime(1, 1, 1)


class Granularity(enum.Enum):
    """The unit of the discrete timeline.

    Members are ordered from finest to coarsest; :meth:`finer_than` compares
    them.  The library default, used throughout the paper's examples, is
    :attr:`DAY`.
    """

    SECOND = "second"
    MINUTE = "minute"
    HOUR = "hour"
    DAY = "day"
    MONTH = "month"
    YEAR = "year"

    # -- ordering ----------------------------------------------------------

    @property
    def _rank(self) -> int:
        return _RANKS[self]

    def finer_than(self, other: "Granularity") -> bool:
        """True if this granularity subdivides time more finely than *other*."""
        return self._rank < other._rank

    # -- calendar <-> chronon ----------------------------------------------

    def from_datetime(self, when: _dt.datetime) -> int:
        """Encode a :class:`datetime.datetime` as a chronon at this granularity."""
        if self is Granularity.DAY:
            return when.date().toordinal()
        if self is Granularity.SECOND:
            return int((when - _EPOCH).total_seconds())
        if self is Granularity.MINUTE:
            return int((when - _EPOCH).total_seconds()) // 60
        if self is Granularity.HOUR:
            return int((when - _EPOCH).total_seconds()) // 3600
        if self is Granularity.MONTH:
            return when.year * 12 + (when.month - 1)
        if self is Granularity.YEAR:
            return when.year
        raise GranularityError(f"unknown granularity {self!r}")

    def from_date(self, when: _dt.date) -> int:
        """Encode a :class:`datetime.date` as a chronon at this granularity."""
        return self.from_datetime(_dt.datetime(when.year, when.month, when.day))

    def to_datetime(self, chronon: int) -> _dt.datetime:
        """Decode a chronon back to the :class:`datetime.datetime` at its start."""
        try:
            if self is Granularity.DAY:
                day = _dt.date.fromordinal(chronon)
                return _dt.datetime(day.year, day.month, day.day)
            if self is Granularity.SECOND:
                return _EPOCH + _dt.timedelta(seconds=chronon)
            if self is Granularity.MINUTE:
                return _EPOCH + _dt.timedelta(minutes=chronon)
            if self is Granularity.HOUR:
                return _EPOCH + _dt.timedelta(hours=chronon)
            if self is Granularity.MONTH:
                year, month0 = divmod(chronon, 12)
                return _dt.datetime(year, month0 + 1, 1)
            if self is Granularity.YEAR:
                return _dt.datetime(chronon, 1, 1)
        except (ValueError, OverflowError) as exc:
            raise InvalidInstantError(
                f"chronon {chronon} is outside the supported calendar range "
                f"at granularity {self.value}"
            ) from exc
        raise GranularityError(f"unknown granularity {self!r}")

    # -- formatting ----------------------------------------------------------

    def format(self, chronon: int) -> str:
        """Render a chronon as an ISO-style literal appropriate to the granularity."""
        when = self.to_datetime(chronon)
        if self is Granularity.DAY:
            return when.date().isoformat()
        if self is Granularity.SECOND:
            return when.isoformat(sep=" ")
        if self is Granularity.MINUTE:
            return when.strftime("%Y-%m-%d %H:%M")
        if self is Granularity.HOUR:
            return when.strftime("%Y-%m-%d %H:00")
        if self is Granularity.MONTH:
            return when.strftime("%Y-%m")
        return when.strftime("%Y")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Granularity.{self.name}"


_RANKS = {
    Granularity.SECOND: 0,
    Granularity.MINUTE: 1,
    Granularity.HOUR: 2,
    Granularity.DAY: 3,
    Granularity.MONTH: 4,
    Granularity.YEAR: 5,
}


def require_same_granularity(a: Granularity, b: Granularity, context: str) -> None:
    """Raise :class:`GranularityError` unless *a* and *b* are the same.

    The library never silently converts between granularities: the paper's
    semantics are defined over a single discrete timeline, and a day-chronon
    compared against a second-chronon is a category error, not a coercion.
    """
    if a is not b:
        raise GranularityError(
            f"cannot {context} across granularities ({a.value} vs {b.value})"
        )
