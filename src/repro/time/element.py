"""Temporal elements: finite unions of periods, closed under set operations.

A single period cannot represent, say, "employed 1977–1980 and again
1983–1985".  A :class:`TemporalElement` is the standard temporal-database
fix: a finite union of periods, kept in canonical (coalesced) form so that
equality is set equality of the underlying chronon sets.

Temporal elements are closed under union, intersection, difference and
complement, which makes them the natural codomain for TQuel's ``valid``
clause expressions and for coalescing historical relations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.time.period import Period, coalesce

PeriodLike = Union[Period, "TemporalElement"]


def _as_periods(value: PeriodLike) -> Tuple[Period, ...]:
    if isinstance(value, TemporalElement):
        return value.periods
    return (value,)


class TemporalElement:
    """An immutable, canonical finite union of periods.

    The empty element is allowed (unlike the empty period) and acts as the
    identity for union and the absorbing element for intersection.
    """

    __slots__ = ("_periods",)

    def __init__(self, periods: Iterable[Period] = ()) -> None:
        self._periods: Tuple[Period, ...] = tuple(coalesce(periods))

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "TemporalElement":
        """The element covering no chronons."""
        return cls(())

    @classmethod
    def always(cls) -> "TemporalElement":
        """The element covering the whole timeline."""
        return cls((Period.always(),))

    @classmethod
    def of(cls, *periods: PeriodLike) -> "TemporalElement":
        """Union of the given periods and/or elements."""
        flat: List[Period] = []
        for item in periods:
            flat.extend(_as_periods(item))
        return cls(flat)

    # -- accessors ------------------------------------------------------------

    @property
    def periods(self) -> Tuple[Period, ...]:
        """The canonical periods: sorted, disjoint, non-adjacent."""
        return self._periods

    @property
    def is_empty(self) -> bool:
        """True if no chronon is covered."""
        return not self._periods

    def span(self) -> Optional[Period]:
        """The smallest single period covering the element, or ``None`` if empty."""
        if not self._periods:
            return None
        return Period(self._periods[0].start, self._periods[-1].end)

    def duration(self) -> Optional[int]:
        """Total chronons covered, or ``None`` if any period is unbounded."""
        total = 0
        for period in self._periods:
            length = period.duration()
            if length is None:
                return None
            total += length
        return total

    # -- membership --------------------------------------------------------------

    def contains(self, when) -> bool:
        """True if the instant lies in one of the periods."""
        return any(period.contains(when) for period in self._periods)

    def overlaps(self, other: PeriodLike) -> bool:
        """True if the element shares a chronon with *other*."""
        others = _as_periods(other)
        return any(mine.overlaps(theirs)
                   for mine in self._periods for theirs in others)

    # -- set algebra ----------------------------------------------------------------

    def union(self, other: PeriodLike) -> "TemporalElement":
        """Chronon-set union."""
        return TemporalElement(self._periods + _as_periods(other))

    def intersect(self, other: PeriodLike) -> "TemporalElement":
        """Chronon-set intersection."""
        pieces: List[Period] = []
        for mine in self._periods:
            for theirs in _as_periods(other):
                common = mine.intersect(theirs)
                if common is not None:
                    pieces.append(common)
        return TemporalElement(pieces)

    def difference(self, other: PeriodLike) -> "TemporalElement":
        """Chronon-set difference (``self`` minus *other*)."""
        remaining: List[Period] = list(self._periods)
        for theirs in _as_periods(other):
            next_remaining: List[Period] = []
            for mine in remaining:
                next_remaining.extend(mine.difference(theirs))
            remaining = next_remaining
        return TemporalElement(remaining)

    def complement(self) -> "TemporalElement":
        """The chronons *not* covered, within ``[-∞, ∞)``."""
        return TemporalElement.always().difference(self)

    # -- operators --------------------------------------------------------------------

    def __or__(self, other: PeriodLike) -> "TemporalElement":
        return self.union(other)

    def __and__(self, other: PeriodLike) -> "TemporalElement":
        return self.intersect(other)

    def __sub__(self, other: PeriodLike) -> "TemporalElement":
        return self.difference(other)

    def __invert__(self) -> "TemporalElement":
        return self.complement()

    def __iter__(self) -> Iterator[Period]:
        return iter(self._periods)

    def __len__(self) -> int:
        return len(self._periods)

    def __bool__(self) -> bool:
        return bool(self._periods)

    def __contains__(self, when: object) -> bool:
        return self.contains(when)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalElement):
            return NotImplemented
        return self._periods == other._periods

    def __hash__(self) -> int:
        return hash(self._periods)

    def __str__(self) -> str:
        if not self._periods:
            return "{}"
        return "{" + ", ".join(str(period) for period in self._periods) + "}"

    def __repr__(self) -> str:
        return f"TemporalElement({list(self._periods)!r})"
