"""Durations: signed spans of chronons.

A :class:`Duration` is the difference of two instants at one granularity —
"three days", "eighteen months".  Durations support the arithmetic needed
by trend-analysis queries ("over the last 5 years") and by the workload
generators.
"""

from __future__ import annotations

import functools

from repro.errors import GranularityError
from repro.time.chronon import Granularity, require_same_granularity
from repro.time.instant import Instant


@functools.total_ordering
class Duration:
    """A signed number of chronons at a granularity. Immutable and hashable."""

    __slots__ = ("_chronons", "_granularity")

    def __init__(self, chronons: int,
                 granularity: Granularity = Granularity.DAY) -> None:
        if not isinstance(chronons, int) or isinstance(chronons, bool):
            raise GranularityError(
                f"duration must be an integer chronon count, got {chronons!r}"
            )
        self._chronons = chronons
        self._granularity = granularity

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def days(cls, count: int) -> "Duration":
        """*count* day-chronons."""
        return cls(count, Granularity.DAY)

    @classmethod
    def between(cls, earlier: Instant, later: Instant) -> "Duration":
        """The duration from *earlier* to *later* (may be negative)."""
        return cls(later - earlier, earlier.granularity)

    # -- accessors ----------------------------------------------------------------

    @property
    def chronons(self) -> int:
        """The signed chronon count."""
        return self._chronons

    @property
    def granularity(self) -> Granularity:
        """The granularity the count is expressed in."""
        return self._granularity

    # -- arithmetic -----------------------------------------------------------------

    def _check(self, other: "Duration") -> None:
        require_same_granularity(self._granularity, other._granularity,
                                 "combine durations")

    def __add__(self, other):
        if isinstance(other, Duration):
            self._check(other)
            return Duration(self._chronons + other._chronons, self._granularity)
        if isinstance(other, Instant):
            return other + self._chronons
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: "Duration") -> "Duration":
        if not isinstance(other, Duration):
            return NotImplemented
        self._check(other)
        return Duration(self._chronons - other._chronons, self._granularity)

    def __neg__(self) -> "Duration":
        return Duration(-self._chronons, self._granularity)

    def __mul__(self, factor: int) -> "Duration":
        if not isinstance(factor, int):
            return NotImplemented
        return Duration(self._chronons * factor, self._granularity)

    __rmul__ = __mul__

    # -- comparison --------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Duration):
            return NotImplemented
        return (self._chronons == other._chronons
                and self._granularity is other._granularity)

    def __lt__(self, other: "Duration") -> bool:
        if not isinstance(other, Duration):
            return NotImplemented
        self._check(other)
        return self._chronons < other._chronons

    def __hash__(self) -> int:
        return hash((self._chronons, self._granularity))

    def __str__(self) -> str:
        unit = self._granularity.value
        plural = "" if abs(self._chronons) == 1 else "s"
        return f"{self._chronons} {unit}{plural}"

    def __repr__(self) -> str:
        return f"Duration({self._chronons}, {self._granularity!r})"
