"""repro: a full reproduction of *A Taxonomy of Time in Databases*
(Snodgrass & Ahn, SIGMOD 1985).

The library implements the paper's three kinds of time — **transaction**,
**valid** and **user-defined** — and its four kinds of database —
**static**, **static rollback**, **historical** and **temporal** —
together with the TQuel query language (``where`` / ``when`` / ``valid`` /
``as of``) over all of them.

Quickstart::

    from repro import TemporalDatabase, Session
    from repro.time import SimulatedClock

    clock = SimulatedClock("01/01/80")
    session = Session(TemporalDatabase(clock=clock))
    session.execute('create faculty (name = string, rank = string) key (name)')
    session.execute('append to faculty (name = "Merrie", rank = "associate") '
                    'valid from "09/01/77"')
    session.execute('range of f is faculty')
    print(session.show('retrieve (f.rank) where f.name = "Merrie"'))

Package map:

- :mod:`repro.time` — instants, periods, Allen's relations, clocks;
- :mod:`repro.relational` — the relational engine;
- :mod:`repro.txn` — transactions and the commit log;
- :mod:`repro.core` — the four database kinds and the taxonomy;
- :mod:`repro.tquel` — the TQuel language;
- :mod:`repro.storage` — serialization and the durable journal;
- :mod:`repro.workload` — synthetic history generators;
- :mod:`repro.cli` — the ``tquel`` shell.
"""

from repro.core import (
    DatabaseKind, HistoricalDatabase, HistoricalRelation, RollbackDatabase,
    StaticDatabase, TemporalDatabase, TemporalRelation, TimeKind, classify,
)
from repro.errors import ReproError
from repro.relational import Domain, Relation, Schema
from repro.time import Granularity, Instant, Period, SimulatedClock, SystemClock
from repro.tquel import Session

__version__ = "1.0.0"

__all__ = [
    "DatabaseKind",
    "Domain",
    "Granularity",
    "HistoricalDatabase",
    "HistoricalRelation",
    "Instant",
    "Period",
    "Relation",
    "ReproError",
    "RollbackDatabase",
    "Schema",
    "Session",
    "SimulatedClock",
    "StaticDatabase",
    "SystemClock",
    "TemporalDatabase",
    "TemporalRelation",
    "TimeKind",
    "classify",
    "__version__",
]
