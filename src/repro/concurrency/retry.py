"""Deadline-aware retry with exponential backoff and seeded jitter.

A :class:`RetryPolicy` re-runs a transaction attempt while it fails with
*retryable* errors (``error.retryable`` is the triage bit on
:class:`~repro.errors.ReproError`: conflicts and overload set it,
semantic errors do not).  The backoff between attempt *k* and *k + 1*
is::

    delay(k) = min(max_delay, base_delay * multiplier ** k) * jitter_factor

where ``jitter_factor`` is drawn from ``[1 - jitter, 1]`` by a seeded
:class:`random.Random`, so a fixed seed reproduces the exact delay
sequence.  An :class:`~repro.errors.Overloaded` error's ``retry_after``
hint, when larger, replaces the computed delay — the admission
controller knows the queue better than the exponent does.

Deadlines are absolute readings of the injected monotonic *clock*.  The
policy never overshoots one: an attempt is not started past the
deadline, and a backoff sleep that would cross it raises
:class:`~repro.errors.DeadlineExceeded` immediately instead of sleeping
late.  Both the clock and the sleeper are injectable, so tests are
deterministic and sleep-free.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, TypeVar

from repro.errors import DeadlineExceeded, Overloaded, ReproError
from repro.obs import runtime as _obs

T = TypeVar("T")


class RetryPolicy:
    """Bounded, deadline-aware retry of a transaction closure.

    ``max_attempts`` counts *attempts*, not retries: 1 means no retry at
    all.  ``sleeper`` and ``clock`` default to :func:`time.sleep` and
    :func:`time.monotonic`; tests inject fakes.  A policy instance may
    be shared by many sessions — its only mutable state is the seeded
    jitter RNG, whose draws are atomic.
    """

    def __init__(self, max_attempts: int = 8, base_delay: float = 0.005,
                 multiplier: float = 2.0, max_delay: float = 0.5,
                 jitter: float = 0.5, seed: Optional[int] = None,
                 sleeper: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._sleeper = sleeper
        self._clock = clock

    def delay(self, attempt: int) -> float:
        """The backoff after the *attempt*-th failure (0-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        return raw * (1.0 - self.jitter * self._rng.random())

    def call(self, attempt_fn: Callable[[], T],
             deadline: Optional[float] = None) -> T:
        """Run *attempt_fn* until it succeeds, exhausts attempts, or the
        deadline passes.

        Non-retryable errors propagate immediately.  When attempts run
        out, the last retryable error propagates (it still carries
        ``retryable = True`` so an outer layer may queue the work
        elsewhere).  ``deadline`` is an absolute reading of this
        policy's clock; crossing it raises
        :class:`~repro.errors.DeadlineExceeded`.
        """
        metrics = _obs.current().metrics
        attempts = metrics.histogram("concurrency.attempts_per_txn")
        for attempt in range(self.max_attempts):
            if deadline is not None and self._clock() >= deadline:
                attempts.observe(attempt)
                raise DeadlineExceeded(
                    f"deadline passed before attempt {attempt + 1} started")
            try:
                result = attempt_fn()
            except ReproError as error:
                # Shed load was invisible unless it finally failed; count
                # every Overloaded and record its back-pressure hint so
                # db.stats() shows how hard admission is pushing back.
                if isinstance(error, Overloaded):
                    metrics.counter("concurrency.overloaded").inc()
                    if error.retry_after:
                        metrics.histogram(
                            "concurrency.retry_after_seconds").observe(
                                error.retry_after)
                if not error.retryable or attempt + 1 >= self.max_attempts:
                    attempts.observe(attempt + 1)
                    raise
                pause = self.delay(attempt)
                if isinstance(error, Overloaded) and error.retry_after:
                    pause = max(pause, error.retry_after)
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if pause >= remaining:
                        attempts.observe(attempt + 1)
                        raise DeadlineExceeded(
                            f"a {pause * 1e3:.1f} ms backoff would overshoot "
                            f"the deadline ({max(0.0, remaining) * 1e3:.1f} ms "
                            f"left)") from error
                metrics.counter("concurrency.retries").inc()
                self._sleeper(pause)
            else:
                attempts.observe(attempt + 1)
                return result
        raise AssertionError("unreachable: the loop returns or raises")

    def __repr__(self) -> str:
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base_delay={self.base_delay}, max_delay={self.max_delay})")
