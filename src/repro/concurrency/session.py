"""Optimistic sessions: buffer against a snapshot, validate at commit.

A :class:`ConcurrentSession` is one transaction's view of the database
under the session layer (:mod:`repro.concurrency.layer`).  It never
holds a lock while the application thinks: reads go straight to the
committed state, writes are buffered as plain
:class:`~repro.txn.transaction.Operation` records, and the session
tracks its *footprint* — for every relation read or written, the
relation's version counter at first touch (the same per-relation
counters the index cache keys on).

At commit the layer re-checks the footprint under the manager's
serialization lock: if any touched relation has a newer version, another
transaction committed first and this one loses — first-committer-wins —
with a retryable :class:`~repro.errors.ConflictError`.  Validation is at
**relation granularity**: two sessions writing different keys of the
same relation still conflict (one retries and then succeeds).  That is
deliberately coarse — it is sound for any operation mix, needs no
predicate analysis, and the retry layer absorbs the false sharing; see
docs/CONCURRENCY.md for the contract and its sharpening path.

Reads within a session see the latest *committed* state, not the
session's own buffered writes (no read-your-writes); validation then
guarantees that everything read still holds at commit time, which makes
a committed session serializable at relation granularity.
"""

from __future__ import annotations

import enum
from typing import (Any, Callable, Dict, List, Mapping, Optional, Tuple,
                    Union)

from repro.errors import TransactionStateError
from repro.obs import context as _trace
from repro.time.instant import Instant
from repro.txn.transaction import Operation

InstantLike = Union[Instant, str, int]


class SessionStatus(enum.Enum):
    """The lifecycle of a concurrent session."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class ConcurrentSession:
    """One optimistic transaction: buffered writes + a read/write footprint.

    Obtained from :meth:`SessionLayer.begin
    <repro.concurrency.layer.SessionLayer.begin>` (or implicitly inside
    :meth:`SessionLayer.run`); commits through the owning layer.  The
    DML methods mirror the database kind's own (``valid_from`` /
    ``valid_to`` keywords where the kind supports valid time).
    """

    def __init__(self, layer, session_id: int) -> None:
        self._layer = layer
        self._database = layer.database
        self._id = session_id
        self._status = SessionStatus.ACTIVE
        self._operations: List[Operation] = []
        #: relation name -> version counter at first touch.
        self._footprint: Dict[str, int] = {}
        #: commit-log length when the session began (diagnostic only).
        self._snapshot_index = len(self._database.log)
        self._commit_time: Optional[Instant] = None
        self._commit_token: Optional[int] = None
        #: the correlation id tying this attempt to its logical
        #: transaction: inherited from the thread's attached trace
        #: context (every retry attempt of one SessionLayer.run shares
        #: it), or freshly minted for raw begin() use.
        self._txn_id = _trace.current_txn() or _trace.new_txn_id()

    # -- accessors ------------------------------------------------------------

    @property
    def session_id(self) -> int:
        """A layer-unique, increasing session identifier."""
        return self._id

    @property
    def txn_id(self) -> str:
        """The logical transaction's correlation id (``txn-N``).

        Shared by every retry attempt of one :meth:`SessionLayer.run`
        call; spans and lifecycle events carry it as ``trace_id`` /
        ``txn`` so ``repro trace --txn`` can reconstruct the commit's
        whole distributed lineage.
        """
        return self._txn_id

    @property
    def op_class(self) -> str:
        """The SLO operation class this session falls into.

        ``read`` while nothing is buffered; ``single_shard_write``
        otherwise (the unsharded engine is one shard).  The sharded
        session refines the write classes by footprint.
        """
        return "read" if not self._operations else "single_shard_write"

    @property
    def status(self) -> SessionStatus:
        """The current lifecycle state."""
        return self._status

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The buffered operations, in order."""
        return tuple(self._operations)

    @property
    def footprint(self) -> Dict[str, int]:
        """A copy of the read/write footprint (relation -> version)."""
        return dict(self._footprint)

    @property
    def snapshot_index(self) -> int:
        """How many commits the database had when this session began."""
        return self._snapshot_index

    @property
    def commit_time(self) -> Optional[Instant]:
        """The transaction time assigned at commit (None before)."""
        return self._commit_time

    @property
    def commit_token(self) -> Optional[int]:
        """The read-your-writes token assigned at commit (None before).

        The number of commits in the primary's log once this session's
        commit landed; a replica must have applied at least this many
        records before it can serve this session's own writes
        (:meth:`Replica.read <repro.replication.replica.Replica.read>`
        raises a retryable :class:`~repro.errors.ReplicaLagging` until
        then).  The token may over-count — a concurrent commit landing
        just after bumps the log length — which is safe: waiting for
        *more* records than strictly needed never serves stale data.
        """
        return self._commit_token

    @property
    def is_active(self) -> bool:
        """True while the session can still buffer and commit."""
        return self._status is SessionStatus.ACTIVE

    # -- footprint ---------------------------------------------------------------

    def touch(self, name: str) -> None:
        """Record *name* in the footprint at its current version.

        Called automatically by every read and write below; call it
        directly to declare a dependency the session reads through some
        other channel.
        """
        if name not in self._footprint:
            self._footprint[name] = self._database.relation_version(name)

    def conflicts(self) -> List[str]:
        """The touched relations whose version has moved since first touch."""
        return sorted(name for name, version in self._footprint.items()
                      if self._database.relation_version(name) != version)

    # -- reads --------------------------------------------------------------------

    def _consistent(self, compute: Callable[[], Any]) -> Any:
        """Run *compute* under the commit serialization lock.

        A commit's apply (close the superseded version, open the new
        one) is atomic only to holders of the manager's lock; a bare
        ``database.snapshot`` taken mid-apply can see *neither* version
        of a replaced row.  Every session read goes through here so a
        racing committer's torn intermediate state is never observable
        — touch first (outside the lock), then snapshot atomically.
        """
        result: List[Any] = []
        self._database.manager.certify(lambda: result.append(compute()))
        return result[0]

    def read(self, name: str):
        """The relation's current committed snapshot, footprint-tracked."""
        self.touch(name)
        return self._consistent(lambda: self._database.snapshot(name))

    def timeslice(self, name: str, valid_at: InstantLike):
        """Valid-time slice of the committed state, footprint-tracked."""
        self.touch(name)
        return self._consistent(
            lambda: self._database.timeslice(name, valid_at))

    def rollback(self, name: str, as_of: InstantLike):
        """Transaction-time rollback of the committed state, tracked."""
        self.touch(name)
        return self._consistent(
            lambda: self._database.rollback(name, as_of))

    # -- writes --------------------------------------------------------------------

    def add(self, operation: Operation) -> None:
        """Buffer one operation (the database's ``txn=`` recorder seam)."""
        self._require_active()
        self.touch(operation.relation)
        self._operations.append(operation)

    def insert(self, name: str, values: Mapping[str, Any],
               **valid_bounds: Any) -> None:
        """Buffer an insert (valid-time keywords per the database kind)."""
        self._require_active()
        self.touch(name)
        self._database.insert(name, values, txn=self, **valid_bounds)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               **valid_bounds: Any) -> None:
        """Buffer a delete of every tuple agreeing with *match*."""
        self._require_active()
        self.touch(name)
        self._database.delete(name, match, txn=self, **valid_bounds)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any], **valid_bounds: Any) -> None:
        """Buffer a replace of every tuple agreeing with *match*."""
        self._require_active()
        self.touch(name)
        self._database.replace(name, match, updates, txn=self, **valid_bounds)

    # -- lifecycle ----------------------------------------------------------------

    def _require_active(self) -> None:
        if self._status is not SessionStatus.ACTIVE:
            raise TransactionStateError(
                f"session {self._id} is {self._status.value}, not active")

    def commit(self, deadline: Optional[float] = None) -> Instant:
        """Validate the footprint and commit through the layer.

        Raises :class:`~repro.errors.ConflictError` when first-committer-
        wins validation fails (the session is then aborted; begin a new
        one to retry — :meth:`SessionLayer.run` does this for you).
        """
        self._require_active()
        return self._layer.commit_session(self, deadline=deadline)

    def abort(self) -> None:
        """Discard the buffered operations."""
        self._require_active()
        self._operations.clear()
        self._status = SessionStatus.ABORTED

    # -- context manager ---------------------------------------------------------------

    def __enter__(self) -> "ConcurrentSession":
        self._require_active()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self.is_active:
                self.abort()
            return False
        if self.is_active:
            self.commit()
        return False

    def __repr__(self) -> str:
        return (f"ConcurrentSession(id={self._id}, {self._status.value}, "
                f"{len(self._operations)} ops, "
                f"footprint={sorted(self._footprint)})")
