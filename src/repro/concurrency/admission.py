"""Admission control: bounded concurrency, bounded queueing, fast shed.

An :class:`AdmissionController` guards the session layer with two knobs:

- ``max_active`` — how many transactions may be past admission at once
  (buffering, validating, or committing);
- ``max_queue`` — how many more may *wait* for a slot.

Work beyond both bounds is rejected immediately with a typed, retryable
:class:`~repro.errors.Overloaded` carrying a ``retry_after`` hint —
graceful degradation instead of an unbounded queue that wedges the
process and breaks every deadline downstream (the real-time database
literature's controlled-degradation discipline).  A queued waiter whose
deadline passes before a slot frees aborts with
:class:`~repro.errors.DeadlineExceeded` rather than occupying the queue
late.

Instrumented via :mod:`repro.obs` (no-ops unless recording is on):
``admission.admitted`` / ``admission.shed`` counters and the
``admission.active`` / ``admission.queue_depth`` gauges.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import DeadlineExceeded, Overloaded
from repro.obs import runtime as _obs


class _Slot:
    """An admitted slot; a context manager that releases on exit."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        """Free the slot (idempotent)."""
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "_Slot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class AdmissionController:
    """A bounded gate in front of the session layer.

    ``retry_after`` scales the back-pressure hint: a shed request is told
    to come back in roughly ``retry_after * (queued + active)`` seconds,
    a crude but monotone estimate of drain time.  The *clock* is
    injectable (monotonic seconds) so deadline tests are deterministic.
    """

    def __init__(self, max_active: int = 8, max_queue: int = 16,
                 retry_after: float = 0.05,
                 clock: Callable[[], float] = time.monotonic,
                 scope: Optional[str] = None) -> None:
        if max_active < 1:
            raise ValueError("max_active must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        self.max_active = max_active
        self.max_queue = max_queue
        self.retry_after = retry_after
        self._clock = clock
        #: Optional obs namespace: a scoped controller reports into
        #: ``admission.<scope>.*`` *in addition to* the global
        #: ``admission.*`` instruments, so a server with one controller
        #: per tenant can export shed/queue-depth per tenant while the
        #: process-wide view still aggregates (docs/SERVING.md).
        self.scope = scope
        self._condition = threading.Condition()
        self._active = 0
        self._waiting = 0

    def _bump(self, name: str, metrics, value: Optional[float] = None) -> None:
        """Counter inc (value None) or gauge set, global + scoped."""
        names = [f"admission.{name}"]
        if self.scope is not None:
            names.append(f"admission.{self.scope}.{name}")
        for metric in names:
            if value is None:
                metrics.counter(metric).inc()
            else:
                metrics.gauge(metric).set(value)

    # -- introspection ---------------------------------------------------------

    @property
    def active(self) -> int:
        """Transactions currently past admission."""
        return self._active

    @property
    def queued(self) -> int:
        """Transactions currently waiting for a slot."""
        return self._waiting

    # -- the gate ---------------------------------------------------------------

    def admit(self, deadline: Optional[float] = None) -> _Slot:
        """Take a slot, queueing up to the configured depth.

        Returns a context manager releasing the slot on exit.  Raises
        :class:`~repro.errors.Overloaded` at once when the queue is full
        (load shedding), :class:`~repro.errors.DeadlineExceeded` when
        the deadline passes while queued — or has already passed on
        entry, even when a slot is free (never admit late).
        """
        metrics = _obs.current().metrics
        with self._condition:
            if deadline is not None and self._clock() >= deadline:
                raise DeadlineExceeded(
                    "deadline already passed at admission")
            if self._active >= self.max_active:
                if self._waiting >= self.max_queue:
                    hint = self.retry_after * (self._waiting + self._active)
                    # The shed path reports everything the error carries
                    # through obs too, so dashboards and the error agree:
                    # the shed count, the depth that caused it, and the
                    # back-pressure hint handed out.
                    self._bump("shed", metrics)
                    self._bump("queue_depth", metrics, self._waiting)
                    metrics.histogram(
                        "admission.retry_after_seconds").observe(hint)
                    raise Overloaded(
                        f"admission queue is full ({self._active} active, "
                        f"{self._waiting} queued); retry in ~{hint:.3f}s",
                        retry_after=hint, queued=self._waiting,
                        active=self._active)
                self._waiting += 1
                self._bump("queue_depth", metrics, self._waiting)
                try:
                    # Deadline before capacity: a woken waiter whose
                    # deadline has passed must never take the slot.
                    while True:
                        remaining = None
                        if deadline is not None:
                            remaining = deadline - self._clock()
                            if remaining <= 0:
                                raise DeadlineExceeded(
                                    "deadline passed while queued for "
                                    "admission")
                        if self._active < self.max_active:
                            break
                        self._condition.wait(remaining)
                finally:
                    self._waiting -= 1
                    self._bump("queue_depth", metrics, self._waiting)
            self._active += 1
            self._bump("admitted", metrics)
            self._bump("active", metrics, self._active)
        return _Slot(self)

    def _release(self) -> None:
        with self._condition:
            self._active -= 1
            self._bump("active", _obs.current().metrics, self._active)
            # notify_all, not notify: a single wakeup can land on a waiter
            # that is abandoning the wait (deadline expired), which raises
            # and leaves without passing the wakeup on — stranding the
            # remaining waiters despite free capacity.
            self._condition.notify_all()

    def __repr__(self) -> str:
        return (f"AdmissionController(max_active={self.max_active}, "
                f"max_queue={self.max_queue}, active={self._active}, "
                f"queued={self._waiting})")
