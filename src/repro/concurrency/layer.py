"""The session layer: many sessions, one serialized commit order.

A :class:`SessionLayer` lets N threads run transactions against one
database concurrently while every commit still funnels through the
single-writer :class:`~repro.txn.manager.TransactionManager` — so
transaction time stays append-only, system-assigned and strictly
increasing, exactly the paper's serial-history model ("each transaction
results in a new static relation being appended to the front of the
cube", §4.2).  The layer makes the race *safe* rather than the order
parallel:

1. **admission** (:class:`~repro.concurrency.admission.AdmissionController`)
   bounds how much work is in flight and sheds the excess fast;
2. each admitted transaction runs in an optimistic
   :class:`~repro.concurrency.session.ConcurrentSession` — no locks held
   while the application computes;
3. at commit, first-committer-wins validation runs under the manager's
   serialization lock (the ``validate`` seam of
   :meth:`TransactionManager.run`), atomically with the apply it guards;
4. a conflict raises a retryable :class:`~repro.errors.ConflictError`
   and the :class:`~repro.concurrency.retry.RetryPolicy` re-runs the
   whole closure — against the *new* committed state — with exponential
   backoff, never past the transaction's deadline.

Durability composes unchanged: the serialized commit stream is what the
:class:`~repro.storage.recovery.DurabilityManager` journals (appends
fire under the commit lock, in commit order), so the crash-safety
contract of docs/DURABILITY.md is oblivious to how many sessions raced.

Mixing rule: writers that bypass the layer (direct ``db.insert`` or an
explicit ``db.begin()`` transaction) commit under the same
serialization lock as the layer — they cannot slip between a session's
validation and its apply, so commits *through* the layer always detect
their interference; the bypassing writers themselves get no conflict
detection (docs/CONCURRENCY.md).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.concurrency.admission import AdmissionController
from repro.concurrency.retry import RetryPolicy
from repro.concurrency.session import ConcurrentSession, SessionStatus
from repro.errors import ConflictError, DeadlineExceeded, Overloaded
from repro.obs import context as _trace
from repro.obs import runtime as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.time.instant import Instant

#: A transaction closure: receives the session, returns the caller's value.
TransactionClosure = Callable[[ConcurrentSession], Any]


class SessionLayer:
    """Concurrent optimistic sessions over one database.

    Construct directly or via :meth:`Database.sessions
    <repro.core.base.Database.sessions>`.  ``retry`` and ``admission``
    default to sensible bounded policies; pass explicitly-seeded ones
    for deterministic tests.  *clock* is the monotonic time source for
    deadlines (injectable).
    """

    def __init__(self, database, retry: Optional[RetryPolicy] = None,
                 admission: Optional[AdmissionController] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.database = database
        self.retry = retry if retry is not None else RetryPolicy()
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self._clock = clock
        self._id_lock = threading.Lock()
        self._next_id = 1

    # -- session lifecycle ----------------------------------------------------

    def begin(self) -> ConcurrentSession:
        """Start an optimistic session (no admission, no retry).

        The raw seam: the caller owns validation failures.  Application
        code normally wants :meth:`run`, which adds admission control,
        deadline enforcement, and conflict retry around this.
        """
        with self._id_lock:
            session_id = self._next_id
            self._next_id += 1
        _obs.current().metrics.counter("concurrency.sessions").inc()
        return ConcurrentSession(self, session_id)

    def commit_session(self, session: ConcurrentSession,
                       deadline: Optional[float] = None) -> Optional["Instant"]:
        """Validate and commit *session*; called by ``session.commit()``.

        First-committer-wins: the footprint check runs under the
        manager's serialization lock, atomically with the apply.  A
        transaction past its deadline aborts with
        :class:`~repro.errors.DeadlineExceeded` instead of committing
        late.  Read-only sessions (no buffered operations) validate via
        :meth:`TransactionManager.certify
        <repro.txn.manager.TransactionManager.certify>` — under the same
        serialization lock as every commit, so the check cannot
        interleave with an in-flight apply — and return ``None``: no
        commit record, but the whole read set is certified to have held
        simultaneously.
        """
        obs = _obs.current()
        metrics = obs.metrics
        if deadline is not None and self._clock() >= deadline:
            session._status = SessionStatus.ABORTED
            raise DeadlineExceeded(
                f"session {session.session_id} reached its deadline "
                f"before commit; aborting instead of committing late")

        def validate() -> None:
            stale = session.conflicts()
            if stale:
                metrics.counter("concurrency.conflicts").inc()
                obs.events.emit("txn.conflict", txn=session.txn_id,
                                relations=stale)
                raise ConflictError(
                    f"session {session.session_id} lost first-committer-"
                    f"wins validation: {', '.join(stale)} changed since "
                    f"it began", relations=stale)

        try:
            if not session.operations:
                self.database.manager.certify(validate)
                session._status = SessionStatus.COMMITTED
                # A certified read-only session still gets a token: a
                # replica at this index has everything the session saw.
                session._commit_token = len(self.database.log)
                obs.events.emit("txn.commit", txn=session.txn_id,
                                op_class="read",
                                token=session._commit_token)
                return None
            with obs.tracer.span("concurrency.commit",
                                 txn=session.txn_id):
                with metrics.histogram("concurrency.commit_seconds").time():
                    commit_time = self.database.manager.run(
                        session.operations, validate=validate)
        except Exception:
            session._status = SessionStatus.ABORTED
            raise
        session._status = SessionStatus.COMMITTED
        session._commit_time = commit_time
        # The read-your-writes token: replicas must apply at least this
        # many records before serving this session's writes.  Read after
        # the commit lock dropped, so it may over-count (a concurrent
        # commit landing first) — conservative, never stale.
        session._commit_token = len(self.database.log)
        metrics.counter("concurrency.commits").inc()
        obs.events.emit("txn.commit", txn=session.txn_id,
                        op_class=session.op_class,
                        token=session._commit_token)
        return commit_time

    # -- the transactional entry point -----------------------------------------

    def run(self, closure: TransactionClosure,
            timeout: Optional[float] = None,
            deadline: Optional[float] = None) -> Any:
        """Run *closure* as one transaction: admit, execute, commit, retry.

        The closure receives a fresh :class:`ConcurrentSession` per
        attempt and is re-run from scratch on conflict (so it must be
        safe to repeat — pure reads plus buffered writes are).  Its
        return value is returned on commit.  ``timeout`` (seconds from
        now) or an absolute ``deadline`` (a reading of the layer's
        monotonic clock) bound the whole affair, retries and queueing
        included; past it the transaction aborts with
        :class:`~repro.errors.DeadlineExceeded` rather than commit late.
        Raises :class:`~repro.errors.Overloaded` when shed at admission,
        :class:`~repro.errors.ConflictError` when retries are exhausted.
        """
        if deadline is None and timeout is not None:
            deadline = self._clock() + timeout
        obs = _obs.current()
        txn_id = _trace.new_txn_id()
        state = {"attempt": 0, "session": None}

        def attempt() -> Any:
            state["attempt"] += 1
            number = state["attempt"]
            obs.events.emit("txn.attempt", txn=txn_id, attempt=number)
            with obs.tracer.span("concurrency.attempt", attempt=number):
                try:
                    with self.admission.admit(deadline):
                        session = self.begin()
                        state["session"] = session
                        try:
                            result = closure(session)
                            if session.is_active:
                                session.commit(deadline)
                            return result
                        finally:
                            if session.is_active:
                                session.abort()
                except Overloaded as error:
                    obs.events.emit("txn.shed", txn=txn_id,
                                    attempt=number,
                                    retry_after=error.retry_after)
                    raise

        # The root span *starts* this transaction's trace; attaching its
        # context makes txn_id ambient for every same-thread descendant
        # (events default their txn, journal appends find their owner)
        # and every retry attempt's session inherit the same txn_id.
        with obs.tracer.span("concurrency.run", trace_id=txn_id,
                             txn=txn_id) as root:
            with _trace.attach(root.context):
                obs.events.emit("txn.begin", txn=txn_id)
                started = self._clock()
                try:
                    result = self.retry.call(attempt, deadline)
                except DeadlineExceeded:
                    obs.metrics.counter("concurrency.deadline_exceeded").inc()
                    obs.events.emit("txn.deadline", txn=txn_id,
                                    attempts=state["attempt"])
                    raise
                except Exception as error:
                    obs.events.emit("txn.abort", txn=txn_id,
                                    error=type(error).__name__,
                                    attempts=state["attempt"])
                    raise
                # End-to-end latency — admission queueing, every retry
                # attempt, validation and commit — against the class the
                # *committed* session fell into.
                session = state["session"]
                op_class = session.op_class if session is not None else "read"
                obs.slo.record(op_class, self._clock() - started)
                return result

    def __repr__(self) -> str:
        return (f"SessionLayer({self.database!r}, retry={self.retry!r}, "
                f"admission={self.admission!r})")
