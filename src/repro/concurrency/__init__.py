"""Concurrent sessions over the single-writer temporal engine.

The paper's model is a serial history: every transaction appends one
static relation to the front of the cube at a strictly-increasing,
system-assigned transaction time.  This package keeps that order intact
while letting many sessions race toward it safely:

- :class:`~repro.concurrency.session.ConcurrentSession` — optimistic
  concurrency control: buffer against a snapshot, validate a read/write
  footprint at commit, first-committer-wins;
- :class:`~repro.concurrency.retry.RetryPolicy` — bounded, deadline-
  aware retry with exponential backoff and seeded jitter;
- :class:`~repro.concurrency.admission.AdmissionController` — bounded
  in-flight work and wait queue, fast typed shedding under overload;
- :class:`~repro.concurrency.layer.SessionLayer` — the composition,
  usually obtained as ``db.sessions()``.

The contract lives in docs/CONCURRENCY.md; the crash-safety interaction
with the durable journal is in docs/DURABILITY.md.
"""

from repro.concurrency.admission import AdmissionController
from repro.concurrency.layer import SessionLayer
from repro.concurrency.retry import RetryPolicy
from repro.concurrency.session import ConcurrentSession, SessionStatus

__all__ = [
    "AdmissionController",
    "ConcurrentSession",
    "RetryPolicy",
    "SessionLayer",
    "SessionStatus",
]
