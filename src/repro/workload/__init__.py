"""Synthetic workload generators for benchmarks and property tests.

The paper has no machine-readable traces — its evaluation is a worked
faculty example — so the benchmark harness generates synthetic histories
in the same shape, at scale, with the temporally interesting behaviours
the paper motivates dialled in as parameters: retroactive and postactive
changes, error corrections, and batched updates (the §3 payroll example).

Driving a workload with :func:`apply_workload` records into the live
:mod:`repro.obs` instrumentation: a ``workload.apply`` span plus
``workload.steps`` / ``workload.transactions`` counters, alongside the
commit/transaction metrics the engine itself emits.

:func:`run_stress` (:mod:`repro.workload.stress`) is the concurrent
counterpart: it hammers one database from many sessions through the
:mod:`repro.concurrency` layer — optionally under crash injection — and
audits zero lost updates, monotone commit times and serial equivalence.
:func:`run_replicated` extends the chaos to :mod:`repro.replication`:
writers on a primary, token-gated readers on replicas, seeded transport
faults, partitions and a mid-run failover — audited for zero lost
durable commits and replica digest convergence.
:func:`run_sharded` (:mod:`repro.workload.sharded`) stresses the
:mod:`repro.sharding` store the same way: disjoint per-worker keys,
optional cross-shard transfers through the two-phase protocol, and — in
chaos mode — crash injection anywhere in the shard journals or 2PC
logs, audited for atomic cross-shard recovery.
"""

from repro.workload.generators import (
    FacultyWorkload, PayrollWorkload, VersionWorkload, WorkloadStep,
    apply_workload,
)
from repro.workload.serve import ServingReport, run_serving
from repro.workload.sharded import ShardedStressReport, run_sharded
from repro.workload.stress import (ReplicatedReport, StressReport,
                                   run_replicated, run_stress)

__all__ = [
    "FacultyWorkload",
    "PayrollWorkload",
    "ReplicatedReport",
    "ServingReport",
    "ShardedStressReport",
    "StressReport",
    "VersionWorkload",
    "WorkloadStep",
    "apply_workload",
    "run_replicated",
    "run_serving",
    "run_sharded",
    "run_stress",
]
