"""Workload generators.

Each generator is deterministic for a given seed and produces a list of
:class:`WorkloadStep`\\ s — (commit instant, operation descriptor) pairs —
that :func:`apply_workload` drives into any database kind.  The same step
list can therefore be applied to a static, rollback, historical and
temporal database, which is exactly what the equivalence property tests
and the taxonomy benchmarks need.

Generated behaviours, mapped to the paper:

- hires with postactive entry ("James is joining the faculty next
  month"): the fact is recorded *before* its valid time begins;
- retroactive promotions ("Merrie was promoted ... starting last
  month"): recorded *after* the valid time begins;
- error corrections: a previously recorded fact is deleted or its rank
  replaced — destructive in a historical DB, append-recorded in a
  temporal DB;
- batched payroll updates (§3): many salary changes entered in one
  transaction on the batch day, with effective dates scattered earlier.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.core.base import Database
from repro.obs import runtime as _obs
from repro.relational.domain import Domain
from repro.relational.schema import Schema
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant

RANKS = ("assistant", "associate", "full")

#: Day chronon for 1980-01-01; generated histories start here.
EPOCH = Instant.parse("01/01/80").chronon


@dataclasses.dataclass(frozen=True)
class WorkloadStep:
    """One update: the instant it is committed, and what it does.

    ``action`` is ``insert`` / ``delete`` / ``replace``; ``valid_from`` /
    ``valid_to`` are day chronons (ignored by kinds without valid time);
    ``batch`` groups steps committed in one transaction.
    """

    commit: int
    action: str
    values: Optional[Dict[str, Any]] = None
    match: Optional[Dict[str, Any]] = None
    updates: Optional[Dict[str, Any]] = None
    valid_from: Optional[int] = None
    valid_to: Optional[int] = None
    batch: int = 0


class FacultyWorkload:
    """Randomized faculty histories in the shape of the paper's example.

    Parameters control the temporal character:

    - ``people``: how many distinct faculty members;
    - ``events_per_person``: promotions/corrections per member (≥1);
    - ``retroactive_ratio``: fraction of changes recorded after their
      effective date (the rest are postactive or same-day);
    - ``correction_ratio``: fraction of changes that are *error
      corrections* (replace a recorded rank without changing validity).
    """

    relation = "faculty"

    def __init__(self, people: int = 20, events_per_person: int = 3,
                 retroactive_ratio: float = 0.4,
                 correction_ratio: float = 0.2, seed: int = 1985) -> None:
        self.people = people
        self.events_per_person = events_per_person
        self.retroactive_ratio = retroactive_ratio
        self.correction_ratio = correction_ratio
        self.seed = seed

    def schema(self) -> Schema:
        """``faculty(name, rank)`` with ``name`` as key."""
        return Schema.of(key=["name"],
                         name=Domain.STRING,
                         rank=Domain.enumeration("rank", *RANKS))

    def steps(self) -> List[WorkloadStep]:
        """Generate the full, commit-ordered step list."""
        rng = random.Random(self.seed)
        raw: List[WorkloadStep] = []
        batch = 0
        for person in range(self.people):
            name = f"person{person:04d}"
            hired_valid = EPOCH + rng.randrange(0, 365)
            offset = rng.randrange(1, 30)
            if rng.random() < self.retroactive_ratio:
                hired_commit = hired_valid + offset  # recorded late
            else:
                hired_commit = max(EPOCH, hired_valid - offset)  # postactive
            rank_index = 0
            raw.append(WorkloadStep(
                commit=hired_commit, action="insert", batch=batch,
                values={"name": name, "rank": RANKS[rank_index]},
                valid_from=hired_valid))
            batch += 1
            event_valid = hired_valid
            for _ in range(self.events_per_person - 1):
                event_valid += rng.randrange(90, 720)
                offset = rng.randrange(1, 45)
                retro = rng.random() < self.retroactive_ratio
                commit = event_valid + offset if retro else max(
                    hired_commit + 1, event_valid - offset)
                if rng.random() < self.correction_ratio:
                    # An error correction: the recorded rank was wrong.
                    new_rank = RANKS[rng.randrange(len(RANKS))]
                    raw.append(WorkloadStep(
                        commit=commit, action="replace", batch=batch,
                        match={"name": name},
                        updates={"rank": new_rank},
                        valid_from=hired_valid))
                elif rank_index + 1 < len(RANKS):
                    rank_index += 1
                    raw.append(WorkloadStep(
                        commit=commit, action="replace", batch=batch,
                        match={"name": name},
                        updates={"rank": RANKS[rank_index]},
                        valid_from=event_valid))
                else:
                    # Leaves the faculty.
                    raw.append(WorkloadStep(
                        commit=commit, action="delete", batch=batch,
                        match={"name": name}, valid_from=event_valid))
                batch += 1
        return _normalize_commits(raw)


class PayrollWorkload:
    """The §3 payroll scenario: batched updates, scattered effective dates.

    Salary changes are entered against the database "only once or twice a
    month" — all steps of one batch share a commit instant (one
    transaction) — while the effective dates fall anywhere in the
    preceding month.
    """

    relation = "payroll"

    def __init__(self, employees: int = 30, months: int = 12,
                 changes_per_month: int = 8, seed: int = 83) -> None:
        self.employees = employees
        self.months = months
        self.changes_per_month = changes_per_month
        self.seed = seed

    def schema(self) -> Schema:
        """``payroll(employee, salary)`` with ``employee`` as key."""
        return Schema.of(key=["employee"],
                         employee=Domain.STRING, salary=Domain.INTEGER)

    def steps(self) -> List[WorkloadStep]:
        """Generate hires (month 0) then monthly batched salary changes."""
        rng = random.Random(self.seed)
        raw: List[WorkloadStep] = []
        salaries = {}
        for employee in range(self.employees):
            name = f"emp{employee:04d}"
            salaries[name] = 30000 + rng.randrange(0, 40) * 1000
            raw.append(WorkloadStep(
                commit=EPOCH, action="insert", batch=0,
                values={"employee": name, "salary": salaries[name]},
                valid_from=EPOCH))
        for month in range(1, self.months + 1):
            batch_day = EPOCH + month * 30  # the entry day (transaction time)
            chosen = rng.sample(sorted(salaries), k=min(self.changes_per_month,
                                                        len(salaries)))
            for name in chosen:
                salaries[name] = int(salaries[name] * 1.05)
                effective = batch_day - rng.randrange(1, 30)  # retroactive
                raw.append(WorkloadStep(
                    commit=batch_day, action="replace", batch=month,
                    match={"employee": name},
                    updates={"salary": salaries[name]},
                    valid_from=effective))
        return _normalize_commits(raw)


class VersionWorkload:
    """Engineering versions: parts with release dates and supersessions.

    Models the CAM/engineering-version motivation (Mueller & Steinbauer):
    each part goes through revisions; a revision's valid time starts at its
    release date, which may be announced ahead of time (postactive) or
    back-dated after qualification testing (retroactive).
    """

    relation = "versions"

    def __init__(self, parts: int = 15, revisions: int = 4,
                 seed: int = 7) -> None:
        self.parts = parts
        self.revisions = revisions
        self.seed = seed

    def schema(self) -> Schema:
        """``versions(part, revision)`` with ``part`` as key."""
        return Schema.of(key=["part"],
                         part=Domain.STRING, revision=Domain.INTEGER)

    def steps(self) -> List[WorkloadStep]:
        """Generate release/supersede steps for every part."""
        rng = random.Random(self.seed)
        raw: List[WorkloadStep] = []
        batch = 0
        for part_number in range(self.parts):
            part = f"part{part_number:04d}"
            release = EPOCH + rng.randrange(0, 200)
            raw.append(WorkloadStep(
                commit=max(EPOCH, release - rng.randrange(0, 20)),
                action="insert", batch=batch,
                values={"part": part, "revision": 1}, valid_from=release))
            batch += 1
            for revision in range(2, self.revisions + 1):
                release += rng.randrange(60, 400)
                announce = release + rng.randrange(-30, 30)
                raw.append(WorkloadStep(
                    commit=max(EPOCH + 1, announce), action="replace",
                    batch=batch, match={"part": part},
                    updates={"revision": revision}, valid_from=release))
                batch += 1
        return _normalize_commits(raw)


def _normalize_commits(steps: Sequence[WorkloadStep]) -> List[WorkloadStep]:
    """Sort by commit time, keeping batch members adjacent and ordered."""
    return sorted(steps, key=lambda step: (step.commit, step.batch))


def apply_workload(database: Database, workload,
                   steps: Optional[Sequence[WorkloadStep]] = None) -> int:
    """Drive a generated step list into *database* (any kind).

    The database must have been constructed with a
    :class:`~repro.time.clock.SimulatedClock` so commit instants can be
    steered; consecutive steps of one batch commit in one transaction.
    Returns the number of transactions committed.

    The whole drive runs under a ``workload.apply`` span, with
    ``workload.steps`` / ``workload.transactions`` counters recorded into
    the current registry (no-ops unless recording is on).
    """
    if steps is None:
        steps = workload.steps()
    clock = database.manager.clock.source  # the injected SimulatedClock
    if not isinstance(clock, SimulatedClock):
        raise TypeError("apply_workload needs a database built on a "
                        "SimulatedClock")
    if workload.relation not in database:
        database.define(workload.relation, workload.schema())

    obs = _obs.current()
    supports_valid = database.kind.supports_historical_queries
    transactions = 0
    index = 0
    with obs.tracer.span("workload.apply", kind=str(database.kind),
                         steps=len(steps)):
        while index < len(steps):
            step = steps[index]
            # One transaction per (commit, batch) group.
            group = [step]
            scan = index + 1
            while (scan < len(steps) and steps[scan].commit == step.commit
                   and steps[scan].batch == step.batch):
                group.append(steps[scan])
                scan += 1
            index = scan

            if clock.current().chronon < step.commit:
                clock.set(Instant.from_chronon(step.commit))
            with database.begin() as txn:
                for member in group:
                    _apply_step(database, workload.relation, member,
                                supports_valid, txn)
            transactions += 1
    obs.metrics.counter("workload.steps").inc(len(steps))
    obs.metrics.counter("workload.transactions").inc(transactions)
    return transactions


def _apply_step(database: Database, relation: str, step: WorkloadStep,
                supports_valid: bool, txn) -> None:
    def bounds() -> Dict[str, Any]:
        if not supports_valid:
            return {}
        args: Dict[str, Any] = {}
        if step.valid_from is not None:
            args["valid_from"] = Instant.from_chronon(step.valid_from)
        if step.valid_to is not None:
            args["valid_to"] = Instant.from_chronon(step.valid_to)
        return args

    if step.action == "insert":
        database.insert(relation, step.values, txn=txn, **bounds())
    elif step.action == "delete":
        database.delete(relation, step.match, txn=txn, **bounds())
    elif step.action == "replace":
        database.replace(relation, step.match, step.updates, txn=txn,
                         **bounds())
    else:
        raise ValueError(f"unknown workload action {step.action!r}")
